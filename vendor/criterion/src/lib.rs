//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — as a simple wall-clock harness: each benchmark is
//! warmed up briefly, then timed over `sample_size` batches, and the mean,
//! minimum and maximum per-iteration times are printed.  There is no
//! statistical analysis, HTML report or comparison against saved baselines;
//! results are also exposed programmatically via [`Criterion::take_results`]
//! so harness binaries can persist them.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully-qualified benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample in nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample in nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, mirroring the real
    /// API's builder call.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_benchmark(id.to_string(), DEFAULT_SAMPLES, f);
        self.results.push(result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Drains the results collected so far (used by harness binaries that
    /// persist baselines).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

const DEFAULT_SAMPLES: usize = 20;

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().text);
        let result = run_benchmark(id, self.sample_size, f);
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks a function parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.text);
        let result = run_benchmark(id, self.sample_size, |b| f(b, input));
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        Self {
            text: text.to_string(),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, calling it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: calibrate how many iterations fit a sample budget.
        let calibration_start = Instant::now();
        black_box(f());
        let single = calibration_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / single.as_nanos()).clamp(1, 10_000) as u64;

        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.durations.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: String, samples: usize, mut f: F) -> BenchResult {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples,
        durations: Vec::new(),
    };
    f(&mut bencher);
    let iters = bencher.iters_per_sample.max(1) as f64;
    let per_iter: Vec<f64> = bencher
        .durations
        .iter()
        .map(|d| d.as_nanos() as f64 / iters)
        .collect();
    let (mean, min, max, count) = if per_iter.is_empty() {
        (0.0, 0.0, 0.0, 0)
    } else {
        let sum: f64 = per_iter.iter().sum();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        (sum / per_iter.len() as f64, min, max, per_iter.len())
    };
    println!(
        "bench {id:<60} mean {:>12} min {:>12} max {:>12} ({count} samples)",
        format_ns(mean),
        format_ns(min),
        format_ns(max),
    );
    BenchResult {
        id,
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples: count,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
