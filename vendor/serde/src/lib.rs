//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `serde` cannot be fetched.  This crate provides the minimal subset
//! the workspace uses: the [`Serialize`] / [`Deserialize`] traits (expressed
//! through a self-describing [`Value`] data model rather than serde's
//! visitor machinery), derive macros for plain structs and enums, and the
//! `#[serde(skip)]` field attribute.  `serde_json` (also vendored) renders
//! [`Value`] to and from JSON text.
//!
//! Only what the workspace needs is implemented; this is not a general
//! replacement for serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A self-describing value tree — the data model that connects the traits to
/// concrete formats (JSON in `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value as a map key (strings verbatim, integers by their
    /// decimal form).  Non-scalar values have no key form.
    pub fn as_key_string(&self) -> Option<String> {
        match self {
            Value::Str(s) => Some(s.clone()),
            Value::UInt(u) => Some(u.to_string()),
            Value::Int(i) => Some(i.to_string()),
            _ => None,
        }
    }

    /// Parses a map key back into a scalar value (integers when possible).
    pub fn from_key_str(key: &str) -> Value {
        if let Ok(u) = key.parse::<u64>() {
            Value::UInt(u)
        } else if let Ok(i) = key.parse::<i64>() {
            Value::Int(i)
        } else {
            Value::Str(key.to_string())
        }
    }
}

/// Error raised when a [`Value`] cannot be converted into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// Creates a "missing field" error.
    pub fn missing_field(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    /// Creates an "unexpected value shape" error.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------------ scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(u) => <$ty>::try_from(*u)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::Int(i) if *i >= 0 => <$ty>::try_from(*i as u64)
                        .map_err(|_| DeError::custom("integer out of range")),
                    other => Err(DeError::unexpected("unsigned integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$ty>::try_from(i).ok())
                        .ok_or_else(|| DeError::custom("integer out of range")),
                    other => Err(DeError::unexpected("signed integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $ty),
                    Value::Int(i) => Ok(*i as $ty),
                    Value::UInt(u) => Ok(*u as $ty),
                    other => Err(DeError::unexpected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-character string", other)),
        }
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = k
                        .to_value()
                        .as_key_string()
                        .expect("map keys must serialize to scalars");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::from_key_str(k))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::unexpected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = k
                    .to_value()
                    .as_key_string()
                    .expect("map keys must serialize to scalars");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: Default + std::hash::BuildHasher> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::from_key_str(k))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::unexpected("map", other)),
        }
    }
}
