//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's simpler guard API
//! (`read()` / `write()` / `lock()` return guards directly instead of
//! `Result`s).  Lock poisoning is translated into a panic, matching
//! parking_lot's behaviour of not tracking poison at all closely enough for
//! this workspace.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
