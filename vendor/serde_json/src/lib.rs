//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` crate's `Value` data model to JSON text and
//! parses JSON text back.  Supports the subset of the real API used by this
//! workspace: [`to_string`], [`to_string_pretty`], [`from_str`], [`Error`]
//! and [`Result`].

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ----------------------------------------------------------------- writing

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                // Keep floats round-trippable as floats.
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}
