//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable pseudo-random generator with the small
//! API surface this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float ranges, and `Rng::gen_bool`.
//! The generator is xorshift64* seeded through splitmix64 — statistically fine
//! for synthetic dataset generation and reproducible per seed, but it is NOT
//! the real `StdRng` (a different stream for the same seed) and it is NOT
//! cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; the slight modulo bias is
                // irrelevant for dataset generation.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
    )*};
}

impl_signed_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps a random word to `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xorshift64* generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 turns any seed (including 0) into a well-mixed
            // non-zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x2545_F491_4F6C_DD1D } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_stay_in_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let v = rng.gen_range(3..17usize);
                assert!((3..17).contains(&v));
                let f = rng.gen_range(0.0..2.5f64);
                assert!((0.0..2.5).contains(&f));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(1);
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
