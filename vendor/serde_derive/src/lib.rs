//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` crate's `Value` data model, without depending on `syn` or
//! `quote` (neither is available offline).  The token stream is parsed by a
//! small hand-rolled walker supporting exactly the shapes this workspace
//! uses:
//!
//! * structs with named fields (with the `#[serde(skip)]` attribute);
//! * tuple structs with a single field (newtypes);
//! * enums whose variants are unit or single-field tuple variants.
//!
//! Generated code mirrors serde_json's external representation: newtypes
//! serialize as their inner value, unit variants as strings, and newtype
//! variants as single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field of a braced struct.
struct Field {
    name: String,
    skip: bool,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    /// `true` when the variant carries a single tuple payload.
    newtype: bool,
}

/// The shapes of type definitions the derive supports.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    NewtypeStruct {
        name: String,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    field.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                if v.newtype {
                    arms.push_str(&format!(
                        "{name}::{0}(inner) => ::serde::Value::Map(vec![(\"{0}\".to_string(), ::serde::Serialize::to_value(inner))]),\n",
                        v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{0} => ::serde::Value::Str(\"{0}\".to_string()),\n",
                        v.name
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for field in fields {
                if field.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        field.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: match value.get(\"{0}\") {{\n\
                             Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                 .map_err(|_| ::serde::DeError::missing_field(\"{0}\"))?,\n\
                         }},\n",
                        field.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok(Self {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let mut newtype_arms = String::new();
            let mut unit_arms = String::new();
            for v in variants {
                if v.newtype {
                    newtype_arms.push_str(&format!(
                        "if let Some(inner) = value.get(\"{0}\") {{\n\
                             return Ok({name}::{0}(::serde::Deserialize::from_value(inner)?));\n\
                         }}\n",
                        v.name
                    ));
                } else {
                    unit_arms.push_str(&format!("\"{0}\" => return Ok({name}::{0}),\n", v.name));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         {newtype_arms}\
                         if let ::serde::Value::Str(s) = value {{\n\
                             match s.as_str() {{\n\
                                 {unit_arms}\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::custom(format!(\n\
                             \"no variant of {name} matches {{value:?}}\"\n\
                         )))\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated Deserialize impl must parse")
}

// ----------------------------------------------------------------- parsing

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected a type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic types");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(group.stream()),
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                if count == 1 {
                    Shape::NewtypeStruct { name }
                } else {
                    panic!("the vendored serde derive only supports single-field tuple structs");
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(group.stream()),
            },
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skips `#[...]` attribute groups; returns `true` when one of the skipped
/// attributes was `#[serde(skip)]` (or any serde attribute containing a bare
/// `skip`).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(group)) = tokens.get(*i) {
            let text = group.stream().to_string();
            if text.starts_with("serde") && text.contains("skip") {
                skip = true;
            }
            *i += 1;
        } else {
            panic!("expected an attribute body after `#`");
        }
    }
    skip
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        *i += 1;
        // `pub(crate)` and friends carry a parenthesized group.
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected a field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, skip });
        // Consume the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (commas nested inside
/// angle brackets, parentheses or brackets belong to the type).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    // Groups (parens/brackets in array or tuple types) nest commas
    // internally, so they never terminate the type; only punctuation can.
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i32 = 0;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not introduce a new field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected a variant name, found {other:?}"),
        };
        i += 1;
        let mut newtype = false;
        match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                if count != 1 {
                    panic!("variant `{name}`: only single-field tuple variants are supported");
                }
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                panic!("variant `{name}`: struct variants are not supported");
            }
            _ => {}
        }
        variants.push(Variant { name, newtype });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}
