//! # gps — interactive graph path query specification
//!
//! Umbrella crate for the GPS workspace (a reproduction of "Interactive
//! path query specification on graph databases", EDBT 2015, grown into a
//! multi-backend query system).  It re-exports the [`prelude`] and the
//! individual layer crates so binaries and examples can depend on a single
//! crate.
//!
//! See the README for a quickstart, or jump straight to
//! [`gps_core::Engine`] — the builder-style facade over every layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gps_automata as automata;
pub use gps_core as core;
pub use gps_datasets as datasets;
pub use gps_exec as exec;
pub use gps_graph as graph;
pub use gps_interactive as interactive;
pub use gps_learner as learner;
pub use gps_rpq as rpq;
pub use gps_store as store;

/// The most common imports, re-exported from [`gps_core::prelude`].
pub mod prelude {
    pub use gps_core::prelude::*;
}
