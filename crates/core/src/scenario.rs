//! The three demonstration scenarios of the paper.
//!
//! 1. **Static labeling** — the user freely labels any nodes she likes on the
//!    whole graph; the system then either proposes a consistent query or
//!    points out that the labels are inconsistent.  This scenario exists to
//!    show why the interactive approach is preferable.
//! 2. **Interactive labeling without path validation** — the system proposes
//!    informative nodes and picks the witness path of each positive node
//!    itself.  The learned query is consistent with the labels but not
//!    necessarily the query the user has in mind (the paper's `bus`
//!    counterexample).
//! 3. **Interactive labeling with path validation** — the core of GPS: the
//!    user additionally validates or corrects the witness path, which
//!    guarantees the generalization uses the paths she cares about.

use crate::transcript::Transcript;
use gps_graph::{GraphBackend, NodeId};
use gps_interactive::session::{Session, SessionConfig, SessionOutcome};
use gps_interactive::strategy::{InformativePathsStrategy, Strategy};
use gps_interactive::user::SimulatedUser;
use gps_learner::{consistency, ExampleSet, Label, LearnedQuery, Learner};
use gps_rpq::{EvalHandle, PathQuery};
use serde::{Deserialize, Serialize};

/// The result of the static-labeling scenario.
#[derive(Debug, Clone)]
pub enum StaticLabelingOutcome {
    /// A query consistent with the user's labels was found.
    Learned(Box<LearnedQuery>),
    /// The labels are inconsistent: no query (within the learner's bound) can
    /// select all positives and no negative.  The offending positive node is
    /// reported.
    Inconsistent {
        /// A positive node whose every bounded path is covered by negatives.
        conflicting_positive: NodeId,
    },
    /// The user provided no positive example, so there is nothing to learn.
    NoPositives,
}

/// Runs the static-labeling scenario on a user-provided example set.
pub fn static_labeling<B: GraphBackend>(
    graph: &B,
    labels: &[(NodeId, Label)],
    learner: &Learner,
) -> StaticLabelingOutcome {
    let examples: ExampleSet = labels.iter().copied().collect();
    if examples.positive_count() == 0 {
        return StaticLabelingOutcome::NoPositives;
    }
    if let Some(consistency::Infeasibility::PositiveCovered(node)) =
        consistency::check_satisfiable(graph, &examples, learner.path_bound)
    {
        return StaticLabelingOutcome::Inconsistent {
            conflicting_positive: node,
        };
    }
    match learner.learn(graph, &examples) {
        Ok(learned) => StaticLabelingOutcome::Learned(Box::new(learned)),
        Err(gps_learner::LearnError::PositiveFullyCovered { node })
        | Err(gps_learner::LearnError::ValidatedPathCovered { node })
        | Err(gps_learner::LearnError::InconsistentResult { node }) => {
            StaticLabelingOutcome::Inconsistent {
                conflicting_positive: node,
            }
        }
        Err(gps_learner::LearnError::NoPositiveExamples) => StaticLabelingOutcome::NoPositives,
    }
}

/// Summary of an interactive scenario run against a simulated user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Which scenario ran (`"interactive"` or `"interactive+validation"`).
    pub scenario: String,
    /// The goal query the simulated user had in mind.
    pub goal: String,
    /// The learned query, if any.
    pub learned: Option<String>,
    /// Whether the learned query selects exactly the same nodes as the goal.
    pub goal_reached: bool,
    /// Whether the learned query is consistent with the labels provided.
    pub consistent_with_labels: bool,
    /// Number of label interactions used.
    pub interactions: usize,
    /// Number of zoom-outs used.
    pub zooms: usize,
    /// The full transcript.
    pub transcript: Transcript,
}

fn report_from_outcome<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    scenario: &str,
    outcome: &SessionOutcome,
    exec: &EvalHandle,
) -> ScenarioReport {
    // Served from the shared cache: the simulated user already evaluated
    // the goal through this handle at construction.
    let goal_answer = exec.evaluate(goal.regex());
    let goal_reached = outcome
        .learned
        .as_ref()
        .map(|l| l.answer.nodes() == goal_answer.nodes())
        .unwrap_or(false);
    let consistent_with_labels = outcome
        .learned
        .as_ref()
        .map(|l| consistency::check_answer(&l.answer, &outcome.examples).is_consistent())
        .unwrap_or(false);
    ScenarioReport {
        scenario: scenario.to_string(),
        goal: goal.display(graph.labels()),
        learned: outcome
            .learned
            .as_ref()
            .map(|l| gps_automata::printer::print(&l.regex, graph.labels())),
        goal_reached,
        consistent_with_labels,
        interactions: outcome.stats.interactions,
        zooms: outcome.stats.zooms,
        transcript: Transcript::from_outcome(graph, outcome),
    }
}

/// Runs an interactive scenario with an explicit session configuration and
/// node-proposal strategy.  Builds a private naive evaluation stack; engine
/// callers use [`interactive_with_exec`] to share theirs.
pub fn interactive_with_options<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    config: SessionConfig,
    strategy: &mut dyn Strategy<B>,
) -> ScenarioReport {
    interactive_with_exec(graph, goal, config, strategy, EvalHandle::naive(graph))
}

/// Runs an interactive scenario on a shared evaluation stack — the entry
/// point the engine's builder knobs feed into.  The session, the simulated
/// user, the learner and the final report all evaluate through `exec`, so
/// the whole loop runs on the engine's configured execution mode and cache.
/// The scenario label follows `config.with_path_validation`.
pub fn interactive_with_exec<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    config: SessionConfig,
    strategy: &mut dyn Strategy<B>,
    exec: EvalHandle,
) -> ScenarioReport {
    let scenario = if config.with_path_validation {
        "interactive+validation"
    } else {
        "interactive"
    };
    let mut user = SimulatedUser::with_exec(goal.clone(), exec.clone());
    let mut session = Session::with_exec(graph, config, exec.clone());
    let outcome = session.run(strategy, &mut user);
    report_from_outcome(graph, goal, scenario, &outcome, &exec)
}

/// Runs the interactive scenario *without* path validation against a
/// simulated user whose hidden goal is `goal`.
pub fn interactive_without_validation<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    seed: u64,
) -> ScenarioReport {
    run_interactive(graph, goal, SessionConfig::without_path_validation(), seed)
}

/// Runs the full interactive scenario *with* path validation (the core of
/// GPS) against a simulated user whose hidden goal is `goal`.
pub fn interactive_with_validation<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    seed: u64,
) -> ScenarioReport {
    run_interactive(graph, goal, SessionConfig::default(), seed)
}

fn run_interactive<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    config: SessionConfig,
    _seed: u64,
) -> ScenarioReport {
    let mut strategy = InformativePathsStrategy::with_bound(config.path_bound.min(3));
    interactive_with_options(graph, goal, config, &mut strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
    use gps_graph::Graph;

    fn goal(graph: &Graph) -> PathQuery {
        PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap()
    }

    #[test]
    fn static_labeling_learns_from_consistent_labels() {
        let (g, ids) = figure1_graph();
        let labels = vec![
            (ids.n2, Label::Positive),
            (ids.n6, Label::Positive),
            (ids.n5, Label::Negative),
        ];
        match static_labeling(&g, &labels, &Learner::default()) {
            StaticLabelingOutcome::Learned(learned) => {
                assert!(learned.answer.contains(ids.n2));
                assert!(learned.answer.contains(ids.n6));
                assert!(!learned.answer.contains(ids.n5));
            }
            other => panic!("expected a learned query, got {other:?}"),
        }
    }

    #[test]
    fn static_labeling_detects_inconsistency() {
        let (g, ids) = figure1_graph();
        // C1 has no outgoing path: labeling it positive together with any
        // negative is inconsistent for non-nullable queries.
        let labels = vec![(ids.c1, Label::Positive), (ids.n5, Label::Negative)];
        match static_labeling(&g, &labels, &Learner::default()) {
            StaticLabelingOutcome::Inconsistent {
                conflicting_positive,
            } => assert_eq!(conflicting_positive, ids.c1),
            other => panic!("expected inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn static_labeling_without_positives() {
        let (g, ids) = figure1_graph();
        let labels = vec![(ids.n5, Label::Negative)];
        assert!(matches!(
            static_labeling(&g, &labels, &Learner::default()),
            StaticLabelingOutcome::NoPositives
        ));
    }

    #[test]
    fn with_validation_reaches_the_goal() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let report = interactive_with_validation(&g, &goal, 0);
        assert!(report.goal_reached, "report: {report:?}");
        assert!(report.consistent_with_labels);
        assert_eq!(report.scenario, "interactive+validation");
        assert!(report.interactions >= 1);
        assert!(report.learned.is_some());
    }

    #[test]
    fn without_validation_is_consistent_but_may_differ_from_goal() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let report = interactive_without_validation(&g, &goal, 0);
        assert!(report.consistent_with_labels);
        assert_eq!(report.scenario, "interactive");
        // It may or may not hit the goal; the paper's point is only that it
        // is not guaranteed.  Both outcomes are acceptable here.
    }

    #[test]
    fn reports_serialize() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let report = interactive_with_validation(&g, &goal, 0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("interactive+validation"));
    }
}
