//! `gps-cli` — command-line front end for the GPS system.
//!
//! Usage:
//!
//! ```text
//! gps-cli evaluate  <graph.edges|--figure1> <query>
//! gps-cli witness   <graph.edges|--figure1> <query> <node>
//! gps-cli neighborhood <graph.edges|--figure1> <node> <radius>
//! gps-cli dot       <graph.edges|--figure1>
//! gps-cli interactive <graph.edges|--figure1> <goal-query> [--no-validation]
//! gps-cli stats     <graph.edges|--figure1>
//! ```
//!
//! Graphs are read from the edge-list format (`source label target` per
//! line); `--figure1` loads the paper's running example instead of a file.

use gps_core::Gps;
use gps_datasets::figure1::figure1_graph;
use gps_graph::{io, Graph};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gps-cli evaluate     <graph.edges|--figure1> <query>
  gps-cli witness      <graph.edges|--figure1> <query> <node>
  gps-cli neighborhood <graph.edges|--figure1> <node> <radius>
  gps-cli dot          <graph.edges|--figure1>
  gps-cli interactive  <graph.edges|--figure1> <goal-query> [--no-validation]
  gps-cli stats        <graph.edges|--figure1>";

fn load_graph(spec: &str) -> Result<Graph, String> {
    if spec == "--figure1" {
        return Ok(figure1_graph().0);
    }
    io::read_edge_list_file(spec).map_err(|e| format!("cannot load {spec}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "evaluate" => {
            let [graph_spec, query] = expect_args(args, 2)?;
            let gps = Gps::new(load_graph(graph_spec)?);
            gps.evaluate_rendered(query).map_err(|e| e.to_string())
        }
        "witness" => {
            let [graph_spec, query, node_name] = expect_args(args, 3)?;
            let graph = load_graph(graph_spec)?;
            let node = graph
                .node_by_name(node_name)
                .ok_or_else(|| format!("unknown node {node_name}"))?;
            let query =
                gps_rpq::PathQuery::parse(query, graph.labels()).map_err(|e| e.to_string())?;
            match query.witness(&graph, node) {
                Some(path) => Ok(format!(
                    "{} : {}",
                    path.nodes
                        .iter()
                        .map(|&n| graph.node_name(n))
                        .collect::<Vec<_>>()
                        .join(" -> "),
                    path.render_word(&graph)
                )),
                None => Ok(format!("{node_name} is not selected by the query")),
            }
        }
        "neighborhood" => {
            let [graph_spec, node_name, radius] = expect_args(args, 3)?;
            let graph = load_graph(graph_spec)?;
            let node = graph
                .node_by_name(node_name)
                .ok_or_else(|| format!("unknown node {node_name}"))?;
            let radius: u32 = radius.parse().map_err(|_| "radius must be a number")?;
            let gps = Gps::new(graph);
            Ok(gps.render_neighborhood(node, radius))
        }
        "dot" => {
            let [graph_spec] = expect_args(args, 1)?;
            let graph = load_graph(graph_spec)?;
            Ok(gps_graph::dot::graph_to_dot(&graph, "gps"))
        }
        "interactive" => {
            let graph_spec = args.get(1).ok_or("missing graph")?;
            let goal = args.get(2).ok_or("missing goal query")?;
            let with_validation = !args.iter().any(|a| a == "--no-validation");
            let gps = Gps::new(load_graph(graph_spec)?);
            let report = if with_validation {
                gps.interactive_with_validation(goal, 0)
            } else {
                gps.interactive_without_validation(goal, 0)
            }
            .map_err(|e| e.to_string())?;
            let mut out = String::new();
            out.push_str(&format!("scenario: {}\n", report.scenario));
            out.push_str(&format!("goal:     {}\n", report.goal));
            out.push_str(&format!(
                "learned:  {}\n",
                report.learned.clone().unwrap_or_else(|| "-".into())
            ));
            out.push_str(&format!("goal reached: {}\n\n", report.goal_reached));
            out.push_str(&report.transcript.render());
            Ok(out)
        }
        "stats" => {
            let [graph_spec] = expect_args(args, 1)?;
            let graph = load_graph(graph_spec)?;
            let mut out = gps_graph::stats::GraphStats::compute(&graph).summary();
            let label_stats = gps_graph::stats::LabelStats::compute(&graph);
            if !label_stats.per_label.is_empty() {
                out.push_str("\nper-label:");
                for line in label_stats.summary_lines(&graph) {
                    out.push_str("\n  ");
                    out.push_str(&line);
                }
            }
            Ok(out)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn expect_args<const N: usize>(args: &[String], count: usize) -> Result<[&str; N], String> {
    if args.len() < count + 1 {
        return Err(format!(
            "expected {count} argument(s) after the command, got {}",
            args.len().saturating_sub(1)
        ));
    }
    let mut out = [""; N];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = &args[i + 1];
    }
    Ok(out)
}
