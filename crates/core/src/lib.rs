//! # gps-core — the GPS system
//!
//! GPS ("a system for interactive Graph Path query Specification") assists a
//! non-expert user in specifying a path query — a regular expression over
//! edge labels — on a graph database, by interactively labeling nodes as
//! positive or negative examples on small, easy-to-visualize fragments of the
//! graph.  This crate ties the substrates together and exposes the system the
//! demo paper describes:
//!
//! * [`Gps`] — the facade: load a graph, run any of the three demonstration
//!   scenarios, inspect/learn/evaluate queries;
//! * [`render`] — the textual "visualization" layer standing in for the demo
//!   GUI: neighborhoods with "…" continuation markers and zoom highlighting
//!   (Figure 3(a)/(b)) and prefix trees with a highlighted candidate path
//!   (Figure 3(c));
//! * [`scenario`] — the three demonstration scenarios: static labeling,
//!   interactive labeling without path validation, and interactive labeling
//!   with path validation;
//! * [`transcript`] — serializable session transcripts.
//!
//! ## Quickstart
//!
//! ```
//! use gps_core::Gps;
//! use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
//!
//! let (graph, ids) = figure1_graph();
//! let gps = Gps::new(graph);
//!
//! // Evaluate the motivating query of the paper.
//! let answer = gps.evaluate(MOTIVATING_QUERY).unwrap();
//! assert!(answer.contains(ids.n2));
//!
//! // Run the full interactive scenario against a simulated user who has the
//! // motivating query in mind.
//! let report = gps.interactive_with_validation(MOTIVATING_QUERY, 0).unwrap();
//! assert!(report.goal_reached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gps;
pub mod render;
pub mod scenario;
pub mod transcript;

pub use gps::Gps;
pub use scenario::{ScenarioReport, StaticLabelingOutcome};
pub use transcript::Transcript;
