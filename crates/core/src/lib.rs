//! # gps-core — the GPS system
//!
//! GPS ("a system for interactive Graph Path query Specification") assists a
//! non-expert user in specifying a path query — a regular expression over
//! edge labels — on a graph database, by interactively labeling nodes as
//! positive or negative examples on small, easy-to-visualize fragments of
//! the graph.  This crate ties the substrates together behind a
//! backend-agnostic, builder-style facade:
//!
//! * [`Engine`] — the facade, generic over [`gps_graph::GraphBackend`]:
//!   evaluate queries, render neighborhoods and prefix trees, run interactive
//!   sessions and the three demonstration scenarios on either the mutable
//!   adjacency [`gps_graph::Graph`] or the immutable
//!   [`gps_graph::CsrGraph`] snapshot;
//! * [`GpsBuilder`] — one place to choose the backend, the node-proposal
//!   strategy, the halt conditions and the zoom/validation options;
//! * [`GpsError`] — the typed error unifying the per-layer error enums;
//! * [`render`] — the textual "visualization" layer standing in for the demo
//!   GUI (Figure 3(a)–(c) of the paper);
//! * [`scenario`] — the three demonstration scenarios;
//! * [`service`] — the multi-session layer: [`EngineCore`] (the immutable,
//!   cheaply-cloneable snapshot + cache + index every session shares) served
//!   by [`service::GpsService`]/[`service::SessionManager`] across worker
//!   threads;
//! * [`versioned`] — live updates: [`VersionedStore`] publishes
//!   epoch-stamped snapshots (staged [`GraphUpdate`]s → delta-patched index
//!   and cache) while in-flight sessions stay pinned to their birth epoch;
//! * [`transcript`] — serializable session transcripts;
//! * [`prelude`] — one `use gps_core::prelude::*;` for the common types.
//!
//! ## Quickstart
//!
//! ```
//! use gps_core::prelude::*;
//! use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
//!
//! let (graph, ids) = figure1_graph();
//!
//! // Build the engine on the immutable CSR backend with explicit options.
//! let engine = Engine::builder(graph)
//!     .strategy(StrategyChoice::InformativePaths { bound: 3 })
//!     .initial_radius(2)
//!     .build_csr();
//!
//! // Evaluate the motivating query of the paper.
//! let answer = engine.evaluate(MOTIVATING_QUERY).unwrap();
//! assert!(answer.contains(ids.n2));
//!
//! // Run the full interactive scenario against a simulated user who has the
//! // motivating query in mind.
//! let report = engine.interactive_with_validation(MOTIVATING_QUERY, 0).unwrap();
//! assert!(report.goal_reached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
mod metrics;
pub mod render;
pub mod scenario;
pub mod service;
pub mod transcript;
pub mod versioned;

pub use engine::{Engine, EngineCore, EvalMode, Gps, GpsBuilder, StrategyChoice};
pub use error::GpsError;
pub use scenario::{ScenarioReport, StaticLabelingOutcome};
pub use service::{GpsService, ServiceStats, SessionId, SessionManager, SessionStatus};
pub use transcript::Transcript;
pub use versioned::{
    CheckpointPolicy, DurabilityReport, GraphUpdate, PublishReport, RecoveryReport, VersionedStore,
};

/// The zero-dependency metrics/tracing layer (`gps-telemetry`), re-exported
/// so deployments can build a [`gps_telemetry::MetricsRegistry`] for
/// [`GpsBuilder::metrics`] without naming the crate themselves.
pub use gps_telemetry as telemetry;

/// The most common imports in one place.
///
/// ```
/// use gps_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::engine::{Engine, EngineCore, EvalMode, Gps, GpsBuilder, StrategyChoice};
    pub use crate::error::GpsError;
    pub use crate::scenario::{ScenarioReport, StaticLabelingOutcome};
    pub use crate::service::{GpsService, ServiceStats, SessionId, SessionManager, SessionStatus};
    pub use crate::transcript::Transcript;
    pub use crate::versioned::{
        CheckpointPolicy, DurabilityReport, GraphUpdate, PublishReport, RecoveryReport,
        VersionedStore,
    };
    pub use gps_exec::{BatchEvaluator, Plan, PlannerConfig};
    pub use gps_graph::{
        CsrGraph, Edge, EdgeId, Graph, GraphBackend, LabelId, LabelInterner, LabelStats,
        Neighborhood, NeighborhoodDelta, NodeId, Path, PathEnumerator, PrefixTree, Word,
    };
    pub use gps_interactive::halt::{HaltConfig, HaltReason};
    pub use gps_interactive::session::{Session, SessionConfig, SessionOutcome};
    pub use gps_interactive::strategy::{
        DegreeStrategy, InformativePathsStrategy, RandomStrategy, Strategy, StrategyContext,
    };
    pub use gps_interactive::user::{ScriptedUser, SimulatedUser, User, UserResponse};
    pub use gps_learner::{ExampleSet, Label, LearnedQuery, Learner};
    pub use gps_rpq::{EvalCache, EvalHandle, NegativeCoverage, PathQuery, QueryAnswer};
    pub use gps_store::{FileStore, GraphStore, MemoryStore};
    pub use gps_telemetry::{MetricsRegistry, MetricsSnapshot};
}
