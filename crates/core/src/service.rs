//! Concurrent multi-session serving over one shared [`EngineCore`].
//!
//! The paper's interactive loop is inherently per-user, but the system's
//! north star is one graph serving *many* users at once.  This module is the
//! service layer that makes that shape first-class:
//!
//! * [`SessionManager`] — a concurrency-safe session table over one core:
//!   `open` a session for a (simulated) user goal, `step` it one interaction
//!   at a time, read its per-session [`SessionStats`], `close` it into a
//!   [`SessionOutcome`].  Every session shares the core's snapshot, bounded
//!   evaluation cache and label index; every session's learner, coverage,
//!   pruning and statistics are private to it, so concurrent sessions cannot
//!   observe each other.
//! * [`GpsService`] — the worker-thread driver: hand it a batch of goal
//!   queries and a worker count and it opens, runs and closes one session per
//!   goal across scoped threads, returning the outcomes in input order and
//!   maintaining aggregate throughput counters ([`ServiceStats`]).
//!
//! Because the cache is concurrency-safe and answers are deterministic, a
//! session's transcript does not depend on what other sessions run next to
//! it — `tests/service_conformance.rs` asserts byte-identical transcripts
//! between N concurrent service sessions and N sequential bare sessions.
//!
//! ```
//! use gps_core::service::GpsService;
//! use gps_core::{Engine, EvalMode};
//! use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
//!
//! let (graph, _) = figure1_graph();
//! let core = Engine::builder(graph)
//!     .eval_mode(EvalMode::Frontier)
//!     .build_core();
//! let service = GpsService::new(core);
//! let goals = vec![MOTIVATING_QUERY.to_string(); 4];
//! let outcomes = service.serve(&goals, 2).unwrap();
//! assert_eq!(outcomes.len(), 4);
//! assert_eq!(service.stats().sessions_closed, 4);
//! ```

use crate::engine::{EngineCore, GpsBuilder};
use crate::error::GpsError;
use crate::metrics::ServiceMetrics;
use crate::versioned::{GraphUpdate, PublishReport, RecoveryReport, VersionedStore};
use gps_graph::CsrGraph;
use gps_interactive::halt::HaltReason;
use gps_interactive::metrics::SessionMetrics;
use gps_interactive::session::{Session, SessionOutcome};
use gps_interactive::stats::SessionStats;
use gps_interactive::strategy::Strategy;
use gps_interactive::user::SimulatedUser;
use gps_telemetry::{MetricsRegistry, MetricsSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a managed session (unique per [`SessionManager`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a [`SessionManager::step`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session performed (at most) one more interaction and can continue.
    Running {
        /// Total interactions the session has performed so far.
        interactions: usize,
    },
    /// A halt condition fired (now or on an earlier step); the session rests
    /// in the table until closed.
    Halted(HaltReason),
}

/// One entry of the session table: the session plus the user and strategy
/// driving it.  All of this state is session-private — the only shared
/// structures a step touches are the pinned core's concurrency-safe
/// cache/index.
struct ManagedSession {
    session: Session<'static, CsrGraph>,
    user: SimulatedUser,
    strategy: Box<dyn Strategy<CsrGraph> + Send>,
    halted: Option<HaltReason>,
    /// The store epoch this session is pinned to (its birth epoch): the
    /// session's snapshot, cache and index all belong to this version, so a
    /// publish mid-session never changes what it observes.
    epoch: u64,
}

impl ManagedSession {
    fn status(&self) -> SessionStatus {
        match self.halted {
            Some(reason) => SessionStatus::Halted(reason),
            None => SessionStatus::Running {
                interactions: self.session.stats().interactions,
            },
        }
    }
}

/// Aggregate throughput counters of a manager/service, as a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Sessions opened so far.
    pub sessions_opened: u64,
    /// Sessions closed so far.
    pub sessions_closed: u64,
    /// Sessions whose halt condition fired (converged or exhausted their
    /// budget) — as opposed to sessions closed early by the client.
    pub sessions_completed: u64,
    /// Label interactions performed across all sessions.
    pub interactions: u64,
    /// Sessions currently open.
    pub active_sessions: usize,
    /// Graph updates published so far (see [`SessionManager::update`]).
    pub publishes: u64,
    /// The epoch newly opened sessions currently resolve.
    pub current_epoch: u64,
    /// Live epochs (current + superseded ones with pinned sessions).
    pub live_epochs: usize,
}

/// A concurrency-safe open/step/close session table over an epoch-versioned
/// [`VersionedStore`].
///
/// Every session is **pinned to its birth epoch**: `open` resolves the
/// store's latest core and holds it (snapshot + cache + index) for the
/// session's whole life, so [`update`](Self::update)/publish interleave
/// safely with stepping — in-flight transcripts are byte-stable while newly
/// opened sessions observe the published graph.
///
/// The table holds each session behind its own lock, so worker threads
/// stepping *different* sessions never contend beyond the brief table-map
/// lookup; stepping the *same* session from two threads serializes.
#[derive(Debug)]
pub struct SessionManager {
    store: Arc<VersionedStore>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<ManagedSession>>>>,
    next_id: AtomicU64,
    opened: AtomicU64,
    closed: AtomicU64,
    completed: AtomicU64,
    interactions: AtomicU64,
    /// Pre-bound service-layer telemetry handles plus the per-session
    /// handles cloned into every opened session (all no-ops under a
    /// disabled registry).
    metrics: ServiceMetrics,
    session_metrics: SessionMetrics,
}

impl std::fmt::Debug for ManagedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedSession")
            .field("interactions", &self.session.stats().interactions)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl SessionManager {
    /// Creates an empty session table over `core`, wrapping it in a fresh
    /// single-writer [`VersionedStore`].
    pub fn new(core: EngineCore) -> Self {
        Self::over(Arc::new(VersionedStore::new(core)))
    }

    /// Creates an empty session table over a *durable* store at `dir` (see
    /// [`VersionedStore::open_durable`]): a fresh directory is initialised
    /// from the builder's graph, an existing one is recovered — latest
    /// checkpoint plus committed write-ahead-log replay.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        builder: GpsBuilder,
    ) -> Result<(Self, RecoveryReport), GpsError> {
        let (store, report) = VersionedStore::open_durable(dir, builder)?;
        Ok((Self::over(Arc::new(store)), report))
    }

    /// Creates an empty session table over an existing (possibly shared)
    /// versioned store.
    pub fn over(store: Arc<VersionedStore>) -> Self {
        let registry = store.metrics_registry();
        let metrics = ServiceMetrics::from_registry(registry);
        let session_metrics = if registry.is_enabled() {
            SessionMetrics::from_registry(registry)
        } else {
            SessionMetrics::disabled()
        };
        Self {
            store,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            interactions: AtomicU64::new(0),
            metrics,
            session_metrics,
        }
    }

    /// The *latest* core — what a session opened right now would run on.
    /// (Cheap: clones four `Arc`s.)
    pub fn core(&self) -> EngineCore {
        self.store.latest()
    }

    /// The underlying epoch-versioned store.
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }

    /// Stages and publishes a graph update.  In-flight sessions keep their
    /// birth epoch; sessions opened afterwards observe the published graph.
    pub fn update(&self, update: GraphUpdate) -> Result<PublishReport, GpsError> {
        self.store.update(update)
    }

    /// Opens a session driven by a simulated user whose hidden goal query is
    /// `goal_syntax`, with the core's configured strategy and session
    /// options.  The session is pinned to the store's current epoch.
    /// Returns the id to step/close it with.
    pub fn open(&self, goal_syntax: &str) -> Result<SessionId, GpsError> {
        let span = self.metrics.open_latency.start_timer();
        let core = self.store.pin_latest();
        let epoch = core.epoch();
        let user = match core.simulated_user(goal_syntax) {
            Ok(user) => user,
            Err(error) => {
                self.store.unpin(epoch);
                span.cancel();
                return Err(error);
            }
        };
        let managed = ManagedSession {
            session: core.open_session(),
            user,
            strategy: core.instantiate_strategy(),
            halted: None,
            epoch,
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .insert(id, Arc::new(Mutex::new(managed)));
        self.opened.fetch_add(1, Ordering::Relaxed);
        self.metrics.sessions_opened.inc();
        self.metrics.active_sessions.set(self.active_count() as u64);
        self.store
            .metrics_registry()
            .event_with("session_open", || {
                vec![
                    ("session".to_string(), id.to_string()),
                    ("epoch".to_string(), epoch.to_string()),
                ]
            });
        span.stop();
        Ok(SessionId(id))
    }

    /// The epoch session `id` is pinned to (its birth epoch).
    pub fn session_epoch(&self, id: SessionId) -> Result<u64, GpsError> {
        Ok(self.slot(id)?.lock().epoch)
    }

    /// Performs one interaction of session `id` (a no-op when it already
    /// halted), returning its status afterwards.
    pub fn step(&self, id: SessionId) -> Result<SessionStatus, GpsError> {
        let slot = self.slot(id)?;
        let span = self.metrics.step_latency.start_timer();
        let mut managed = slot.lock();
        if managed.halted.is_some() {
            span.cancel();
            return Ok(managed.status());
        }
        let before = managed.session.stats().interactions;
        let managed = &mut *managed;
        if let Some(reason) = managed
            .session
            .step(managed.strategy.as_mut(), &mut managed.user)
        {
            managed.halted = Some(reason);
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.metrics.sessions_completed.inc();
            self.store
                .metrics_registry()
                .event_with("session_halt", || {
                    vec![
                        ("session".to_string(), id.raw().to_string()),
                        ("reason".to_string(), format!("{reason:?}")),
                    ]
                });
        }
        let delta = managed.session.stats().interactions - before;
        self.interactions.fetch_add(delta as u64, Ordering::Relaxed);
        span.stop();
        Ok(managed.status())
    }

    /// Steps session `id` until a halt condition fires, returning the halt
    /// reason.
    pub fn run_to_completion(&self, id: SessionId) -> Result<HaltReason, GpsError> {
        loop {
            if let SessionStatus::Halted(reason) = self.step(id)? {
                return Ok(reason);
            }
        }
    }

    /// The per-session statistics of session `id` so far.
    pub fn session_stats(&self, id: SessionId) -> Result<SessionStats, GpsError> {
        Ok(self.slot(id)?.lock().session.stats().clone())
    }

    /// The status of session `id` without stepping it.
    pub fn session_status(&self, id: SessionId) -> Result<SessionStatus, GpsError> {
        Ok(self.slot(id)?.lock().status())
    }

    /// Closes session `id`, removing it from the table and returning its
    /// outcome.  A session closed before any halt condition fired reports
    /// [`HaltReason::ClosedByClient`].
    pub fn close(&self, id: SessionId) -> Result<SessionOutcome, GpsError> {
        let slot = self
            .sessions
            .lock()
            .remove(&id.raw())
            .ok_or(GpsError::UnknownSession(id.raw()))?;
        let span = self.metrics.close_latency.start_timer();
        self.closed.fetch_add(1, Ordering::Relaxed);
        // Usually ours is the last reference; a concurrent `step` racing the
        // close can briefly hold another, in which case the outcome is
        // snapshotted under the session's lock instead.
        let (outcome, epoch) = match Arc::try_unwrap(slot) {
            Ok(mutex) => {
                let managed = mutex.into_inner();
                let reason = managed.halted.unwrap_or(HaltReason::ClosedByClient);
                (managed.session.outcome(reason), managed.epoch)
            }
            Err(slot) => {
                let managed = slot.lock();
                let reason = managed.halted.unwrap_or(HaltReason::ClosedByClient);
                (managed.session.outcome(reason), managed.epoch)
            }
        };
        // Unpin last: a superseded epoch with no other pinned session is
        // retired right here.
        self.store.unpin(epoch);
        self.metrics.sessions_closed.inc();
        self.metrics.active_sessions.set(self.active_count() as u64);
        self.session_metrics
            .interactions_per_session
            .record(outcome.stats.interactions as u64);
        self.store
            .metrics_registry()
            .event_with("session_close", || {
                vec![
                    ("session".to_string(), id.raw().to_string()),
                    ("epoch".to_string(), epoch.to_string()),
                    ("reason".to_string(), format!("{:?}", outcome.halt_reason)),
                    (
                        "interactions".to_string(),
                        outcome.stats.interactions.to_string(),
                    ),
                ]
            });
        span.stop();
        Ok(outcome)
    }

    /// Number of currently open sessions.
    pub fn active_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// A snapshot of the aggregate throughput counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            sessions_opened: self.opened.load(Ordering::Relaxed),
            sessions_closed: self.closed.load(Ordering::Relaxed),
            sessions_completed: self.completed.load(Ordering::Relaxed),
            interactions: self.interactions.load(Ordering::Relaxed),
            active_sessions: self.active_count(),
            publishes: self.store.publish_count(),
            current_epoch: self.store.current_epoch(),
            live_epochs: self.store.live_epochs(),
        }
    }

    /// The telemetry registry this manager records into (disabled unless the
    /// founding core was built with [`GpsBuilder::metrics`]).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        self.store.metrics_registry()
    }

    /// A point-in-time snapshot of every registered metric and buffered
    /// audit event (empty under a disabled registry).  The active-sessions
    /// gauge is refreshed before the snapshot is taken.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.active_sessions.set(self.active_count() as u64);
        self.store.metrics_registry().snapshot()
    }

    /// The current metrics in Prometheus text exposition format (empty under
    /// a disabled registry).
    pub fn metrics_text(&self) -> String {
        self.metrics().to_prometheus_text()
    }

    /// The current metrics and audit events as a JSON document (an empty
    /// document under a disabled registry).
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    fn slot(&self, id: SessionId) -> Result<Arc<Mutex<ManagedSession>>, GpsError> {
        self.sessions
            .lock()
            .get(&id.raw())
            .cloned()
            .ok_or(GpsError::UnknownSession(id.raw()))
    }
}

/// The multi-session service: one epoch-versioned store, one
/// [`SessionManager`], and a scoped worker pool that drives many sessions
/// concurrently — with [`update`](Self::update) as the write API, so reads
/// (sessions) and writes (publishes) interleave safely on one deployment.
#[derive(Debug)]
pub struct GpsService {
    manager: SessionManager,
}

impl GpsService {
    /// Creates a service over `core`.
    pub fn new(core: EngineCore) -> Self {
        Self {
            manager: SessionManager::new(core),
        }
    }

    /// Creates a service over a *durable* store at `dir` (see
    /// [`VersionedStore::open_durable`]): publishes survive process
    /// restarts, and reopening the same directory recovers the graph before
    /// serving.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        builder: GpsBuilder,
    ) -> Result<(Self, RecoveryReport), GpsError> {
        let (manager, report) = SessionManager::open_durable(dir, builder)?;
        Ok((Self { manager }, report))
    }

    /// Creates a service over an existing versioned store.
    pub fn over(store: Arc<VersionedStore>) -> Self {
        Self {
            manager: SessionManager::over(store),
        }
    }

    /// The session table (open/step/close individual sessions).
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// The *latest* core (cheap clone of four `Arc`s).
    pub fn core(&self) -> EngineCore {
        self.manager.core()
    }

    /// The underlying epoch-versioned store.
    pub fn store(&self) -> &Arc<VersionedStore> {
        self.manager.store()
    }

    /// Stages and publishes a live graph update.  Sessions already in flight
    /// keep their birth epoch (their transcripts are unaffected); sessions
    /// opened afterwards — including later goals of an in-progress
    /// [`serve`](Self::serve) batch — observe the published graph.
    pub fn update(&self, update: GraphUpdate) -> Result<PublishReport, GpsError> {
        self.manager.update(update)
    }

    /// A snapshot of the aggregate throughput counters.
    pub fn stats(&self) -> ServiceStats {
        self.manager.stats()
    }

    /// The telemetry registry this service records into (disabled unless the
    /// founding core was built with [`GpsBuilder::metrics`]).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        self.manager.metrics_registry()
    }

    /// A point-in-time snapshot of every registered metric and buffered
    /// audit event (empty under a disabled registry).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.manager.metrics()
    }

    /// The current metrics in Prometheus text exposition format — one call
    /// serves a `/metrics` scrape endpoint.
    pub fn metrics_text(&self) -> String {
        self.manager.metrics_text()
    }

    /// The current metrics and audit events as a JSON document.
    pub fn metrics_json(&self) -> String {
        self.manager.metrics_json()
    }

    /// Serves one full interactive session per goal query, fanning the
    /// sessions out over `workers` scoped threads (clamped to `1..=goals`),
    /// and returns the outcomes in input order.
    ///
    /// Each worker pulls the next unserved goal off a shared cursor, opens a
    /// session for it, runs it to completion and closes it — so all `workers`
    /// sessions are in flight at once over the one shared core.  The first
    /// error (an unparsable goal) is returned after all workers finish;
    /// sessions of the remaining goals still run.
    pub fn serve(&self, goals: &[String], workers: usize) -> Result<Vec<SessionOutcome>, GpsError> {
        let workers = workers.clamp(1, goals.len().max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SessionOutcome, GpsError>>>> =
            goals.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    if next >= goals.len() {
                        break;
                    }
                    let outcome = self.serve_one(&goals[next]);
                    *slots[next].lock() = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every goal was served"))
            .collect()
    }

    /// Opens, runs and closes one session for `goal_syntax`.
    pub fn serve_one(&self, goal_syntax: &str) -> Result<SessionOutcome, GpsError> {
        let id = self.manager.open(goal_syntax)?;
        self.manager.run_to_completion(id)?;
        self.manager.close(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EvalMode};
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

    fn core(mode: EvalMode) -> EngineCore {
        let (graph, _) = figure1_graph();
        Engine::builder(graph).eval_mode(mode).build_core()
    }

    #[test]
    fn open_step_close_lifecycle() {
        let manager = SessionManager::new(core(EvalMode::Frontier));
        let id = manager.open(MOTIVATING_QUERY).unwrap();
        assert_eq!(manager.active_count(), 1);
        let reason = loop {
            match manager.step(id).unwrap() {
                SessionStatus::Running { .. } => continue,
                SessionStatus::Halted(reason) => break reason,
            }
        };
        assert!(reason.is_convergence());
        // Stepping a halted session is a no-op.
        assert_eq!(manager.step(id).unwrap(), SessionStatus::Halted(reason));
        let stats = manager.session_stats(id).unwrap();
        assert!(stats.interactions >= 1);
        let outcome = manager.close(id).unwrap();
        assert_eq!(outcome.halt_reason, reason);
        assert!(outcome.learned.is_some());
        assert_eq!(manager.active_count(), 0);
        let totals = manager.stats();
        assert_eq!(totals.sessions_opened, 1);
        assert_eq!(totals.sessions_closed, 1);
        assert_eq!(totals.sessions_completed, 1);
        assert_eq!(totals.interactions, stats.interactions as u64);
    }

    #[test]
    fn unknown_and_closed_sessions_error() {
        let manager = SessionManager::new(core(EvalMode::Naive));
        let bogus = SessionId(42);
        assert!(matches!(
            manager.step(bogus),
            Err(GpsError::UnknownSession(42))
        ));
        let id = manager.open(MOTIVATING_QUERY).unwrap();
        manager.close(id).unwrap();
        assert!(matches!(
            manager.session_stats(id),
            Err(GpsError::UnknownSession(_))
        ));
        assert!(matches!(
            manager.close(id),
            Err(GpsError::UnknownSession(_))
        ));
    }

    #[test]
    fn closing_a_running_session_reports_closed_by_client() {
        // No stop-on-goal: after one step the session is genuinely still
        // running, so the close is an early client teardown.
        let (graph, _) = figure1_graph();
        let core = Engine::builder(graph)
            .halt(gps_interactive::halt::HaltConfig {
                max_interactions: 200,
                stop_on_goal: false,
            })
            .build_core();
        let manager = SessionManager::new(core);
        let id = manager.open(MOTIVATING_QUERY).unwrap();
        manager.step(id).unwrap();
        let outcome = manager.close(id).unwrap();
        assert_eq!(outcome.halt_reason, HaltReason::ClosedByClient);
        assert_eq!(outcome.stats.interactions, 1);
        let totals = manager.stats();
        assert_eq!(totals.sessions_completed, 0, "never halted on its own");
        assert_eq!(totals.sessions_closed, 1);
    }

    #[test]
    fn unparsable_goal_is_rejected_at_open() {
        let manager = SessionManager::new(core(EvalMode::Naive));
        assert!(matches!(manager.open("(bus"), Err(GpsError::Parse(_))));
        assert_eq!(manager.active_count(), 0);
    }

    #[test]
    fn serve_returns_outcomes_in_input_order() {
        let service = GpsService::new(core(EvalMode::Frontier));
        let goals = vec![
            MOTIVATING_QUERY.to_string(),
            "cinema".to_string(),
            MOTIVATING_QUERY.to_string(),
            "restaurant".to_string(),
        ];
        let outcomes = service.serve(&goals, 3).unwrap();
        assert_eq!(outcomes.len(), goals.len());
        assert_eq!(
            outcomes[0].transcript, outcomes[2].transcript,
            "same goal, same transcript, regardless of which worker ran it"
        );
        let stats = service.stats();
        assert_eq!(stats.sessions_opened, 4);
        assert_eq!(stats.sessions_closed, 4);
        assert_eq!(stats.sessions_completed, 4);
        assert_eq!(stats.active_sessions, 0);
        let total: usize = outcomes.iter().map(|o| o.stats.interactions).sum();
        assert_eq!(stats.interactions, total as u64);
    }

    #[test]
    fn serve_surfaces_parse_errors_without_poisoning_other_goals() {
        let service = GpsService::new(core(EvalMode::Naive));
        let goals = vec![MOTIVATING_QUERY.to_string(), "(bus".to_string()];
        let result = service.serve(&goals, 2);
        assert!(matches!(result, Err(GpsError::Parse(_))));
        // The valid goal's session still ran to completion.
        let stats = service.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
    }

    #[test]
    fn updates_interleave_with_sessions() {
        // Open a session, publish an update mid-flight, open another: the
        // first stays pinned to epoch 0, the second observes epoch 1, and
        // closing the first retires its superseded epoch.
        let (graph, _) = figure1_graph();
        let core = Engine::builder(graph)
            .eval_mode(EvalMode::Frontier)
            .halt(gps_interactive::halt::HaltConfig {
                max_interactions: 200,
                stop_on_goal: false,
            })
            .build_core();
        let service = GpsService::new(core);
        let first = service.manager().open(MOTIVATING_QUERY).unwrap();
        service.manager().step(first).unwrap();
        assert_eq!(service.manager().session_epoch(first).unwrap(), 0);

        let report = service
            .update(
                crate::versioned::GraphUpdate::new()
                    .add_node("C9")
                    .add_edge("N5", "cinema", "C9"),
            )
            .unwrap();
        assert_eq!(report.epoch, 1);
        let stats = service.stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.current_epoch, 1);
        assert_eq!(stats.live_epochs, 2, "epoch 0 still pinned by `first`");

        let second = service.manager().open(MOTIVATING_QUERY).unwrap();
        assert_eq!(service.manager().session_epoch(second).unwrap(), 1);
        service.manager().step(first).unwrap();
        service.manager().close(first).unwrap();
        assert_eq!(service.stats().live_epochs, 1, "epoch 0 retired on close");
        service.manager().close(second).unwrap();
        // The new snapshot is what the service core now serves.
        assert!(service.core().snapshot().node_by_name("C9").is_some());
    }

    #[test]
    fn open_failure_does_not_leak_a_pin() {
        let service = GpsService::new(core(EvalMode::Frontier));
        assert!(service.manager().open("(bus").is_err());
        service
            .update(crate::versioned::GraphUpdate::new().add_node("Z1"))
            .unwrap();
        assert_eq!(
            service.stats().live_epochs,
            1,
            "epoch 0 had no pins left and was retired by the publish"
        );
    }

    #[test]
    fn sessions_share_one_core_allocation() {
        let service = GpsService::new(core(EvalMode::Frontier));
        let index = service.core().shared_index().expect("frontier has one");
        assert!(service.core().index_memory_bytes() > 0);
        // Serving sessions adds no index clones: the Arc count stays at
        // (core) + (evaluator) + (this probe).
        let before = Arc::strong_count(&index);
        service
            .serve(&vec![MOTIVATING_QUERY.to_string(); 3], 3)
            .unwrap();
        assert_eq!(Arc::strong_count(&index), before);
        // And the shared cache served every session: repeated goals hit.
        let (hits, _) = service.core().eval_cache().stats();
        assert!(hits > 0);
    }
}
