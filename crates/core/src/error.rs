//! The unified error type of the GPS facade.
//!
//! Each layer crate has its own focused error enum (`ParseError` in
//! `gps-automata`, `LearnError` in `gps-learner`, `IoError` in `gps-graph`).
//! The [`Engine`](crate::Engine) surfaces all of them behind one typed
//! [`GpsError`], so applications match on a single enum and `?` works across
//! layers.

use gps_automata::parser::ParseError;
use gps_graph::io::IoError;
use gps_graph::UpdateError;
use gps_learner::LearnError;
use std::fmt;

/// Any error the GPS facade can produce.
#[derive(Debug)]
pub enum GpsError {
    /// A query failed to parse against the graph's alphabet.
    Parse(ParseError),
    /// The learner could not produce a consistent query.
    Learn(LearnError),
    /// Graph (de)serialization failed.
    Io(IoError),
    /// A node was referenced by a name the graph does not contain.
    UnknownNode(String),
    /// An update tried to remove an edge the graph does not contain
    /// (`source -label-> target` rendered for display).
    UnknownEdge(String),
    /// A session id the service's session table does not contain (never
    /// opened, or already closed).
    UnknownSession(u64),
    /// The durable store's file I/O failed (WAL append, fsync, checkpoint
    /// write, recovery read).
    StoreIo(std::io::Error),
    /// The durable store's on-disk state failed validation at recovery: a
    /// bad magic number, an unreadable checkpoint, or a committed batch that
    /// cannot be replayed onto the recovered snapshot.  (A torn *tail* of
    /// the log is not corruption — recovery discards it silently.)
    CorruptLog(String),
    /// The durable store's directory is already held open by another store
    /// (the rendered lock-file path) — a second writer would corrupt the
    /// write-ahead log, so the open is refused.
    StoreLocked(String),
}

impl fmt::Display for GpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpsError::Parse(e) => write!(f, "query parse error: {e}"),
            GpsError::Learn(e) => write!(f, "learning error: {e}"),
            GpsError::Io(e) => write!(f, "graph i/o error: {e}"),
            GpsError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            GpsError::UnknownEdge(edge) => write!(f, "unknown edge `{edge}`"),
            GpsError::UnknownSession(id) => write!(f, "unknown session #{id}"),
            GpsError::StoreIo(e) => write!(f, "durable store i/o error: {e}"),
            GpsError::CorruptLog(reason) => write!(f, "corrupt durable store: {reason}"),
            GpsError::StoreLocked(path) => {
                write!(f, "durable store locked by another open store: {path}")
            }
        }
    }
}

impl std::error::Error for GpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpsError::Parse(e) => Some(e),
            GpsError::Learn(e) => Some(e),
            GpsError::Io(e) => Some(e),
            GpsError::StoreIo(e) => Some(e),
            GpsError::UnknownNode(_)
            | GpsError::UnknownEdge(_)
            | GpsError::UnknownSession(_)
            | GpsError::CorruptLog(_)
            | GpsError::StoreLocked(_) => None,
        }
    }
}

impl From<gps_store::StoreError> for GpsError {
    fn from(e: gps_store::StoreError) -> Self {
        match e {
            gps_store::StoreError::Io(e) => GpsError::StoreIo(e),
            gps_store::StoreError::Corrupt { offset, reason } => {
                GpsError::CorruptLog(format!("{reason} (at byte {offset})"))
            }
            gps_store::StoreError::Locked { path } => {
                GpsError::StoreLocked(path.display().to_string())
            }
        }
    }
}

impl From<UpdateError> for GpsError {
    fn from(e: UpdateError) -> Self {
        match e {
            UpdateError::UnknownNode(name) => GpsError::UnknownNode(name),
            UpdateError::MissingEdge {
                source,
                label,
                target,
            } => GpsError::UnknownEdge(format!("{source} -{label}-> {target}")),
        }
    }
}

impl From<ParseError> for GpsError {
    fn from(e: ParseError) -> Self {
        GpsError::Parse(e)
    }
}

impl From<LearnError> for GpsError {
    fn from(e: LearnError) -> Self {
        GpsError::Learn(e)
    }
}

impl From<IoError> for GpsError {
    fn from(e: IoError) -> Self {
        GpsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::NodeId;

    #[test]
    fn displays_carry_layer_context() {
        let learn: GpsError = LearnError::NoPositiveExamples.into();
        assert!(learn.to_string().contains("learning error"));
        let unknown = GpsError::UnknownNode("Nowhere".to_string());
        assert!(unknown.to_string().contains("Nowhere"));
        let inconsistent: GpsError = LearnError::InconsistentResult {
            node: NodeId::new(3),
        }
        .into();
        assert!(inconsistent.to_string().contains("n3"));
    }

    #[test]
    fn sources_chain_to_layer_errors() {
        use std::error::Error as _;
        let learn: GpsError = LearnError::NoPositiveExamples.into();
        assert!(learn.source().is_some());
        assert!(GpsError::UnknownNode("x".into()).source().is_none());
    }
}
