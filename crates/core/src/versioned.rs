//! Epoch-versioned multi-version concurrency over [`EngineCore`]s — the
//! write path of a *live* served graph.
//!
//! The engine's read structures (CSR snapshot, label index, bounded
//! evaluation cache) are immutable by design, so updates work the way
//! snapshot-isolation databases do: writers never touch what readers hold.
//!
//! * Writers **stage** name-addressed [`UpdateOp`]s ([`GraphUpdate`]) into
//!   the store, then [`publish`](VersionedStore::publish): the staged ops are
//!   applied through a [`gps_graph::DeltaGraph`] overlay, compacted into a
//!   fresh snapshot stamped with the next epoch, and the whole read stack is
//!   *advanced* — the label index and planner statistics are patched through
//!   the delta (untouched label partitions are `Arc`-shared with the previous
//!   epoch), and the new evaluation cache inherits the old epoch's
//!   bounded-word snapshots with only the affected nodes re-enumerated.
//! * Readers resolve the **latest** core when they start
//!   ([`pin_latest`](VersionedStore::pin_latest)); a session holds its birth
//!   core's `Arc`s for its whole life, so a publish never changes what an
//!   in-flight session observes — transcripts are byte-stable across
//!   concurrent publishes (`tests/mvcc_conformance.rs`).
//! * When a superseded epoch's pin count drops to zero the store **retires**
//!   it: its cache entries are dropped atomically
//!   ([`gps_rpq::EvalCache::retire`]) and the core leaves the live set, so
//!   memory is bounded by (current epoch + epochs with in-flight sessions).
//!
//! The service layer wires this into sessions: `SessionManager` pins every
//! session to its birth epoch and `GpsService::update` is the client-facing
//! write API (see [`crate::service`]).
//!
//! ## Durability
//!
//! Every write goes through a pluggable [`GraphStore`] seam.  The default
//! [`MemoryStore`] persists nothing (zero cost — the engine behaves exactly
//! as before).  [`open_durable`](VersionedStore::open_durable) instead backs
//! the store with a [`FileStore`]: staged batches are appended to a
//! write-ahead log, each publish fsyncs one commit record *before* the
//! in-memory epoch swap (visible ⟹ durable), and snapshot checkpoints
//! bound the log per [`CheckpointPolicy`].  Reopening the same directory
//! replays the committed log suffix on top of the latest checkpoint through
//! the ordinary delta/advance machinery, so the recovered epoch carries a
//! patched label index and an inherited evaluation cache just like a live
//! publish would.

use crate::engine::{EngineCore, GpsBuilder};
use crate::error::GpsError;
use crate::metrics::CoreMetrics;
use gps_graph::{DeltaGraph, UpdateOp};
use gps_store::{FileStore, GraphStore, MemoryStore, StagedBatch, StoreMetrics};
use gps_telemetry::MetricsRegistry;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batch of staged mutations, addressed by node name (built incrementally
/// or from a pre-generated stream such as
/// `gps_datasets::updates::update_stream`).
#[derive(Debug, Clone, Default)]
pub struct GraphUpdate {
    ops: Vec<UpdateOp>,
}

impl GraphUpdate {
    /// An empty update.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a pre-generated op stream.
    pub fn from_ops(ops: Vec<UpdateOp>) -> Self {
        Self { ops }
    }

    /// Stages a node insertion.
    pub fn add_node(mut self, name: impl Into<String>) -> Self {
        self.ops.push(UpdateOp::AddNode(name.into()));
        self
    }

    /// Stages an edge insertion (endpoints must exist by publish time).
    pub fn add_edge(
        mut self,
        source: impl Into<String>,
        label: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        self.ops.push(UpdateOp::AddEdge {
            source: source.into(),
            label: label.into(),
            target: target.into(),
        });
        self
    }

    /// Stages an edge deletion.
    pub fn remove_edge(
        mut self,
        source: impl Into<String>,
        label: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        self.ops.push(UpdateOp::RemoveEdge {
            source: source.into(),
            label: label.into(),
            target: target.into(),
        });
        self
    }

    /// Number of staged ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The staged ops.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }
}

/// When a durable store writes a snapshot checkpoint and truncates its
/// write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `n` publishes; `0` disables checkpointing
    /// (the log grows until the store is reopened with a different policy).
    pub every_n_publishes: u64,
}

impl CheckpointPolicy {
    /// Never checkpoint — recovery replays the whole log.
    pub const NEVER: Self = Self {
        every_n_publishes: 0,
    };
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            every_n_publishes: 32,
        }
    }
}

/// What a publish cost at the durability layer (all zeros under the default
/// in-memory store).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DurabilityReport {
    /// WAL bytes this publish appended (stage records + commit record).
    pub wal_bytes: u64,
    /// Wall-clock time of the commit-record fsync.
    pub fsync: Duration,
    /// Whether this publish triggered a snapshot checkpoint.
    pub checkpointed: bool,
    /// A checkpoint that was due but failed, rendered for display.  The
    /// publish itself succeeded — its commit record is durable and the new
    /// epoch is visible — so a checkpoint failure is *not* a publish
    /// failure: returning `Err` would invite callers to re-stage and
    /// double-apply ops that are already in.  The store poisons itself on
    /// failures that desynchronize the log, so subsequent writes fail fast;
    /// this field is how the original cause surfaces.
    pub checkpoint_error: Option<String>,
}

/// What [`VersionedStore::open_durable`] recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when the directory held no prior state (a fresh store was
    /// initialised from the builder's graph).
    pub created: bool,
    /// Epoch of the checkpoint the recovery started from.
    pub checkpoint_epoch: u64,
    /// Committed publishes replayed from the write-ahead log.
    pub replayed_publishes: usize,
    /// Total ops across the replayed publishes.
    pub replayed_ops: usize,
    /// The epoch the store serves after recovery.
    pub current_epoch: u64,
    /// Bytes of torn or uncommitted WAL tail discarded by the recovery.
    pub discarded_bytes: u64,
}

/// What one [`VersionedStore::publish`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReport {
    /// The epoch the publish produced (unchanged for an empty publish).
    pub epoch: u64,
    /// Nodes inserted.
    pub added_nodes: usize,
    /// Edges inserted.
    pub added_edges: usize,
    /// Edges removed.
    pub removed_edges: usize,
    /// Label partitions the index patch touched.
    pub touched_labels: usize,
    /// Cached answers whose DFA alphabet is disjoint from the touched labels,
    /// migrated verbatim into the new epoch's cache (Tier-1 carry).
    pub carried_answers: usize,
    /// Cached answers re-derived from their seeded fixed point restricted to
    /// an insert-only delta (Tier-2 reseed).
    pub reseeded_answers: usize,
    /// Cached answers re-derived across a removal-bearing delta by the
    /// over-delete/re-derive sweep (Tier-3 delete-reseed).
    pub delete_reseeded_answers: usize,
    /// Cached answers dropped to a cold recompute on next use (over-delete
    /// budget blown, no captured seed, or capacity-evicted — the cache's
    /// `gps_rpq_cache_fallback_*` reason counters split this sum).
    pub recomputed_answers: usize,
    /// Superseded epochs retired by this publish (no sessions pinned).
    pub retired_epochs: usize,
    /// Wall-clock time of the publish (delta apply + compact + index/cache
    /// patch + swap).
    pub latency: Duration,
    /// What the publish cost at the durability layer (zeros under the
    /// default in-memory store).
    pub durability: DurabilityReport,
}

/// One live epoch: its core and the number of sessions pinned to it.
#[derive(Debug)]
struct EpochSlot {
    core: EngineCore,
    pins: usize,
}

/// An epoch-versioned store of [`EngineCore`]s: one *latest* epoch serving
/// new readers, plus every superseded epoch that still has pinned readers.
/// See the [module docs](self) for the writer/reader model.
#[derive(Debug)]
pub struct VersionedStore {
    /// The core new readers resolve.  Swapped under the `epochs` lock so a
    /// pin never observes a latest epoch missing from the registry.
    latest: RwLock<EngineCore>,
    /// Batches staged since the last publish, each carrying the sequence
    /// number its WAL record was written under.
    staged: Mutex<Vec<StagedBatch>>,
    /// The live epochs (the latest plus superseded-but-pinned ones).
    epochs: Mutex<BTreeMap<u64, EpochSlot>>,
    /// Serializes publishes (stage/pin/read paths are not blocked by an
    /// in-flight publish until its final swap).
    publish_lock: Mutex<()>,
    /// The durability seam every write goes through.
    store: Arc<dyn GraphStore>,
    policy: CheckpointPolicy,
    publishes_since_checkpoint: AtomicU64,
    publishes: AtomicU64,
    retired: AtomicU64,
    /// The registry the founding core was built with (disabled by default);
    /// event records go here, and [`metrics`](Self::metrics) are pre-bound
    /// handles into it.
    registry: Arc<MetricsRegistry>,
    metrics: CoreMetrics,
}

impl VersionedStore {
    /// Starts an in-memory store at `core`'s epoch (nothing is persisted —
    /// the zero-cost default).
    pub fn new(core: EngineCore) -> Self {
        Self::with_store(
            core,
            Arc::new(MemoryStore::new()),
            CheckpointPolicy::default(),
        )
    }

    /// Starts a store at `core`'s epoch over an explicit durability seam.
    ///
    /// The caller guarantees `store` already holds state covering `core`
    /// (a fresh store, or one whose latest checkpoint is `core`'s snapshot)
    /// — [`open_durable`](Self::open_durable) is the safe entry point for
    /// file-backed stores.
    pub fn with_store(
        core: EngineCore,
        store: Arc<dyn GraphStore>,
        policy: CheckpointPolicy,
    ) -> Self {
        let registry = Arc::clone(core.metrics_registry());
        let metrics = CoreMetrics::from_registry(&registry);
        store.set_metrics(StoreMetrics::from_registry(&registry));
        metrics.live_epochs.set(1);
        metrics.current_epoch.set(core.epoch());
        let mut epochs = BTreeMap::new();
        epochs.insert(
            core.epoch(),
            EpochSlot {
                core: core.clone(),
                pins: 0,
            },
        );
        Self {
            latest: RwLock::new(core),
            staged: Mutex::new(Vec::new()),
            epochs: Mutex::new(epochs),
            publish_lock: Mutex::new(()),
            store,
            policy,
            publishes_since_checkpoint: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            registry,
            metrics,
        }
    }

    /// Opens (creating if needed) a durable store at `dir`: the write path
    /// of [`Self::new`] plus a file-backed [`GraphStore`] underneath.
    ///
    /// On a fresh directory the builder's graph becomes the base checkpoint.
    /// On an existing one the builder contributes only its configuration
    /// (evaluation mode, planner, session knobs, checkpoint policy) — the
    /// graph state comes from the latest checkpoint plus a replay of every
    /// committed write-ahead-log batch, each applied through the same
    /// delta/advance machinery as a live publish.  Torn or uncommitted log
    /// tails are discarded; a crash at any byte offset recovers to either
    /// the pre- or the post-publish graph.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        builder: GpsBuilder,
    ) -> Result<(Self, RecoveryReport), GpsError> {
        let policy = builder.checkpoint_policy();
        let registry = Arc::clone(builder.metrics_registry());
        let metrics = CoreMetrics::from_registry(&registry);
        let recovery_started = Instant::now();
        let (file_store, recovered) = FileStore::open(dir)?;
        let store: Arc<dyn GraphStore> = Arc::new(file_store);
        store.set_metrics(StoreMetrics::from_registry(&registry));

        let (core, created, checkpoint_epoch) = match recovered.snapshot {
            None => {
                if !recovered.batches.is_empty() {
                    return Err(GpsError::CorruptLog(
                        "write-ahead log without a base checkpoint".to_string(),
                    ));
                }
                let core = builder.build_core();
                store.checkpoint(core.snapshot(), &[])?;
                let epoch = core.epoch();
                (core, true, epoch)
            }
            Some(snapshot) => {
                let checkpoint_epoch = snapshot.epoch();
                let core = builder.core_over(Arc::new(snapshot));
                (core, false, checkpoint_epoch)
            }
        };

        let mut core = core;
        let mut replayed_publishes = 0usize;
        let mut replayed_ops = 0usize;
        for batch in &recovered.batches {
            // Batches at or below the checkpoint epoch survive when a crash
            // interrupted a checkpoint between the snapshot rename and the
            // WAL truncation; they are already folded into the snapshot.
            if batch.epoch <= core.epoch() {
                continue;
            }
            if batch.epoch != core.epoch() + 1 {
                return Err(GpsError::CorruptLog(format!(
                    "write-ahead log skips from epoch {} to {}",
                    core.epoch(),
                    batch.epoch
                )));
            }
            let mut overlay = DeltaGraph::new(core.shared_snapshot());
            overlay.apply_all(&batch.ops).map_err(|e| {
                GpsError::CorruptLog(format!(
                    "committed batch for epoch {} does not apply: {}",
                    batch.epoch,
                    GpsError::from(e)
                ))
            })?;
            let delta = overlay.delta();
            let snapshot = Arc::new(overlay.compact());
            // Replay cares only about reaching the final epoch; the per-step
            // migration split is a live-publish observability concern.
            let (advanced, _migration) = core.advance(snapshot, &delta);
            core = advanced;
            replayed_publishes += 1;
            replayed_ops += batch.ops.len();
        }
        if replayed_publishes > 0 && policy.every_n_publishes != 0 {
            // Fold the replay into a fresh checkpoint so the next open is
            // cheap; under a `NEVER` policy the log is left untouched.
            store.checkpoint(core.snapshot(), &[])?;
        }

        let report = RecoveryReport {
            created,
            checkpoint_epoch,
            replayed_publishes,
            replayed_ops,
            current_epoch: core.epoch(),
            discarded_bytes: recovered.discarded_bytes,
        };
        metrics
            .recovery_replay
            .record_duration(recovery_started.elapsed());
        registry.event_with("recovery", || {
            vec![
                ("created".to_string(), report.created.to_string()),
                (
                    "checkpoint_epoch".to_string(),
                    report.checkpoint_epoch.to_string(),
                ),
                (
                    "replayed_publishes".to_string(),
                    report.replayed_publishes.to_string(),
                ),
                ("replayed_ops".to_string(), report.replayed_ops.to_string()),
                (
                    "current_epoch".to_string(),
                    report.current_epoch.to_string(),
                ),
                (
                    "discarded_bytes".to_string(),
                    report.discarded_bytes.to_string(),
                ),
            ]
        });
        Ok((Self::with_store(core, store, policy), report))
    }

    /// A clone of the latest core (un-pinned: for one-shot reads).
    pub fn latest(&self) -> EngineCore {
        self.latest.read().clone()
    }

    /// The telemetry registry this store records into — the founding core's
    /// registry (disabled unless [`GpsBuilder::metrics`] wired one).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The epoch new sessions currently resolve.
    pub fn current_epoch(&self) -> u64 {
        self.latest.read().epoch()
    }

    /// Number of live epochs (latest + superseded ones with pinned readers).
    pub fn live_epochs(&self) -> usize {
        self.epochs.lock().len()
    }

    /// Total publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Total superseded epochs retired so far.
    pub fn retired_count(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Number of staged ops awaiting the next publish.
    pub fn staged_len(&self) -> usize {
        self.staged.lock().iter().map(|batch| batch.ops.len()).sum()
    }

    /// Whether writes reach stable storage (`false` for the default
    /// in-memory store).
    pub fn is_durable(&self) -> bool {
        self.store.is_durable()
    }

    /// Bytes currently held by the durable store's write-ahead log (0 for
    /// the in-memory store).
    pub fn wal_bytes(&self) -> u64 {
        self.store.wal_bytes()
    }

    /// Stages an update for the next [`publish`](Self::publish), appending
    /// it to the durable store's write-ahead log (without fsync — only the
    /// publish's commit record is synced).
    pub fn stage(&self, update: GraphUpdate) -> Result<(), GpsError> {
        if update.is_empty() {
            return Ok(());
        }
        // The WAL append happens under the staged lock so record order on
        // disk matches buffer order (commit ranges assume it).
        let mut staged = self.staged.lock();
        let seq = self.store.append_staged(&update.ops)?;
        self.metrics.staged_ops.add(update.ops.len() as u64);
        self.registry.event_with("stage", || {
            vec![
                ("seq".to_string(), seq.to_string()),
                ("ops".to_string(), update.ops.len().to_string()),
            ]
        });
        staged.push(StagedBatch {
            seq,
            ops: update.ops,
        });
        Ok(())
    }

    /// Resolves the latest core *and* pins its epoch: the epoch stays live —
    /// and its cache un-retired — until the matching
    /// [`unpin`](Self::unpin).  This is what a session manager calls at
    /// session open.
    pub fn pin_latest(&self) -> EngineCore {
        let mut epochs = self.epochs.lock();
        let core = self.latest.read().clone();
        epochs
            .get_mut(&core.epoch())
            .expect("the latest epoch is always registered")
            .pins += 1;
        core
    }

    /// Releases one pin of `epoch`.  A superseded epoch whose last pin is
    /// released is retired immediately (entries dropped, core removed from
    /// the live set).
    pub fn unpin(&self, epoch: u64) {
        let mut epochs = self.epochs.lock();
        let current = self.latest.read().epoch();
        if let Some(slot) = epochs.get_mut(&epoch) {
            slot.pins = slot.pins.saturating_sub(1);
            if slot.pins == 0 && epoch != current {
                let slot = epochs.remove(&epoch).expect("just seen");
                slot.core.eval_cache().retire();
                self.retired.fetch_add(1, Ordering::Relaxed);
                self.metrics.retired_epochs.inc();
                self.metrics.live_epochs.set(epochs.len() as u64);
                self.registry
                    .event_with("retire", || vec![("epoch".to_string(), epoch.to_string())]);
            }
        }
    }

    /// Stages `update` and immediately publishes it.
    pub fn update(&self, update: GraphUpdate) -> Result<PublishReport, GpsError> {
        self.stage(update)?;
        self.publish()
    }

    /// Applies every staged op and publishes the next epoch.
    ///
    /// The heavy work (delta application, compaction, index/stats/cache
    /// patching) happens outside any reader-visible lock; only the final
    /// swap holds the epoch registry.  When the core's label index is
    /// sharded ([`GpsBuilder::index_shards`](crate::GpsBuilder::index_shards)
    /// or [`EvalMode::Parallel`](crate::EvalMode::Parallel)), the index
    /// patch inside `advance` fans the touched (direction, label)
    /// partitions out across scoped worker threads — publish latency on
    /// wide-alphabet corpora drops accordingly, with byte-identical
    /// results.  In-flight sessions keep their pinned
    /// epoch; sessions opened after the swap see the new one.  On error (an
    /// op referencing a missing node or edge) nothing is published and the
    /// whole batch is discarded — publishes are all-or-nothing.
    ///
    /// Under a durable store the commit record is fsynced *before* the
    /// in-memory swap: a publish is visible only once it is durable, and a
    /// crash at any point recovers to either the previous or the new epoch.
    /// A checkpoint failure *after* the swap does not fail the publish —
    /// `Err` from this method always means nothing was published.  It is
    /// surfaced in [`DurabilityReport::checkpoint_error`] instead.
    pub fn publish(&self) -> Result<PublishReport, GpsError> {
        let _serialized = self.publish_lock.lock();
        let started = Instant::now();
        let batches: Vec<StagedBatch> = std::mem::take(&mut *self.staged.lock());
        let base = self.latest();
        if batches.is_empty() {
            return Ok(PublishReport {
                epoch: base.epoch(),
                added_nodes: 0,
                added_edges: 0,
                removed_edges: 0,
                touched_labels: 0,
                carried_answers: 0,
                reseeded_answers: 0,
                delete_reseeded_answers: 0,
                recomputed_answers: 0,
                retired_epochs: 0,
                latency: started.elapsed(),
                durability: DurabilityReport::default(),
            });
        }
        let first_seq = batches.first().expect("non-empty").seq;
        let last_seq = batches.last().expect("non-empty").seq;
        let ops: Vec<UpdateOp> = batches.into_iter().flat_map(|batch| batch.ops).collect();

        let mut overlay = DeltaGraph::new(base.shared_snapshot());
        overlay.apply_all(&ops)?;
        let delta = overlay.delta();
        let snapshot = Arc::new(overlay.compact());
        let (next, migration) = base.advance(Arc::clone(&snapshot), &delta);
        let epoch = next.epoch();

        // Durability point: the publish becomes visible to readers only
        // after its commit record is on stable storage.
        let commit = self
            .store
            .commit(epoch, first_seq, last_seq, ops.len() as u32)?;

        let mut retired_epochs = 0usize;
        let live_epochs;
        {
            let mut epochs = self.epochs.lock();
            *self.latest.write() = next.clone();
            epochs.insert(
                epoch,
                EpochSlot {
                    core: next,
                    pins: 0,
                },
            );
            let stale: Vec<u64> = epochs
                .iter()
                .filter(|&(&e, slot)| e != epoch && slot.pins == 0)
                .map(|(&e, _)| e)
                .collect();
            for e in stale {
                let slot = epochs.remove(&e).expect("just collected");
                slot.core.eval_cache().retire();
                retired_epochs += 1;
            }
            live_epochs = epochs.len() as u64;
        }
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.retired
            .fetch_add(retired_epochs as u64, Ordering::Relaxed);
        self.metrics.publishes.inc();
        self.metrics.retired_epochs.add(retired_epochs as u64);
        self.metrics.live_epochs.set(live_epochs);
        self.metrics.current_epoch.set(epoch);
        // The publish is already committed, swapped and visible: a
        // checkpoint failure past this point must not turn into an `Err`
        // (callers would read it as "publish failed" and re-stage ops that
        // are already in).  It is reported, not propagated; the store
        // poisons itself when the failure left the log inconsistent.
        let (checkpointed, checkpoint_error) = match self.maybe_checkpoint() {
            Ok(done) => (done, None),
            Err(e) => (false, Some(e.to_string())),
        };
        if checkpointed {
            self.registry.event_with("checkpoint", || {
                vec![("epoch".to_string(), epoch.to_string())]
            });
        }
        if let Some(error) = &checkpoint_error {
            self.metrics.checkpoint_errors.inc();
            self.registry.event_with("checkpoint_error", || {
                vec![
                    ("epoch".to_string(), epoch.to_string()),
                    ("error".to_string(), error.clone()),
                ]
            });
        }
        let latency = started.elapsed();
        self.metrics.publish_latency.record_duration(latency);
        self.registry.event_with("publish", || {
            vec![
                ("epoch".to_string(), epoch.to_string()),
                ("ops".to_string(), ops.len().to_string()),
                ("retired_epochs".to_string(), retired_epochs.to_string()),
            ]
        });
        Ok(PublishReport {
            epoch,
            added_nodes: delta.added_nodes,
            added_edges: delta.added_edges.len(),
            removed_edges: delta.removed_edges.len(),
            touched_labels: delta.touched_labels().len(),
            carried_answers: migration.carried,
            reseeded_answers: migration.reseeded,
            delete_reseeded_answers: migration.delete_reseeded,
            recomputed_answers: migration.recomputed,
            retired_epochs,
            latency,
            durability: DurabilityReport {
                wal_bytes: commit.wal_bytes,
                fsync: commit.fsync,
                checkpointed,
                checkpoint_error,
            },
        })
    }

    /// Writes a checkpoint if the policy says this publish is due.  Runs
    /// under the publish lock; holds the staged lock across the store call
    /// so batches staged concurrently are either re-appended after the WAL
    /// truncation or land after it — never lost.
    fn maybe_checkpoint(&self) -> Result<bool, GpsError> {
        if self.policy.every_n_publishes == 0 {
            return Ok(false);
        }
        let due = self
            .publishes_since_checkpoint
            .fetch_add(1, Ordering::Relaxed)
            + 1
            >= self.policy.every_n_publishes;
        if !due {
            return Ok(false);
        }
        let core = self.latest();
        let staged = self.staged.lock();
        self.store.checkpoint(core.snapshot(), &staged)?;
        self.publishes_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EvalMode};
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

    fn store(mode: EvalMode) -> VersionedStore {
        let (graph, _) = figure1_graph();
        VersionedStore::new(Engine::builder(graph).eval_mode(mode).build_core())
    }

    #[test]
    fn publish_advances_the_epoch_and_new_readers_see_it() {
        for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
            let store = store(mode);
            assert_eq!(store.current_epoch(), 0);
            let before = store.latest().evaluate(MOTIVATING_QUERY).unwrap();

            // N9 gains a cinema: bus(N5->N9 exists? no — build our own hop).
            let report = store
                .update(
                    GraphUpdate::new()
                        .add_node("C9")
                        .add_edge("N5", "cinema", "C9"),
                )
                .unwrap();
            assert_eq!(report.epoch, 1, "{mode:?}");
            assert_eq!(report.added_nodes, 1);
            assert_eq!(report.added_edges, 1);
            assert_eq!(store.current_epoch(), 1);
            assert_eq!(store.live_epochs(), 1, "epoch 0 had no pins: retired");
            assert_eq!(report.retired_epochs, 1);

            let after = store.latest().evaluate(MOTIVATING_QUERY).unwrap();
            let n5 = store.latest().snapshot().node_by_name("N5").unwrap();
            assert!(after.contains(n5), "N5 now reaches a cinema ({mode:?})");
            assert!(!before.contains(n5));
        }
    }

    #[test]
    fn pinned_epochs_survive_a_publish_and_retire_on_unpin() {
        let store = store(EvalMode::Frontier);
        let pinned = store.pin_latest();
        assert_eq!(pinned.epoch(), 0);
        store.update(GraphUpdate::new().add_node("X9")).unwrap();
        assert_eq!(store.live_epochs(), 2, "epoch 0 still pinned");
        assert!(!pinned.eval_cache().is_retired());
        // The pinned core still answers against its own snapshot.
        assert!(pinned.snapshot().node_by_name("X9").is_none());
        assert!(store.latest().snapshot().node_by_name("X9").is_some());
        store.unpin(0);
        assert_eq!(store.live_epochs(), 1);
        assert!(pinned.eval_cache().is_retired());
        assert_eq!(store.retired_count(), 1);
    }

    #[test]
    fn failed_publishes_are_all_or_nothing() {
        let store = store(EvalMode::Naive);
        let result = store.update(
            GraphUpdate::new()
                .add_edge("N1", "bus", "N2")
                .remove_edge("N1", "bus", "Nowhere"),
        );
        assert!(matches!(result, Err(GpsError::UnknownNode(_))));
        assert_eq!(store.current_epoch(), 0, "nothing was published");
        assert_eq!(store.staged_len(), 0, "the failed batch is discarded");
        let missing = store.update(GraphUpdate::new().remove_edge("N1", "bus", "N2"));
        assert!(matches!(missing, Err(GpsError::UnknownEdge(_))));
    }

    #[test]
    fn empty_publish_is_a_noop() {
        let store = store(EvalMode::Frontier);
        let report = store.publish().unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(report.added_edges, 0);
        assert_eq!(store.publish_count(), 0);
    }

    #[test]
    fn frontier_epochs_share_untouched_index_partitions() {
        let store = store(EvalMode::Frontier);
        let old = store.latest();
        let old_index = old.shared_index().unwrap();
        store
            .update(GraphUpdate::new().add_edge("N1", "bus", "N2"))
            .unwrap();
        let new = store.latest();
        let new_index = new.shared_index().unwrap();
        assert!(!Arc::ptr_eq(&old_index, &new_index));
        // Same answers on both epochs for a query over an untouched label.
        let q = "cinema";
        assert_eq!(
            old.evaluate(q).unwrap().nodes(),
            new.evaluate(q).unwrap().nodes()
        );
    }

    #[test]
    fn publish_inherits_bounded_word_snapshots() {
        let store = store(EvalMode::Frontier);
        let old = store.latest();
        old.eval_cache().bounded_words(3);
        store
            .update(GraphUpdate::new().add_edge("N1", "bus", "N2"))
            .unwrap();
        let new = store.latest();
        assert_eq!(
            new.eval_cache().words_len(),
            1,
            "the new epoch's word snapshot was seeded by the publish"
        );
        // And it matches a cold enumeration.
        let cold = gps_rpq::EvalCache::from_csr(new.snapshot().clone());
        assert_eq!(*new.eval_cache().bounded_words(3), *cold.bounded_words(3));
    }
}
