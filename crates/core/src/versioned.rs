//! Epoch-versioned multi-version concurrency over [`EngineCore`]s — the
//! write path of a *live* served graph.
//!
//! The engine's read structures (CSR snapshot, label index, bounded
//! evaluation cache) are immutable by design, so updates work the way
//! snapshot-isolation databases do: writers never touch what readers hold.
//!
//! * Writers **stage** name-addressed [`UpdateOp`]s ([`GraphUpdate`]) into
//!   the store, then [`publish`](VersionedStore::publish): the staged ops are
//!   applied through a [`gps_graph::DeltaGraph`] overlay, compacted into a
//!   fresh snapshot stamped with the next epoch, and the whole read stack is
//!   *advanced* — the label index and planner statistics are patched through
//!   the delta (untouched label partitions are `Arc`-shared with the previous
//!   epoch), and the new evaluation cache inherits the old epoch's
//!   bounded-word snapshots with only the affected nodes re-enumerated.
//! * Readers resolve the **latest** core when they start
//!   ([`pin_latest`](VersionedStore::pin_latest)); a session holds its birth
//!   core's `Arc`s for its whole life, so a publish never changes what an
//!   in-flight session observes — transcripts are byte-stable across
//!   concurrent publishes (`tests/mvcc_conformance.rs`).
//! * When a superseded epoch's pin count drops to zero the store **retires**
//!   it: its cache entries are dropped atomically
//!   ([`gps_rpq::EvalCache::retire`]) and the core leaves the live set, so
//!   memory is bounded by (current epoch + epochs with in-flight sessions).
//!
//! The service layer wires this into sessions: `SessionManager` pins every
//! session to its birth epoch and `GpsService::update` is the client-facing
//! write API (see [`crate::service`]).

use crate::engine::EngineCore;
use crate::error::GpsError;
use gps_graph::{DeltaGraph, UpdateOp};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batch of staged mutations, addressed by node name (built incrementally
/// or from a pre-generated stream such as
/// `gps_datasets::updates::update_stream`).
#[derive(Debug, Clone, Default)]
pub struct GraphUpdate {
    ops: Vec<UpdateOp>,
}

impl GraphUpdate {
    /// An empty update.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a pre-generated op stream.
    pub fn from_ops(ops: Vec<UpdateOp>) -> Self {
        Self { ops }
    }

    /// Stages a node insertion.
    pub fn add_node(mut self, name: impl Into<String>) -> Self {
        self.ops.push(UpdateOp::AddNode(name.into()));
        self
    }

    /// Stages an edge insertion (endpoints must exist by publish time).
    pub fn add_edge(
        mut self,
        source: impl Into<String>,
        label: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        self.ops.push(UpdateOp::AddEdge {
            source: source.into(),
            label: label.into(),
            target: target.into(),
        });
        self
    }

    /// Stages an edge deletion.
    pub fn remove_edge(
        mut self,
        source: impl Into<String>,
        label: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        self.ops.push(UpdateOp::RemoveEdge {
            source: source.into(),
            label: label.into(),
            target: target.into(),
        });
        self
    }

    /// Number of staged ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The staged ops.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }
}

/// What one [`VersionedStore::publish`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReport {
    /// The epoch the publish produced (unchanged for an empty publish).
    pub epoch: u64,
    /// Nodes inserted.
    pub added_nodes: usize,
    /// Edges inserted.
    pub added_edges: usize,
    /// Edges removed.
    pub removed_edges: usize,
    /// Label partitions the index patch touched.
    pub touched_labels: usize,
    /// Superseded epochs retired by this publish (no sessions pinned).
    pub retired_epochs: usize,
    /// Wall-clock time of the publish (delta apply + compact + index/cache
    /// patch + swap).
    pub latency: Duration,
}

/// One live epoch: its core and the number of sessions pinned to it.
#[derive(Debug)]
struct EpochSlot {
    core: EngineCore,
    pins: usize,
}

/// An epoch-versioned store of [`EngineCore`]s: one *latest* epoch serving
/// new readers, plus every superseded epoch that still has pinned readers.
/// See the [module docs](self) for the writer/reader model.
#[derive(Debug)]
pub struct VersionedStore {
    /// The core new readers resolve.  Swapped under the `epochs` lock so a
    /// pin never observes a latest epoch missing from the registry.
    latest: RwLock<EngineCore>,
    /// Ops staged since the last publish.
    staged: Mutex<Vec<UpdateOp>>,
    /// The live epochs (the latest plus superseded-but-pinned ones).
    epochs: Mutex<BTreeMap<u64, EpochSlot>>,
    /// Serializes publishes (stage/pin/read paths are not blocked by an
    /// in-flight publish until its final swap).
    publish_lock: Mutex<()>,
    publishes: AtomicU64,
    retired: AtomicU64,
}

impl VersionedStore {
    /// Starts a store at `core`'s epoch.
    pub fn new(core: EngineCore) -> Self {
        let mut epochs = BTreeMap::new();
        epochs.insert(
            core.epoch(),
            EpochSlot {
                core: core.clone(),
                pins: 0,
            },
        );
        Self {
            latest: RwLock::new(core),
            staged: Mutex::new(Vec::new()),
            epochs: Mutex::new(epochs),
            publish_lock: Mutex::new(()),
            publishes: AtomicU64::new(0),
            retired: AtomicU64::new(0),
        }
    }

    /// A clone of the latest core (un-pinned: for one-shot reads).
    pub fn latest(&self) -> EngineCore {
        self.latest.read().clone()
    }

    /// The epoch new sessions currently resolve.
    pub fn current_epoch(&self) -> u64 {
        self.latest.read().epoch()
    }

    /// Number of live epochs (latest + superseded ones with pinned readers).
    pub fn live_epochs(&self) -> usize {
        self.epochs.lock().len()
    }

    /// Total publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Total superseded epochs retired so far.
    pub fn retired_count(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Number of staged ops awaiting the next publish.
    pub fn staged_len(&self) -> usize {
        self.staged.lock().len()
    }

    /// Stages an update for the next [`publish`](Self::publish).
    pub fn stage(&self, update: GraphUpdate) {
        self.staged.lock().extend(update.ops);
    }

    /// Resolves the latest core *and* pins its epoch: the epoch stays live —
    /// and its cache un-retired — until the matching
    /// [`unpin`](Self::unpin).  This is what a session manager calls at
    /// session open.
    pub fn pin_latest(&self) -> EngineCore {
        let mut epochs = self.epochs.lock();
        let core = self.latest.read().clone();
        epochs
            .get_mut(&core.epoch())
            .expect("the latest epoch is always registered")
            .pins += 1;
        core
    }

    /// Releases one pin of `epoch`.  A superseded epoch whose last pin is
    /// released is retired immediately (entries dropped, core removed from
    /// the live set).
    pub fn unpin(&self, epoch: u64) {
        let mut epochs = self.epochs.lock();
        let current = self.latest.read().epoch();
        if let Some(slot) = epochs.get_mut(&epoch) {
            slot.pins = slot.pins.saturating_sub(1);
            if slot.pins == 0 && epoch != current {
                let slot = epochs.remove(&epoch).expect("just seen");
                slot.core.eval_cache().retire();
                self.retired.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stages `update` and immediately publishes it.
    pub fn update(&self, update: GraphUpdate) -> Result<PublishReport, GpsError> {
        self.stage(update);
        self.publish()
    }

    /// Applies every staged op and publishes the next epoch.
    ///
    /// The heavy work (delta application, compaction, index/stats/cache
    /// patching) happens outside any reader-visible lock; only the final
    /// swap holds the epoch registry.  In-flight sessions keep their pinned
    /// epoch; sessions opened after the swap see the new one.  On error (an
    /// op referencing a missing node or edge) nothing is published and the
    /// whole batch is discarded — publishes are all-or-nothing.
    pub fn publish(&self) -> Result<PublishReport, GpsError> {
        let _serialized = self.publish_lock.lock();
        let started = Instant::now();
        let ops: Vec<UpdateOp> = std::mem::take(&mut *self.staged.lock());
        let base = self.latest();
        if ops.is_empty() {
            return Ok(PublishReport {
                epoch: base.epoch(),
                added_nodes: 0,
                added_edges: 0,
                removed_edges: 0,
                touched_labels: 0,
                retired_epochs: 0,
                latency: started.elapsed(),
            });
        }

        let mut overlay = DeltaGraph::new(base.shared_snapshot());
        overlay.apply_all(&ops)?;
        let delta = overlay.delta();
        let snapshot = Arc::new(overlay.compact());
        let next = base.advance(Arc::clone(&snapshot), &delta);
        let epoch = next.epoch();

        let mut retired_epochs = 0usize;
        {
            let mut epochs = self.epochs.lock();
            *self.latest.write() = next.clone();
            epochs.insert(
                epoch,
                EpochSlot {
                    core: next,
                    pins: 0,
                },
            );
            let stale: Vec<u64> = epochs
                .iter()
                .filter(|&(&e, slot)| e != epoch && slot.pins == 0)
                .map(|(&e, _)| e)
                .collect();
            for e in stale {
                let slot = epochs.remove(&e).expect("just collected");
                slot.core.eval_cache().retire();
                retired_epochs += 1;
            }
        }
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.retired
            .fetch_add(retired_epochs as u64, Ordering::Relaxed);
        Ok(PublishReport {
            epoch,
            added_nodes: delta.added_nodes,
            added_edges: delta.added_edges.len(),
            removed_edges: delta.removed_edges.len(),
            touched_labels: delta.touched_labels().len(),
            retired_epochs,
            latency: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EvalMode};
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

    fn store(mode: EvalMode) -> VersionedStore {
        let (graph, _) = figure1_graph();
        VersionedStore::new(Engine::builder(graph).eval_mode(mode).build_core())
    }

    #[test]
    fn publish_advances_the_epoch_and_new_readers_see_it() {
        for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
            let store = store(mode);
            assert_eq!(store.current_epoch(), 0);
            let before = store.latest().evaluate(MOTIVATING_QUERY).unwrap();

            // N9 gains a cinema: bus(N5->N9 exists? no — build our own hop).
            let report = store
                .update(
                    GraphUpdate::new()
                        .add_node("C9")
                        .add_edge("N5", "cinema", "C9"),
                )
                .unwrap();
            assert_eq!(report.epoch, 1, "{mode:?}");
            assert_eq!(report.added_nodes, 1);
            assert_eq!(report.added_edges, 1);
            assert_eq!(store.current_epoch(), 1);
            assert_eq!(store.live_epochs(), 1, "epoch 0 had no pins: retired");
            assert_eq!(report.retired_epochs, 1);

            let after = store.latest().evaluate(MOTIVATING_QUERY).unwrap();
            let n5 = store.latest().snapshot().node_by_name("N5").unwrap();
            assert!(after.contains(n5), "N5 now reaches a cinema ({mode:?})");
            assert!(!before.contains(n5));
        }
    }

    #[test]
    fn pinned_epochs_survive_a_publish_and_retire_on_unpin() {
        let store = store(EvalMode::Frontier);
        let pinned = store.pin_latest();
        assert_eq!(pinned.epoch(), 0);
        store.update(GraphUpdate::new().add_node("X9")).unwrap();
        assert_eq!(store.live_epochs(), 2, "epoch 0 still pinned");
        assert!(!pinned.eval_cache().is_retired());
        // The pinned core still answers against its own snapshot.
        assert!(pinned.snapshot().node_by_name("X9").is_none());
        assert!(store.latest().snapshot().node_by_name("X9").is_some());
        store.unpin(0);
        assert_eq!(store.live_epochs(), 1);
        assert!(pinned.eval_cache().is_retired());
        assert_eq!(store.retired_count(), 1);
    }

    #[test]
    fn failed_publishes_are_all_or_nothing() {
        let store = store(EvalMode::Naive);
        let result = store.update(
            GraphUpdate::new()
                .add_edge("N1", "bus", "N2")
                .remove_edge("N1", "bus", "Nowhere"),
        );
        assert!(matches!(result, Err(GpsError::UnknownNode(_))));
        assert_eq!(store.current_epoch(), 0, "nothing was published");
        assert_eq!(store.staged_len(), 0, "the failed batch is discarded");
        let missing = store.update(GraphUpdate::new().remove_edge("N1", "bus", "N2"));
        assert!(matches!(missing, Err(GpsError::UnknownEdge(_))));
    }

    #[test]
    fn empty_publish_is_a_noop() {
        let store = store(EvalMode::Frontier);
        let report = store.publish().unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(report.added_edges, 0);
        assert_eq!(store.publish_count(), 0);
    }

    #[test]
    fn frontier_epochs_share_untouched_index_partitions() {
        let store = store(EvalMode::Frontier);
        let old = store.latest();
        let old_index = old.shared_index().unwrap();
        store
            .update(GraphUpdate::new().add_edge("N1", "bus", "N2"))
            .unwrap();
        let new = store.latest();
        let new_index = new.shared_index().unwrap();
        assert!(!Arc::ptr_eq(&old_index, &new_index));
        // Same answers on both epochs for a query over an untouched label.
        let q = "cinema";
        assert_eq!(
            old.evaluate(q).unwrap().nodes(),
            new.evaluate(q).unwrap().nodes()
        );
    }

    #[test]
    fn publish_inherits_bounded_word_snapshots() {
        let store = store(EvalMode::Frontier);
        let old = store.latest();
        old.eval_cache().bounded_words(3);
        store
            .update(GraphUpdate::new().add_edge("N1", "bus", "N2"))
            .unwrap();
        let new = store.latest();
        assert_eq!(
            new.eval_cache().words_len(),
            1,
            "the new epoch's word snapshot was seeded by the publish"
        );
        // And it matches a cold enumeration.
        let cold = gps_rpq::EvalCache::from_csr(new.snapshot().clone());
        assert_eq!(*new.eval_cache().bounded_words(3), *cold.bounded_words(3));
    }
}
