//! Pre-bound telemetry handles for the MVCC write path and the service
//! layer.
//!
//! Both structs resolve their metric families once against the registry the
//! builder was configured with ([`crate::GpsBuilder::metrics`]) and are then
//! carried by [`crate::VersionedStore`] / [`crate::SessionManager`], so the
//! hot paths never take the registry's name-map lock.  With a disabled
//! registry every handle is a no-op costing one branch.

use gps_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// The MVCC/durability metric family (`gps_core_*`), recorded by
/// [`crate::VersionedStore`].
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreMetrics {
    /// `gps_core_publishes_total` — successful non-empty publishes.
    pub publishes: Counter,
    /// `gps_core_publish_latency_ns` — wall time of one publish (delta apply
    /// + compact + index/cache patch + commit fsync + swap).
    pub publish_latency: Histogram,
    /// `gps_core_staged_ops_total` — update ops staged for publishing.
    pub staged_ops: Counter,
    /// `gps_core_retired_epochs_total` — superseded epochs retired (their
    /// cache entries dropped) by publishes and unpins.
    pub retired_epochs: Counter,
    /// `gps_core_live_epochs` — live epochs right now (latest + superseded
    /// ones with pinned sessions).
    pub live_epochs: Gauge,
    /// `gps_core_current_epoch` — the epoch newly opened sessions resolve.
    pub current_epoch: Gauge,
    /// `gps_core_checkpoint_errors_total` — checkpoints that were due but
    /// failed (the publish itself succeeded; see
    /// [`crate::DurabilityReport::checkpoint_error`]).
    pub checkpoint_errors: Counter,
    /// `gps_core_recovery_replay_ns` — wall time of one replay-on-startup
    /// recovery (checkpoint decode + committed WAL batch replay).
    pub recovery_replay: Histogram,
}

impl CoreMetrics {
    pub(crate) fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            publishes: registry.counter("gps_core_publishes_total"),
            publish_latency: registry.histogram("gps_core_publish_latency_ns"),
            staged_ops: registry.counter("gps_core_staged_ops_total"),
            retired_epochs: registry.counter("gps_core_retired_epochs_total"),
            live_epochs: registry.gauge("gps_core_live_epochs"),
            current_epoch: registry.gauge("gps_core_current_epoch"),
            checkpoint_errors: registry.counter("gps_core_checkpoint_errors_total"),
            recovery_replay: registry.histogram("gps_core_recovery_replay_ns"),
        }
    }
}

/// The session-serving metric family (`gps_service_*`), recorded by
/// [`crate::SessionManager`].
#[derive(Debug, Clone, Default)]
pub(crate) struct ServiceMetrics {
    /// `gps_service_sessions_opened_total`.
    pub sessions_opened: Counter,
    /// `gps_service_sessions_closed_total`.
    pub sessions_closed: Counter,
    /// `gps_service_sessions_completed_total` — sessions whose halt condition
    /// fired (vs. closed early by the client).
    pub sessions_completed: Counter,
    /// `gps_service_active_sessions` — sessions open right now.
    pub active_sessions: Gauge,
    /// `gps_service_open_latency_ns` — wall time of one session open (pin +
    /// goal parse + session construction).
    pub open_latency: Histogram,
    /// `gps_service_step_latency_ns` — wall time of one managed step (one
    /// interaction, or the no-op on a halted session).
    pub step_latency: Histogram,
    /// `gps_service_close_latency_ns` — wall time of one close (outcome
    /// snapshot + unpin/retire).
    pub close_latency: Histogram,
}

impl ServiceMetrics {
    pub(crate) fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            sessions_opened: registry.counter("gps_service_sessions_opened_total"),
            sessions_closed: registry.counter("gps_service_sessions_closed_total"),
            sessions_completed: registry.counter("gps_service_sessions_completed_total"),
            active_sessions: registry.gauge("gps_service_active_sessions"),
            open_latency: registry.histogram("gps_service_open_latency_ns"),
            step_latency: registry.histogram("gps_service_step_latency_ns"),
            close_latency: registry.histogram("gps_service_close_latency_ns"),
        }
    }
}
