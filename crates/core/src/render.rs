//! Textual rendering of graph fragments and prefix trees.
//!
//! The demo shows the user small graph fragments and prefix trees in a GUI.
//! This reproduction renders the same information as text: every node of the
//! neighborhood with its distance ring, its outgoing edges inside the
//! fragment, a "…" marker when more of the graph is reachable but not shown
//! (Figure 3(a)), a `*new*` marker on nodes revealed by the last zoom
//! (Figure 3(b)), and an indented prefix tree with a `◀ candidate` marker on
//! the suggested path (Figure 3(c)).

use gps_graph::{GraphBackend, Neighborhood, NeighborhoodDelta, NodeId, PrefixTree, Word};

/// Renders a neighborhood as indented text.
///
/// `delta` — when rendering the result of a zoom-out, the nodes added by the
/// zoom are marked `*new*`, mirroring the blue highlighting of Figure 3(b).
pub fn render_neighborhood<B: GraphBackend>(
    graph: &B,
    neighborhood: &Neighborhood,
    delta: Option<&NeighborhoodDelta>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "neighborhood of {} (radius {})\n",
        graph.node_name(neighborhood.center()),
        neighborhood.radius()
    ));
    let is_new = |node: NodeId| {
        delta
            .map(|d| d.added_nodes.contains(&node))
            .unwrap_or(false)
    };
    for &(node, distance) in neighborhood.nodes() {
        let marker = if node == neighborhood.center() {
            " (proposed)"
        } else if is_new(node) {
            " *new*"
        } else {
            ""
        };
        out.push_str(&format!(
            "  [{distance}] {}{marker}\n",
            graph.node_name(node)
        ));
        for (_, edge) in neighborhood
            .edges()
            .iter()
            .filter(|(_, e)| e.source == node)
        {
            out.push_str(&format!(
                "      --{}--> {}\n",
                graph.label_name(edge.label).unwrap_or("?"),
                graph.node_name(edge.target)
            ));
        }
        if neighborhood.continuations().contains(&node) {
            out.push_str("      --…\n");
        }
    }
    out
}

/// Renders a prefix tree of candidate words, marking the suggested path.
pub fn render_prefix_tree<B: GraphBackend>(
    graph: &B,
    tree: &PrefixTree,
    suggested: &Word,
) -> String {
    let mut out = String::new();
    out.push_str("candidate paths\n");
    // Track, for each depth, the word spelled so far so we can compare the
    // full word at terminal nodes with the suggestion.
    let mut current: Word = Vec::new();
    tree.walk(|depth, label, _node, terminal| {
        current.truncate(depth);
        current.push(label);
        let name = graph.label_name(label).unwrap_or("?");
        let indent = "  ".repeat(depth + 1);
        let mut line = format!("{indent}{name}");
        if terminal {
            line.push_str(" ●");
            if &current == suggested {
                line.push_str("  ◀ candidate");
            }
        }
        line.push('\n');
        out.push_str(&line);
    });
    out
}

/// Renders a one-line description of a labeled answer set, e.g.
/// `{N1, N2, N4, N6}`.
pub fn render_node_set<B: GraphBackend>(graph: &B, nodes: &[NodeId]) -> String {
    let names: Vec<&str> = nodes.iter().map(|&n| graph.node_name(n)).collect();
    format!("{{{}}}", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::figure1_graph;
    use gps_graph::PathEnumerator;

    #[test]
    fn neighborhood_rendering_mentions_nodes_and_continuations() {
        let (g, ids) = figure1_graph();
        let hood = Neighborhood::extract(&g, ids.n2, 2);
        let text = render_neighborhood(&g, &hood, None);
        assert!(text.contains("neighborhood of N2 (radius 2)"));
        assert!(text.contains("(proposed)"));
        assert!(text.contains("--bus--> N1"));
        assert!(text.contains("--…"), "continuation marker present");
        assert!(!text.contains("C1"), "the cinema is outside radius 2");
    }

    #[test]
    fn zoom_rendering_marks_new_nodes() {
        let (g, ids) = figure1_graph();
        let hood2 = Neighborhood::extract(&g, ids.n2, 2);
        let (hood3, delta) = hood2.zoom_out(&g);
        let text = render_neighborhood(&g, &hood3, Some(&delta));
        assert!(text.contains("C1 *new*"));
        assert!(!text.contains("N1 *new*"), "old nodes are not marked");
    }

    #[test]
    fn prefix_tree_rendering_marks_the_candidate() {
        let (g, ids) = figure1_graph();
        let words: Vec<_> = PathEnumerator::new(3)
            .words_from(&g, ids.n2)
            .into_iter()
            .collect();
        let tree = PrefixTree::from_words(&words);
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let suggested = vec![bus, bus, cinema];
        let text = render_prefix_tree(&g, &tree, &suggested);
        assert!(text.contains("candidate paths"));
        assert!(text.contains("◀ candidate"));
        assert!(text.contains("cinema ●"));
        // Terminal marker appears for every complete word.
        assert!(text.matches('●').count() >= words.len());
    }

    #[test]
    fn node_set_rendering() {
        let (g, ids) = figure1_graph();
        let text = render_node_set(&g, &[ids.n1, ids.n2, ids.n4, ids.n6]);
        assert_eq!(text, "{N1, N2, N4, N6}");
        assert_eq!(render_node_set(&g, &[]), "{}");
    }
}
