//! Serializable session transcripts.
//!
//! A transcript records what happened during a specification session in a
//! form that can be saved, replayed in reports, or compared across runs: the
//! sequence of proposed nodes with their labels and validated paths, the
//! final learned query, and the session statistics.

use gps_graph::GraphBackend;
use gps_interactive::session::SessionOutcome;
use gps_interactive::SessionStats;
use gps_learner::Label;
use serde::{Deserialize, Serialize};

/// One recorded interaction, with names resolved for readability.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscriptEntry {
    /// Display name of the proposed node.
    pub node: String,
    /// Number of zoom-outs before answering.
    pub zooms: usize,
    /// `"+"` or `"-"`.
    pub label: String,
    /// The validated path, rendered as `bus·tram·cinema`, if any.
    pub validated_path: Option<String>,
}

/// A complete session transcript.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transcript {
    /// The interactions in order.
    pub entries: Vec<TranscriptEntry>,
    /// The learned query in the paper's concrete syntax, if one was learned.
    pub learned_query: Option<String>,
    /// Display names of the nodes selected by the learned query.
    pub answer: Vec<String>,
    /// Why the session stopped (display form of [`gps_interactive::HaltReason`]).
    pub halt_reason: String,
    /// The session statistics.
    pub stats: SessionStats,
}

impl Transcript {
    /// Builds a transcript from a session outcome, resolving names against
    /// the graph the session ran on.
    pub fn from_outcome<B: GraphBackend>(graph: &B, outcome: &SessionOutcome) -> Self {
        let entries = outcome
            .transcript
            .iter()
            .map(|record| TranscriptEntry {
                node: graph.node_name(record.node).to_string(),
                zooms: record.zooms,
                label: match record.label {
                    Label::Positive => "+".to_string(),
                    Label::Negative => "-".to_string(),
                },
                validated_path: record
                    .validated_word
                    .as_ref()
                    .map(|w| gps_graph::paths::render_word(graph, w)),
            })
            .collect();
        let learned_query = outcome
            .learned
            .as_ref()
            .map(|l| gps_automata::printer::print(&l.regex, graph.labels()));
        let answer = outcome
            .learned
            .as_ref()
            .map(|l| {
                l.answer
                    .nodes()
                    .into_iter()
                    .map(|n| graph.node_name(n).to_string())
                    .collect()
            })
            .unwrap_or_default();
        Self {
            entries,
            learned_query,
            answer,
            halt_reason: format!("{:?}", outcome.halt_reason),
            stats: outcome.stats.clone(),
        }
    }

    /// Renders the transcript as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, entry) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {} {} (zooms: {})",
                i + 1,
                entry.label,
                entry.node,
                entry.zooms
            ));
            if let Some(path) = &entry.validated_path {
                out.push_str(&format!("  validated: {path}"));
            }
            out.push('\n');
        }
        match &self.learned_query {
            Some(q) => out.push_str(&format!("learned query: {q}\n")),
            None => out.push_str("no query learned\n"),
        }
        out.push_str(&format!("answer: {{{}}}\n", self.answer.join(", ")));
        out.push_str(&format!("halted: {}\n", self.halt_reason));
        out.push_str(&format!("stats: {}\n", self.stats.summary()));
        out
    }

    /// Serializes the transcript to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
    use gps_interactive::session::{Session, SessionConfig};
    use gps_interactive::strategy::InformativePathsStrategy;
    use gps_interactive::user::SimulatedUser;
    use gps_rpq::PathQuery;

    fn run_session() -> (gps_graph::Graph, SessionOutcome) {
        let (g, _) = figure1_graph();
        let goal = PathQuery::parse(MOTIVATING_QUERY, g.labels()).unwrap();
        let mut user = SimulatedUser::new(goal, &g);
        let mut session = Session::new(&g, SessionConfig::default());
        let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
        (g, outcome)
    }

    #[test]
    fn transcript_resolves_names_and_paths() {
        let (g, outcome) = run_session();
        let transcript = Transcript::from_outcome(&g, &outcome);
        assert_eq!(transcript.entries.len(), outcome.stats.interactions);
        for entry in &transcript.entries {
            assert!(
                entry.node.starts_with('N')
                    || entry.node.starts_with('C')
                    || entry.node.starts_with('R')
            );
            assert!(entry.label == "+" || entry.label == "-");
        }
        assert!(transcript.learned_query.is_some());
        assert!(!transcript.answer.is_empty());
    }

    #[test]
    fn rendering_is_readable() {
        let (g, outcome) = run_session();
        let transcript = Transcript::from_outcome(&g, &outcome);
        let text = transcript.render();
        assert!(text.contains("learned query:"));
        assert!(text.contains("halted:"));
        assert!(text.contains("stats:"));
        assert!(text.lines().count() >= transcript.entries.len() + 3);
    }

    #[test]
    fn json_round_trip() {
        let (g, outcome) = run_session();
        let transcript = Transcript::from_outcome(&g, &outcome);
        let json = transcript.to_json().unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries, transcript.entries);
        assert_eq!(back.learned_query, transcript.learned_query);
    }
}
