//! The GPS facade.
//!
//! [`Gps`] bundles a graph database with the query engine, the learner and
//! the interactive machinery, and exposes the operations the demo offers:
//! evaluating queries, extracting and rendering neighborhoods and prefix
//! trees, and running the three demonstration scenarios.

use crate::render;
use crate::scenario::{self, ScenarioReport, StaticLabelingOutcome};
use gps_automata::parser::ParseError;
use gps_graph::{Graph, Neighborhood, NodeId, PathEnumerator, PrefixTree};
use gps_learner::{Label, Learner};
use gps_rpq::{EvalCache, PathQuery, QueryAnswer};

/// The GPS system bound to one graph database.
#[derive(Debug)]
pub struct Gps {
    graph: Graph,
    learner: Learner,
    cache: EvalCache,
}

impl Gps {
    /// Creates a GPS instance over `graph` with the default learner.
    pub fn new(graph: Graph) -> Self {
        let cache = EvalCache::new(&graph);
        Self {
            graph,
            learner: Learner::default(),
            cache,
        }
    }

    /// Creates a GPS instance with a custom learner configuration.
    pub fn with_learner(graph: Graph, learner: Learner) -> Self {
        let cache = EvalCache::new(&graph);
        Self {
            graph,
            learner,
            cache,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The learner configuration.
    pub fn learner(&self) -> &Learner {
        &self.learner
    }

    // ------------------------------------------------------------- queries

    /// Parses a query in the paper's syntax against this graph's alphabet.
    pub fn parse_query(&self, syntax: &str) -> Result<PathQuery, ParseError> {
        PathQuery::parse(syntax, self.graph.labels())
    }

    /// Parses and evaluates a query, returning the selected nodes.  Repeated
    /// evaluations of the same expression are served from a cache.
    pub fn evaluate(&self, syntax: &str) -> Result<QueryAnswer, ParseError> {
        let query = self.parse_query(syntax)?;
        Ok((*self.cache.evaluate(query.regex())).clone())
    }

    /// Renders the answer of a query as `{N1, N2, …}`.
    pub fn evaluate_rendered(&self, syntax: &str) -> Result<String, ParseError> {
        let answer = self.evaluate(syntax)?;
        Ok(render::render_node_set(&self.graph, &answer.nodes()))
    }

    // -------------------------------------------------------- visualization

    /// Extracts the neighborhood of a node at the given radius (Figure 3(a)).
    pub fn neighborhood(&self, node: NodeId, radius: u32) -> Neighborhood {
        Neighborhood::extract(&self.graph, node, radius)
    }

    /// Renders the neighborhood of a node at the given radius.
    pub fn render_neighborhood(&self, node: NodeId, radius: u32) -> String {
        render::render_neighborhood(&self.graph, &self.neighborhood(node, radius), None)
    }

    /// Renders the zoom-out from radius `radius` to `radius + 1`, marking the
    /// newly revealed nodes (Figure 3(b)).
    pub fn render_zoom(&self, node: NodeId, radius: u32) -> String {
        let hood = self.neighborhood(node, radius);
        let (larger, delta) = hood.zoom_out(&self.graph);
        render::render_neighborhood(&self.graph, &larger, Some(&delta))
    }

    /// Renders the prefix tree of a node's paths up to `bound`, highlighting
    /// `suggested` (Figure 3(c)).
    pub fn render_prefix_tree(&self, node: NodeId, bound: usize, suggested: &[gps_graph::LabelId]) -> String {
        let words = PathEnumerator::new(bound).words_from(&self.graph, node);
        let tree = PrefixTree::from_words(&words);
        render::render_prefix_tree(&self.graph, &tree, &suggested.to_vec())
    }

    // ------------------------------------------------------------ scenarios

    /// Scenario 1 — static labeling: the user labels arbitrary nodes and the
    /// system proposes a consistent query or reports the inconsistency.
    pub fn static_labeling(&self, labels: &[(NodeId, Label)]) -> StaticLabelingOutcome {
        scenario::static_labeling(&self.graph, labels, &self.learner)
    }

    /// Scenario 2 — interactive labeling without path validation, against a
    /// simulated user whose hidden goal query is `goal_syntax`.
    pub fn interactive_without_validation(
        &self,
        goal_syntax: &str,
        seed: u64,
    ) -> Result<ScenarioReport, ParseError> {
        let goal = self.parse_query(goal_syntax)?;
        Ok(scenario::interactive_without_validation(
            &self.graph,
            &goal,
            seed,
        ))
    }

    /// Scenario 3 — interactive labeling with path validation (the core of
    /// GPS), against a simulated user whose hidden goal query is
    /// `goal_syntax`.
    pub fn interactive_with_validation(
        &self,
        goal_syntax: &str,
        seed: u64,
    ) -> Result<ScenarioReport, ParseError> {
        let goal = self.parse_query(goal_syntax)?;
        Ok(scenario::interactive_with_validation(
            &self.graph,
            &goal,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

    fn gps() -> (Gps, gps_datasets::figure1::Figure1) {
        let (graph, ids) = figure1_graph();
        (Gps::new(graph), ids)
    }

    #[test]
    fn evaluation_matches_the_paper() {
        let (gps, ids) = gps();
        let answer = gps.evaluate(MOTIVATING_QUERY).unwrap();
        assert_eq!(
            answer.nodes(),
            vec![ids.n1, ids.n2, ids.n4, ids.n6]
        );
        assert_eq!(
            gps.evaluate_rendered(MOTIVATING_QUERY).unwrap(),
            "{N1, N2, N4, N6}"
        );
    }

    #[test]
    fn evaluation_is_cached() {
        let (gps, _) = gps();
        gps.evaluate(MOTIVATING_QUERY).unwrap();
        gps.evaluate(MOTIVATING_QUERY).unwrap();
        // No way to observe the cache through the public API other than it
        // not changing the answer; check both calls agree and a different
        // query still evaluates correctly.
        let bus = gps.evaluate("bus").unwrap();
        assert!(!bus.is_empty());
    }

    #[test]
    fn parse_errors_are_propagated() {
        let (gps, _) = gps();
        assert!(gps.evaluate("spaceship").is_err());
        assert!(gps.parse_query("(bus").is_err());
    }

    #[test]
    fn rendering_helpers_produce_figures() {
        let (gps, ids) = gps();
        let fig3a = gps.render_neighborhood(ids.n2, 2);
        assert!(fig3a.contains("radius 2"));
        let fig3b = gps.render_zoom(ids.n2, 2);
        assert!(fig3b.contains("*new*"));
        let graph = gps.graph();
        let bus = graph.label_id("bus").unwrap();
        let cinema = graph.label_id("cinema").unwrap();
        let fig3c = gps.render_prefix_tree(ids.n2, 3, &[bus, bus, cinema]);
        assert!(fig3c.contains("◀ candidate"));
    }

    #[test]
    fn scenarios_run_through_the_facade() {
        let (gps, ids) = gps();
        let static_outcome = gps.static_labeling(&[
            (ids.n2, Label::Positive),
            (ids.n5, Label::Negative),
        ]);
        assert!(matches!(static_outcome, StaticLabelingOutcome::Learned(_)));

        let report = gps.interactive_with_validation(MOTIVATING_QUERY, 0).unwrap();
        assert!(report.goal_reached);
        let report2 = gps
            .interactive_without_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert!(report2.consistent_with_labels);
    }

    #[test]
    fn custom_learner_configuration() {
        let (graph, _) = figure1_graph();
        let gps = Gps::with_learner(graph, Learner::with_bound(3));
        assert_eq!(gps.learner().path_bound, 3);
        assert!(gps.graph().node_count() == 10);
    }
}
