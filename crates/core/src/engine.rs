//! The GPS engine — a builder-style facade over every query layer.
//!
//! [`Engine`] bundles a graph backend with the query evaluator, the learner
//! and the interactive machinery.  It is generic over [`GraphBackend`], so
//! the same facade serves both first-class stores:
//!
//! * `Engine<Graph>` (alias [`Gps`]) — the mutable adjacency-list backend;
//! * `Engine<CsrGraph>` — the immutable cache-friendly snapshot, built with
//!   [`GpsBuilder::build_csr`].
//!
//! Construction goes through [`GpsBuilder`], which exposes every knob of the
//! system in one place — backend choice, node-proposal strategy, halt
//! conditions, zoom radii, path-validation toggle and learner bounds:
//!
//! ```
//! use gps_core::{Engine, StrategyChoice};
//! use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
//!
//! let (graph, ids) = figure1_graph();
//! let engine = Engine::builder(graph)
//!     .strategy(StrategyChoice::InformativePaths { bound: 3 })
//!     .initial_radius(2)
//!     .max_interactions(100)
//!     .build_csr(); // run everything on the CSR snapshot
//!
//! let answer = engine.evaluate(MOTIVATING_QUERY).unwrap();
//! assert!(answer.contains(ids.n2));
//! let report = engine.interactive_with_validation(MOTIVATING_QUERY, 0).unwrap();
//! assert!(report.goal_reached);
//! ```
//!
//! The pre-builder API remains available: [`Gps::new`] constructs an
//! adjacency-backed engine with default options.

use crate::error::GpsError;
use crate::render;
use crate::scenario::{self, ScenarioReport, StaticLabelingOutcome};
use gps_exec::{BatchEvaluator, ExecMetrics, LabelIndex, PlannerConfig, DEFAULT_OVERDELETE_LIMIT};
use gps_graph::{
    CsrGraph, Graph, GraphBackend, GraphDelta, LabelStats, Neighborhood, NodeId, PathEnumerator,
    PrefixTree,
};
use gps_interactive::halt::HaltConfig;
use gps_interactive::session::{Session, SessionConfig, SessionOutcome};
use gps_interactive::strategy::{
    DegreeStrategy, InformativePathsStrategy, RandomStrategy, Strategy,
};
use gps_interactive::user::{SimulatedUser, User};
use gps_learner::{Label, Learner};
use gps_rpq::{
    DfaEvaluator, EvalCache, EvalHandle, MigrationReport, NaiveEvaluator, PathQuery, QueryAnswer,
};
use gps_telemetry::MetricsRegistry;
use std::sync::Arc;

/// Which execution engine the facade evaluates queries with.
///
/// Every mode computes the *same* answers (the conformance suite asserts
/// byte-identical results); they differ only in how the product fixed point
/// is driven:
///
/// * [`Naive`](EvalMode::Naive) — the reference node-at-a-time evaluator;
/// * [`Frontier`](EvalMode::Frontier) — the `gps-exec` set-at-a-time bitset
///   engine with direction-aware planning (fastest single-query latency);
/// * [`Parallel`](EvalMode::Parallel) — the frontier engine plus the scoped
///   `std::thread` batch executor: multi-query calls such as
///   [`Engine::evaluate_many`] fan out across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Node-at-a-time reference evaluator.
    #[default]
    Naive,
    /// Frontier-based bitset engine (`gps-exec`).
    Frontier,
    /// Frontier engine with the parallel batch executor.
    Parallel,
}

impl EvalMode {
    /// Builds the mode's evaluator over a shared snapshot, returning the
    /// label index it indexes the graph with and the planner statistics it
    /// consults (frontier modes only) so the core can expose the one
    /// allocation every session shares — and patch both on a live update
    /// instead of rebuilding.
    fn evaluator_for(
        self,
        csr: &Arc<CsrGraph>,
        planner: PlannerConfig,
        metrics: ExecMetrics,
        index_shards: Option<usize>,
        delete_saturation: f64,
    ) -> (
        Box<dyn DfaEvaluator>,
        Option<Arc<LabelIndex>>,
        Option<LabelStats>,
    ) {
        match self {
            EvalMode::Naive => (
                Box::new(NaiveEvaluator::from_shared(Arc::clone(csr))),
                None,
                None,
            ),
            EvalMode::Frontier | EvalMode::Parallel => {
                let shards = index_shards.unwrap_or(match self {
                    EvalMode::Parallel => BatchEvaluator::default_threads(),
                    _ => 1,
                });
                let started = std::time::Instant::now();
                let evaluator = BatchEvaluator::from_csr_sharded(csr, shards);
                metrics.record_index_build(started.elapsed(), shards);
                let mut evaluator = evaluator
                    .with_planner_config(planner)
                    .with_metrics(metrics)
                    .with_overdelete_limit(delete_saturation);
                if self == EvalMode::Parallel {
                    evaluator = evaluator.with_parallelism(BatchEvaluator::default_threads());
                }
                let index = evaluator.shared_index();
                let stats = evaluator.stats().clone();
                (Box::new(evaluator), Some(index), Some(stats))
            }
        }
    }
}

/// Which node-proposal strategy the engine runs interactive sessions with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyChoice {
    /// The paper's practical strategy: most short uncovered paths first.
    InformativePaths {
        /// Path-length bound used when counting uncovered paths.
        bound: usize,
    },
    /// Highest out-degree first.
    Degree,
    /// Uniformly random unlabeled node (reproducible per seed).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl Default for StrategyChoice {
    fn default() -> Self {
        StrategyChoice::InformativePaths { bound: 3 }
    }
}

impl StrategyChoice {
    /// Instantiates the chosen strategy for backend `B`.  The trait object is
    /// `Send` so service deployments can drive sessions from worker threads.
    pub fn instantiate<B: GraphBackend>(&self) -> Box<dyn Strategy<B> + Send> {
        match *self {
            StrategyChoice::InformativePaths { bound } => {
                Box::new(InformativePathsStrategy::with_bound(bound))
            }
            StrategyChoice::Degree => Box::new(DegreeStrategy),
            StrategyChoice::Random { seed } => Box::new(RandomStrategy::seeded(seed)),
        }
    }
}

/// Builder for [`Engine`]: pick the backend, the strategy and every session
/// option, then [`build`](GpsBuilder::build) (adjacency backend) or
/// [`build_csr`](GpsBuilder::build_csr) (CSR snapshot backend).
#[derive(Debug, Clone)]
pub struct GpsBuilder {
    graph: Graph,
    learner: Learner,
    session: SessionConfig,
    strategy: StrategyChoice,
    eval_mode: EvalMode,
    planner: PlannerConfig,
    index_shards: Option<usize>,
    cache_capacity: Option<usize>,
    words_capacity: Option<usize>,
    delete_saturation: f64,
    checkpoint_every: u64,
    metrics: Arc<MetricsRegistry>,
}

impl GpsBuilder {
    /// Starts a builder over `graph` with the system defaults.
    pub fn new(graph: Graph) -> Self {
        Self {
            graph,
            learner: Learner::default(),
            session: SessionConfig::default(),
            strategy: StrategyChoice::default(),
            eval_mode: EvalMode::default(),
            planner: PlannerConfig::default(),
            index_shards: None,
            cache_capacity: None,
            words_capacity: None,
            delete_saturation: DEFAULT_OVERDELETE_LIMIT,
            checkpoint_every: crate::versioned::CheckpointPolicy::default().every_n_publishes,
            metrics: Arc::new(MetricsRegistry::disabled()),
        }
    }

    /// Starts a builder from a textual edge list (see [`gps_graph::io`]).
    pub fn from_edge_list(text: &str) -> Result<Self, GpsError> {
        Ok(Self::new(gps_graph::io::parse_edge_list(text)?))
    }

    /// Replaces the learner configuration.
    pub fn learner(mut self, learner: Learner) -> Self {
        self.learner = learner;
        self
    }

    /// Sets the path-length bound shared by the learner, the coverage and
    /// the pruning.
    pub fn path_bound(mut self, bound: usize) -> Self {
        self.learner.path_bound = bound;
        self.session.path_bound = bound;
        self
    }

    /// Sets the radius of the first neighborhood shown for a proposed node.
    pub fn initial_radius(mut self, radius: u32) -> Self {
        self.session.initial_radius = radius;
        self
    }

    /// Sets the maximum radius the user can zoom out to.
    pub fn max_radius(mut self, radius: u32) -> Self {
        self.session.max_radius = radius;
        self
    }

    /// Enables or disables the path-validation step (Figure 3(c)).
    pub fn with_path_validation(mut self, enabled: bool) -> Self {
        self.session.with_path_validation = enabled;
        self
    }

    /// Replaces the halt conditions.
    pub fn halt(mut self, halt: HaltConfig) -> Self {
        self.session.halt = halt;
        self
    }

    /// Bounds the number of label interactions.
    pub fn max_interactions(mut self, max_interactions: usize) -> Self {
        self.session.halt.max_interactions = max_interactions;
        self
    }

    /// Chooses the node-proposal strategy for interactive sessions.
    pub fn strategy(mut self, strategy: StrategyChoice) -> Self {
        self.strategy = strategy;
        self
    }

    /// Chooses the query execution engine (see [`EvalMode`]).
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Replaces the direction-aware planner's decision thresholds (frontier
    /// modes; defaults to [`PlannerConfig::default`], the values hand-tuned
    /// on the checked-in corpora).  Calibrate per corpus when the label
    /// distribution differs sharply from the defaults' assumptions.
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }

    /// Sets how many shards (worker threads) the frontier modes' label index
    /// builds and patches fan out over.  Defaults to the mode's natural
    /// width: [`EvalMode::Parallel`] uses the machine's available
    /// parallelism, [`EvalMode::Frontier`] builds sequentially.  The index
    /// is byte-identical at every shard count — this knob trades build/patch
    /// latency against thread usage, never answers.  Ignored under
    /// [`EvalMode::Naive`].
    pub fn index_shards(mut self, shards: usize) -> Self {
        self.index_shards = Some(shards.max(1));
        self
    }

    /// Caps the number of cached query answers in the shared evaluation
    /// cache (defaults to [`gps_rpq::cache::DEFAULT_CAPACITY`]).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Caps the number of per-bound bounded-word snapshots the shared cache
    /// keeps (defaults to [`gps_rpq::cache::DEFAULT_WORDS_CAPACITY`]) — the
    /// memory knob for multi-session deployments, since the word snapshots
    /// dominate the cache's footprint.
    pub fn words_capacity(mut self, capacity: usize) -> Self {
        self.words_capacity = Some(capacity);
        self
    }

    /// Caps how much of the alive configuration population a removal-bearing
    /// publish may transitively over-delete before the Tier-3 delete-reseed
    /// gives up and the touched answer falls back to a cold recompute
    /// (frontier modes; clamped to `0.0..=1.0`, default
    /// [`gps_exec::DEFAULT_OVERDELETE_LIMIT`]).  `0.0` disables the delete
    /// path entirely — every removal recomputes cold, the pre-Tier-3
    /// behavior — and `1.0` never gives up.
    pub fn delete_reseed_saturation(mut self, fraction: f64) -> Self {
        self.delete_saturation = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets how often a *durable* store writes a snapshot checkpoint and
    /// truncates its write-ahead log: after every `n` publishes (default
    /// [`crate::versioned::CheckpointPolicy::default`]; `0` disables
    /// checkpointing entirely, leaving the log to grow).  Ignored by
    /// in-memory stores.
    pub fn checkpoint_every_n_publishes(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Wires a telemetry registry through the whole stack: the evaluation
    /// cache's hit/miss/eviction counters, the frontier engine's per-eval
    /// latency and plan counters, the sessions' interaction and pruning
    /// counters, the MVCC store's publish/epoch series, the durable store's
    /// WAL/fsync/checkpoint series and the service's session lifecycle
    /// series all register under this registry, and every epoch advanced
    /// from this core keeps extending the same series.
    ///
    /// Defaults to [`MetricsRegistry::disabled`], under which every
    /// recording site costs one branch and nothing is allocated.  Metrics
    /// are purely observational: transcripts and query answers are
    /// byte-identical with and without them (`tests/telemetry_conformance.rs`).
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = registry;
        self
    }

    /// Replaces the whole session configuration at once, including its
    /// embedded learner (which becomes the engine's learner).
    pub fn session_config(mut self, config: SessionConfig) -> Self {
        self.learner = config.learner.clone();
        self.session = config;
        self
    }

    /// Builds an engine over the mutable adjacency-list backend.
    pub fn build(self) -> Engine<Graph> {
        let snapshot = Arc::new(CsrGraph::from_graph(&self.graph));
        let (graph, core) = self.into_core(Arc::clone(&snapshot));
        Engine {
            backend: graph,
            core,
        }
    }

    /// Builds an engine over an immutable CSR snapshot of the graph — the
    /// cache-friendly backend for read-heavy interactive and bulk-evaluation
    /// workloads.
    pub fn build_csr(self) -> Engine<CsrGraph> {
        let snapshot = Arc::new(CsrGraph::from_graph(&self.graph));
        let (_, core) = self.into_core(Arc::clone(&snapshot));
        Engine {
            backend: (*snapshot).clone(),
            core,
        }
    }

    /// Builds just the shared, cheaply-cloneable [`EngineCore`] — the value a
    /// multi-session service owns (see [`crate::service::GpsService`]).
    pub fn build_core(self) -> EngineCore {
        let snapshot = Arc::new(CsrGraph::from_graph(&self.graph));
        self.into_core(snapshot).1
    }

    /// The telemetry registry this builder wires through (disabled unless
    /// [`metrics`](Self::metrics) was called).
    pub(crate) fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The checkpoint policy this builder configures durable stores with.
    pub(crate) fn checkpoint_policy(&self) -> crate::versioned::CheckpointPolicy {
        crate::versioned::CheckpointPolicy {
            every_n_publishes: self.checkpoint_every,
        }
    }

    /// Builds a core over a *recovered* snapshot instead of the builder's
    /// graph (the replay-on-startup path: the snapshot comes from a
    /// checkpoint, the builder only contributes the configuration knobs).
    pub(crate) fn core_over(self, snapshot: Arc<CsrGraph>) -> EngineCore {
        self.into_core(snapshot).1
    }

    /// Builds a core directly over an existing CSR `snapshot`, ignoring the
    /// builder's own graph — the million-node path: pair it with a streamed
    /// corpus builder (e.g. `gps_datasets::streamed::generate_csr`) to stand
    /// up an engine without ever materializing a mutable
    /// [`Graph`](gps_graph::Graph).
    pub fn build_core_over(self, snapshot: Arc<CsrGraph>) -> EngineCore {
        self.into_core(snapshot).1
    }

    /// Consumes the builder into the adjacency graph plus the shared core
    /// over `snapshot`.
    fn into_core(self, snapshot: Arc<CsrGraph>) -> (Graph, EngineCore) {
        let mut session = self.session;
        session.learner = self.learner.clone();
        let (evaluator, index, stats) = self.eval_mode.evaluator_for(
            &snapshot,
            self.planner,
            ExecMetrics::from_registry(&self.metrics),
            self.index_shards,
            self.delete_saturation,
        );
        let mut cache = EvalCache::with_shared_evaluator(Arc::clone(&snapshot), evaluator)
            .with_metrics(&self.metrics);
        if let Some(capacity) = self.cache_capacity {
            cache = cache.with_capacity(capacity);
        }
        if let Some(capacity) = self.words_capacity {
            cache = cache.with_words_capacity(capacity);
        }
        let core = EngineCore {
            snapshot,
            cache: Arc::new(cache),
            index,
            stats,
            options: Arc::new(EngineOptions {
                learner: self.learner,
                session,
                strategy: self.strategy,
                eval_mode: self.eval_mode,
                planner: self.planner,
                index_shards: self.index_shards,
                cache_capacity: self.cache_capacity,
                words_capacity: self.words_capacity,
                delete_saturation: self.delete_saturation,
                metrics: self.metrics,
            }),
        };
        (self.graph, core)
    }
}

/// The configuration shared by every handle and session of one core — and by
/// every *epoch* of a live store, which is why the evaluation-stack knobs
/// (planner thresholds, cache capacities) live here: a publish rebuilds the
/// cache and evaluator with the same knobs the builder chose.
#[derive(Debug)]
pub(crate) struct EngineOptions {
    learner: Learner,
    session: SessionConfig,
    strategy: StrategyChoice,
    eval_mode: EvalMode,
    planner: PlannerConfig,
    index_shards: Option<usize>,
    cache_capacity: Option<usize>,
    words_capacity: Option<usize>,
    delete_saturation: f64,
    metrics: Arc<MetricsRegistry>,
}

/// The immutable, cheaply-cloneable heart of an engine: one graph snapshot,
/// one bounded evaluation cache (with the mode's evaluator and, for the
/// frontier modes, one shared [`LabelIndex`]), and the configuration every
/// session runs with.
///
/// Cloning an `EngineCore` copies four `Arc`s — nothing graph-sized — so a
/// service can hand a core to every worker thread and every session while
/// all of them share a single snapshot, index and cache.  All mutability
/// lives in per-session state ([`Session`] owns its examples, coverage,
/// pruning and statistics) and inside the concurrency-safe cache.
#[derive(Debug, Clone)]
pub struct EngineCore {
    pub(crate) snapshot: Arc<CsrGraph>,
    pub(crate) cache: Arc<EvalCache>,
    pub(crate) index: Option<Arc<LabelIndex>>,
    /// Planner statistics of the frontier evaluator (patched, not
    /// recomputed, on a live update).
    pub(crate) stats: Option<LabelStats>,
    pub(crate) options: Arc<EngineOptions>,
}

impl EngineCore {
    /// The shared CSR snapshot sessions run on.
    pub fn snapshot(&self) -> &CsrGraph {
        &self.snapshot
    }

    /// The epoch of the snapshot this core serves (see
    /// [`CsrGraph::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Builds the next epoch's core over `snapshot` (the compacted result of
    /// `delta`): the frontier modes patch their label index and planner
    /// statistics through the delta instead of re-indexing, the new bounded
    /// evaluation cache migrates the old epoch's answers across the delta
    /// ([`EvalCache::migrate_answers`]) and inherits its word snapshots
    /// ([`EvalCache::inherit_words`]), and every configuration knob carries
    /// over unchanged.  Returns the new core together with the migration
    /// split (how many cached answers were carried verbatim, re-derived from
    /// their seed, or dropped to a cold recompute).
    pub(crate) fn advance(
        &self,
        snapshot: Arc<CsrGraph>,
        delta: &GraphDelta,
    ) -> (EngineCore, MigrationReport) {
        let (evaluator, index, stats): (
            Box<dyn DfaEvaluator>,
            Option<Arc<LabelIndex>>,
            Option<LabelStats>,
        ) = match (self.options.eval_mode, &self.index, &self.stats) {
            (EvalMode::Naive, _, _) => (
                Box::new(NaiveEvaluator::from_shared(Arc::clone(&snapshot))),
                None,
                None,
            ),
            (mode, Some(index), Some(stats)) => {
                let previous = BatchEvaluator::from_shared_index(Arc::clone(index), stats.clone())
                    .with_planner_config(self.options.planner)
                    .with_metrics(ExecMetrics::from_registry(&self.options.metrics))
                    .with_overdelete_limit(self.options.delete_saturation);
                let previous = if mode == EvalMode::Parallel {
                    previous.with_parallelism(BatchEvaluator::default_threads())
                } else {
                    previous
                };
                let patched = previous.apply_delta(&snapshot, delta);
                let index = patched.shared_index();
                let stats = patched.stats().clone();
                (Box::new(patched), Some(index), Some(stats))
            }
            // A frontier core without index/stats cannot exist through the
            // builder; rebuild defensively if it ever does.
            (mode, _, _) => mode.evaluator_for(
                &snapshot,
                self.options.planner,
                ExecMetrics::from_registry(&self.options.metrics),
                self.options.index_shards,
                self.options.delete_saturation,
            ),
        };
        let mut cache = EvalCache::with_shared_evaluator(Arc::clone(&snapshot), evaluator)
            .with_metrics(&self.options.metrics);
        if let Some(capacity) = self.options.cache_capacity {
            cache = cache.with_capacity(capacity);
        }
        if let Some(capacity) = self.options.words_capacity {
            cache = cache.with_words_capacity(capacity);
        }
        let migration = cache.migrate_answers(&self.cache, delta);
        cache.inherit_words(&self.cache, delta);
        let core = EngineCore {
            snapshot,
            cache: Arc::new(cache),
            index,
            stats,
            options: Arc::clone(&self.options),
        };
        (core, migration)
    }

    /// A new reference to the shared snapshot.
    pub fn shared_snapshot(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.snapshot)
    }

    /// The shared evaluation cache.
    pub fn eval_cache(&self) -> &EvalCache {
        &self.cache
    }

    /// A cheaply cloneable handle to the shared evaluation stack.
    pub fn eval_handle(&self) -> EvalHandle {
        EvalHandle::from_cache(Arc::clone(&self.cache))
    }

    /// The label index the frontier evaluator indexes the snapshot with
    /// (`None` under [`EvalMode::Naive`]).  Every session of this core —
    /// and every clone of this core — shares this one allocation.
    pub fn shared_index(&self) -> Option<Arc<LabelIndex>> {
        self.index.clone()
    }

    /// Approximate heap footprint of the shared label index in bytes (0
    /// under [`EvalMode::Naive`]).
    pub fn index_memory_bytes(&self) -> usize {
        self.index
            .as_ref()
            .map(|index| index.memory_bytes())
            .unwrap_or(0)
    }

    /// The query execution mode sessions of this core evaluate with.
    pub fn eval_mode(&self) -> EvalMode {
        self.options.eval_mode
    }

    /// The planner thresholds the frontier evaluators of this core (and of
    /// every epoch advanced from it) run with.
    pub fn planner_config(&self) -> PlannerConfig {
        self.options.planner
    }

    /// The node-proposal strategy sessions of this core run with.
    pub fn strategy(&self) -> StrategyChoice {
        self.options.strategy
    }

    /// The session configuration sessions of this core start from.
    pub fn session_config(&self) -> &SessionConfig {
        &self.options.session
    }

    /// The learner configuration.
    pub fn learner(&self) -> &Learner {
        &self.options.learner
    }

    /// The telemetry registry this core (and every epoch advanced from it)
    /// records into — the disabled registry unless the builder wired one via
    /// [`GpsBuilder::metrics`].
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.options.metrics
    }

    /// Parses a query in the paper's syntax against the snapshot's alphabet.
    pub fn parse_query(&self, syntax: &str) -> Result<PathQuery, GpsError> {
        Ok(PathQuery::parse(syntax, self.snapshot.labels())?)
    }

    /// Parses and evaluates a query through the shared cache.
    pub fn evaluate(&self, syntax: &str) -> Result<QueryAnswer, GpsError> {
        let query = self.parse_query(syntax)?;
        Ok((*self.cache.evaluate(query.regex())).clone())
    }

    /// Opens a new interactive session on the shared snapshot and stack.
    ///
    /// The session co-owns the snapshot (no borrow of the core), so it can be
    /// stored in a session table and stepped from any worker thread; its
    /// learner/coverage/pruning state is private to the session, while every
    /// query it evaluates goes through the core's one bounded cache.
    pub fn open_session(&self) -> Session<'static, CsrGraph> {
        let mut session = Session::with_shared_exec(
            Arc::clone(&self.snapshot),
            self.options.session.clone(),
            self.eval_handle(),
        );
        if self.options.metrics.is_enabled() {
            session.set_metrics(gps_interactive::metrics::SessionMetrics::from_registry(
                &self.options.metrics,
            ));
        }
        session
    }

    /// Instantiates the configured node-proposal strategy for the snapshot
    /// backend.
    pub fn instantiate_strategy(&self) -> Box<dyn Strategy<CsrGraph> + Send> {
        self.options.strategy.instantiate::<CsrGraph>()
    }

    /// A simulated user whose hidden goal is `goal_syntax`, answering from
    /// the shared stack (the oracle driving scripted service sessions).
    pub fn simulated_user(&self, goal_syntax: &str) -> Result<SimulatedUser, GpsError> {
        let goal = self.parse_query(goal_syntax)?;
        Ok(SimulatedUser::with_exec(goal, self.eval_handle()))
    }
}

/// The GPS system bound to one graph backend: a thin per-user handle over a
/// shared [`EngineCore`].
///
/// See the [module docs](self) for the builder-based construction; the
/// methods mirror the operations the demo paper describes — query
/// evaluation, neighborhood rendering, and the three demonstration
/// scenarios.  The backend is what the handle's own traversal/rendering
/// methods walk; every query evaluation, session, learner and pruning call
/// goes through the core's shared snapshot, cache and (frontier modes)
/// label index.  [`Engine::core`] exposes the core for multi-session
/// serving — see [`crate::service`].
#[derive(Debug)]
pub struct Engine<B: GraphBackend = Graph> {
    backend: B,
    core: EngineCore,
}

/// The historical name of the adjacency-backed engine.
pub type Gps = Engine<Graph>;

impl Engine<Graph> {
    /// Creates an adjacency-backed engine with default options.
    pub fn new(graph: Graph) -> Self {
        GpsBuilder::new(graph).build()
    }

    /// Creates an engine with a custom learner configuration.
    pub fn with_learner(graph: Graph, learner: Learner) -> Self {
        GpsBuilder::new(graph).learner(learner).build()
    }

    /// Starts a builder over `graph`; finish with
    /// [`build`](GpsBuilder::build) or [`build_csr`](GpsBuilder::build_csr).
    pub fn builder(graph: Graph) -> GpsBuilder {
        GpsBuilder::new(graph)
    }
}

impl<B: GraphBackend> Engine<B> {
    /// Wraps an existing backend with default options (no builder knobs).
    pub fn from_backend(backend: B) -> Self {
        let eval_mode = EvalMode::default();
        let planner = PlannerConfig::default();
        let snapshot = Arc::new(CsrGraph::from_backend(&backend));
        let (evaluator, index, stats) = eval_mode.evaluator_for(
            &snapshot,
            planner,
            ExecMetrics::disabled(),
            None,
            DEFAULT_OVERDELETE_LIMIT,
        );
        let cache = Arc::new(EvalCache::with_shared_evaluator(
            Arc::clone(&snapshot),
            evaluator,
        ));
        let learner = Learner::default();
        let session = SessionConfig {
            learner: learner.clone(),
            ..SessionConfig::default()
        };
        Self {
            backend,
            core: EngineCore {
                snapshot,
                cache,
                index,
                stats,
                options: Arc::new(EngineOptions {
                    learner,
                    session,
                    strategy: StrategyChoice::default(),
                    eval_mode,
                    planner,
                    index_shards: None,
                    cache_capacity: None,
                    words_capacity: None,
                    delete_saturation: DEFAULT_OVERDELETE_LIMIT,
                    metrics: Arc::new(MetricsRegistry::disabled()),
                }),
            },
        }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The underlying backend (historical name).
    pub fn graph(&self) -> &B {
        &self.backend
    }

    /// The shared core this handle evaluates through.
    pub fn core(&self) -> &EngineCore {
        &self.core
    }

    /// A cheap clone of the shared core — hand it to
    /// [`crate::service::GpsService`] to serve many concurrent sessions over
    /// this engine's snapshot, cache and index.
    pub fn core_handle(&self) -> EngineCore {
        self.core.clone()
    }

    /// The learner configuration.
    pub fn learner(&self) -> &Learner {
        self.core.learner()
    }

    /// The session configuration interactive scenarios run with.
    pub fn session_config(&self) -> &SessionConfig {
        self.core.session_config()
    }

    /// The configured node-proposal strategy.
    pub fn strategy(&self) -> StrategyChoice {
        self.core.strategy()
    }

    /// The configured query execution mode.
    pub fn eval_mode(&self) -> EvalMode {
        self.core.eval_mode()
    }

    /// The engine's shared evaluation cache.
    pub fn eval_cache(&self) -> &EvalCache {
        self.core.eval_cache()
    }

    /// A cheaply cloneable handle to the engine's evaluation stack — hand it
    /// to [`Session::with_exec`] / [`gps_interactive::user::SimulatedUser::with_exec`]
    /// (the engine's own session entry points do so automatically).
    pub fn eval_handle(&self) -> EvalHandle {
        self.core.eval_handle()
    }

    /// Takes an immutable CSR snapshot of the current backend.
    pub fn snapshot(&self) -> CsrGraph {
        CsrGraph::from_backend(&self.backend)
    }

    // ------------------------------------------------------------- queries

    /// Parses a query in the paper's syntax against this graph's alphabet.
    pub fn parse_query(&self, syntax: &str) -> Result<PathQuery, GpsError> {
        Ok(PathQuery::parse(syntax, self.backend.labels())?)
    }

    /// Parses and evaluates a query, returning the selected nodes.  Repeated
    /// evaluations of the same expression are served from a cache.
    pub fn evaluate(&self, syntax: &str) -> Result<QueryAnswer, GpsError> {
        let query = self.parse_query(syntax)?;
        Ok((*self.core.cache.evaluate(query.regex())).clone())
    }

    /// Parses and evaluates a batch of queries, returning the answers in
    /// input order.
    ///
    /// Cache misses are handed to the configured execution engine in one
    /// batch call, so under [`EvalMode::Parallel`] the uncached queries fan
    /// out across worker threads and under [`EvalMode::Frontier`] they share
    /// one scratch allocation.
    pub fn evaluate_many(&self, syntaxes: &[&str]) -> Result<Vec<QueryAnswer>, GpsError> {
        let queries: Vec<PathQuery> = syntaxes
            .iter()
            .map(|syntax| self.parse_query(syntax))
            .collect::<Result<_, _>>()?;
        let regexes: Vec<&gps_automata::Regex> = queries.iter().map(|q| q.regex()).collect();
        Ok(self
            .core
            .cache
            .evaluate_many(&regexes)
            .into_iter()
            .map(|answer| (*answer).clone())
            .collect())
    }

    /// Renders the answer of a query as `{N1, N2, …}`.
    pub fn evaluate_rendered(&self, syntax: &str) -> Result<String, GpsError> {
        let answer = self.evaluate(syntax)?;
        Ok(render::render_node_set(&self.backend, &answer.nodes()))
    }

    /// Resolves a node by display name.
    pub fn node(&self, name: &str) -> Result<NodeId, GpsError> {
        self.backend
            .node_by_name(name)
            .ok_or_else(|| GpsError::UnknownNode(name.to_string()))
    }

    // -------------------------------------------------------- visualization

    /// Extracts the neighborhood of a node at the given radius (Figure 3(a)).
    pub fn neighborhood(&self, node: NodeId, radius: u32) -> Neighborhood {
        Neighborhood::extract(&self.backend, node, radius)
    }

    /// Renders the neighborhood of a node at the given radius.
    pub fn render_neighborhood(&self, node: NodeId, radius: u32) -> String {
        render::render_neighborhood(&self.backend, &self.neighborhood(node, radius), None)
    }

    /// Renders the zoom-out from radius `radius` to `radius + 1`, marking the
    /// newly revealed nodes (Figure 3(b)).
    pub fn render_zoom(&self, node: NodeId, radius: u32) -> String {
        let hood = self.neighborhood(node, radius);
        let (larger, delta) = hood.zoom_out(&self.backend);
        render::render_neighborhood(&self.backend, &larger, Some(&delta))
    }

    /// Renders the prefix tree of a node's paths up to `bound`, highlighting
    /// `suggested` (Figure 3(c)).
    pub fn render_prefix_tree(
        &self,
        node: NodeId,
        bound: usize,
        suggested: &[gps_graph::LabelId],
    ) -> String {
        let words = PathEnumerator::new(bound).words_from(&self.backend, node);
        let tree = PrefixTree::from_words(&words);
        render::render_prefix_tree(&self.backend, &tree, &suggested.to_vec())
    }

    // ------------------------------------------------------------- sessions

    /// Starts an interactive session over this engine's backend with its
    /// configured session options, evaluating through the engine's shared
    /// stack (cache + configured execution engine).
    pub fn new_session(&self) -> Session<'_, B> {
        let mut session = Session::with_exec(
            &self.backend,
            self.core.options.session.clone(),
            self.eval_handle(),
        );
        if self.core.options.metrics.is_enabled() {
            session.set_metrics(gps_interactive::metrics::SessionMetrics::from_registry(
                &self.core.options.metrics,
            ));
        }
        session
    }

    /// Runs a full interactive session against `user` with the configured
    /// strategy and options.
    pub fn specify<U: User<B> + ?Sized>(&self, user: &mut U) -> SessionOutcome {
        let mut strategy = self.core.options.strategy.instantiate::<B>();
        let mut session = self.new_session();
        session.run(strategy.as_mut(), user)
    }

    // ------------------------------------------------------------ scenarios

    /// Scenario 1 — static labeling: the user labels arbitrary nodes and the
    /// system proposes a consistent query or reports the inconsistency.
    pub fn static_labeling(&self, labels: &[(NodeId, Label)]) -> StaticLabelingOutcome {
        scenario::static_labeling(&self.backend, labels, self.core.learner())
    }

    /// Scenario 2 — interactive labeling without path validation, against a
    /// simulated user whose hidden goal query is `goal_syntax`.
    pub fn interactive_without_validation(
        &self,
        goal_syntax: &str,
        _seed: u64,
    ) -> Result<ScenarioReport, GpsError> {
        let goal = self.parse_query(goal_syntax)?;
        let config = SessionConfig {
            with_path_validation: false,
            ..self.core.options.session.clone()
        };
        let mut strategy = self.core.options.strategy.instantiate::<B>();
        Ok(scenario::interactive_with_exec(
            &self.backend,
            &goal,
            config,
            strategy.as_mut(),
            self.eval_handle(),
        ))
    }

    /// Scenario 3 — interactive labeling with path validation (the core of
    /// GPS), against a simulated user whose hidden goal query is
    /// `goal_syntax`.
    pub fn interactive_with_validation(
        &self,
        goal_syntax: &str,
        _seed: u64,
    ) -> Result<ScenarioReport, GpsError> {
        let goal = self.parse_query(goal_syntax)?;
        let config = SessionConfig {
            with_path_validation: true,
            ..self.core.options.session.clone()
        };
        let mut strategy = self.core.options.strategy.instantiate::<B>();
        Ok(scenario::interactive_with_exec(
            &self.backend,
            &goal,
            config,
            strategy.as_mut(),
            self.eval_handle(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
    use gps_interactive::user::SimulatedUser;

    fn gps() -> (Gps, gps_datasets::figure1::Figure1) {
        let (graph, ids) = figure1_graph();
        (Gps::new(graph), ids)
    }

    #[test]
    fn evaluation_matches_the_paper() {
        let (gps, ids) = gps();
        let answer = gps.evaluate(MOTIVATING_QUERY).unwrap();
        assert_eq!(answer.nodes(), vec![ids.n1, ids.n2, ids.n4, ids.n6]);
        assert_eq!(
            gps.evaluate_rendered(MOTIVATING_QUERY).unwrap(),
            "{N1, N2, N4, N6}"
        );
    }

    #[test]
    fn evaluation_is_cached() {
        let (gps, _) = gps();
        gps.evaluate(MOTIVATING_QUERY).unwrap();
        gps.evaluate(MOTIVATING_QUERY).unwrap();
        let bus = gps.evaluate("bus").unwrap();
        assert!(!bus.is_empty());
    }

    #[test]
    fn parse_errors_are_propagated() {
        let (gps, _) = gps();
        assert!(matches!(gps.evaluate("spaceship"), Err(GpsError::Parse(_))));
        assert!(gps.parse_query("(bus").is_err());
        assert!(matches!(gps.node("Nowhere"), Err(GpsError::UnknownNode(_))));
    }

    #[test]
    fn rendering_helpers_produce_figures() {
        let (gps, ids) = gps();
        let fig3a = gps.render_neighborhood(ids.n2, 2);
        assert!(fig3a.contains("radius 2"));
        let fig3b = gps.render_zoom(ids.n2, 2);
        assert!(fig3b.contains("*new*"));
        let graph = gps.graph();
        let bus = graph.label_id("bus").unwrap();
        let cinema = graph.label_id("cinema").unwrap();
        let fig3c = gps.render_prefix_tree(ids.n2, 3, &[bus, bus, cinema]);
        assert!(fig3c.contains("◀ candidate"));
    }

    #[test]
    fn scenarios_run_through_the_facade() {
        let (gps, ids) = gps();
        let static_outcome =
            gps.static_labeling(&[(ids.n2, Label::Positive), (ids.n5, Label::Negative)]);
        assert!(matches!(static_outcome, StaticLabelingOutcome::Learned(_)));

        let report = gps
            .interactive_with_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert!(report.goal_reached);
        let report2 = gps
            .interactive_without_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert!(report2.consistent_with_labels);
    }

    #[test]
    fn custom_learner_configuration() {
        let (graph, _) = figure1_graph();
        let gps = Gps::with_learner(graph, Learner::with_bound(3));
        assert_eq!(gps.learner().path_bound, 3);
        assert!(gps.graph().node_count() == 10);
    }

    #[test]
    fn builder_configures_every_layer() {
        let (graph, _) = figure1_graph();
        let engine = Engine::builder(graph)
            .path_bound(3)
            .initial_radius(1)
            .max_radius(4)
            .with_path_validation(false)
            .max_interactions(7)
            .strategy(StrategyChoice::Degree)
            .build();
        assert_eq!(engine.learner().path_bound, 3);
        let config = engine.session_config();
        assert_eq!(config.path_bound, 3);
        assert_eq!(config.initial_radius, 1);
        assert_eq!(config.max_radius, 4);
        assert!(!config.with_path_validation);
        assert_eq!(config.halt.max_interactions, 7);
        assert_eq!(engine.strategy(), StrategyChoice::Degree);
        assert_eq!(
            config.learner.path_bound, 3,
            "learner propagates to sessions"
        );
    }

    #[test]
    fn interactive_scenarios_honor_builder_knobs() {
        let (graph, _) = figure1_graph();
        // A one-interaction budget must cut the session short regardless of
        // convergence; with the degree strategy and no stop-on-goal the
        // session must run exactly one interaction.
        let engine = Engine::builder(graph)
            .strategy(StrategyChoice::Degree)
            .halt(gps_interactive::halt::HaltConfig {
                max_interactions: 1,
                stop_on_goal: false,
            })
            .build();
        let report = engine
            .interactive_with_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert_eq!(report.interactions, 1, "budget knob must reach sessions");
    }

    #[test]
    fn session_config_adopts_its_learner() {
        let (graph, _) = figure1_graph();
        let config = gps_interactive::session::SessionConfig {
            learner: Learner::with_bound(2),
            path_bound: 2,
            ..Default::default()
        };
        let engine = Engine::builder(graph).session_config(config).build();
        assert_eq!(engine.learner().path_bound, 2);
        assert_eq!(engine.session_config().learner.path_bound, 2);
    }

    #[test]
    fn eval_modes_agree_and_reach_the_engine() {
        let (graph, ids) = figure1_graph();
        let naive = Engine::builder(graph.clone()).build();
        assert_eq!(naive.eval_mode(), EvalMode::Naive, "default mode");
        for mode in [EvalMode::Frontier, EvalMode::Parallel] {
            let engine = Engine::builder(graph.clone()).eval_mode(mode).build();
            assert_eq!(engine.eval_mode(), mode);
            assert_eq!(
                engine.evaluate(MOTIVATING_QUERY).unwrap().nodes(),
                naive.evaluate(MOTIVATING_QUERY).unwrap().nodes(),
                "{mode:?}"
            );
            let csr_engine = Engine::builder(graph.clone()).eval_mode(mode).build_csr();
            assert!(csr_engine.evaluate("cinema").unwrap().contains(ids.n4));
        }
    }

    #[test]
    fn evaluate_many_matches_per_query_evaluation() {
        let (graph, _) = figure1_graph();
        let queries = [MOTIVATING_QUERY, "cinema", "bus", MOTIVATING_QUERY];
        let naive = Engine::builder(graph.clone()).build();
        let expected: Vec<Vec<NodeId>> = queries
            .iter()
            .map(|q| naive.evaluate(q).unwrap().nodes())
            .collect();
        for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
            let engine = Engine::builder(graph.clone()).eval_mode(mode).build();
            let answers = engine.evaluate_many(&queries).unwrap();
            assert_eq!(answers.len(), queries.len());
            for (answer, expected) in answers.iter().zip(&expected) {
                assert_eq!(&answer.nodes(), expected, "{mode:?}");
            }
            assert!(engine.evaluate_many(&["(bus"]).is_err(), "{mode:?}");
        }
    }

    #[test]
    fn interactive_scenarios_run_under_the_frontier_mode() {
        let (graph, _) = figure1_graph();
        let engine = Engine::builder(graph)
            .eval_mode(EvalMode::Frontier)
            .build_csr();
        let report = engine
            .interactive_with_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert!(report.goal_reached);
    }

    #[test]
    fn csr_engine_answers_like_the_adjacency_engine() {
        let (graph, _) = figure1_graph();
        let adjacency = Engine::builder(graph.clone()).build();
        let csr = Engine::builder(graph).build_csr();
        assert_eq!(
            adjacency.evaluate(MOTIVATING_QUERY).unwrap().nodes(),
            csr.evaluate(MOTIVATING_QUERY).unwrap().nodes()
        );
        assert_eq!(
            adjacency.evaluate_rendered("bus").unwrap(),
            csr.evaluate_rendered("bus").unwrap()
        );
    }

    #[test]
    fn interactive_scenarios_run_on_the_csr_backend() {
        let (graph, _) = figure1_graph();
        let engine = Engine::builder(graph).build_csr();
        let report = engine
            .interactive_with_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert!(report.goal_reached, "report: {report:?}");
    }

    #[test]
    fn specify_runs_the_configured_strategy() {
        let (graph, _) = figure1_graph();
        let engine = Engine::builder(graph).build();
        let goal = engine.parse_query(MOTIVATING_QUERY).unwrap();
        let mut user = SimulatedUser::new(goal.clone(), engine.backend());
        let outcome = engine.specify(&mut user);
        let learned = outcome.learned.expect("a query is learned");
        assert_eq!(
            learned.answer.nodes(),
            goal.evaluate(engine.backend()).nodes()
        );
    }

    #[test]
    fn from_backend_wraps_a_snapshot_directly() {
        let (graph, ids) = figure1_graph();
        let snapshot = gps_graph::CsrGraph::from_graph(&graph);
        let engine = Engine::from_backend(snapshot);
        assert!(engine.evaluate("cinema").unwrap().contains(ids.n4));
        assert_eq!(engine.snapshot().node_count(), 10);
    }

    #[test]
    fn builder_from_edge_list_parses() {
        let engine = GpsBuilder::from_edge_list("N1 tram N4\nN4 cinema C1\n")
            .unwrap()
            .build();
        assert_eq!(engine.backend().node_count(), 3);
        assert!(GpsBuilder::from_edge_list("one two\n").is_err());
    }
}
