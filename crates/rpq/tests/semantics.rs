//! Integration tests of the RPQ semantics on structured graphs: cycles,
//! disconnected components, queries whose language is infinite, and the
//! relationship between evaluation, witnesses and coverage.

use gps_automata::{Dfa, Regex};
use gps_graph::{Graph, PathEnumerator};
use gps_rpq::{eval, witness, NegativeCoverage, PathQuery};

/// A two-component graph: a directed cycle a→b→c→a labeled `x` with one `y`
/// exit to a sink, and an isolated chain d→e labeled `z`.
fn cyclic_graph() -> Graph {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let sink = g.add_node("sink");
    let d = g.add_node("d");
    let e = g.add_node("e");
    g.add_edge_by_name(a, "x", b);
    g.add_edge_by_name(b, "x", c);
    g.add_edge_by_name(c, "x", a);
    g.add_edge_by_name(c, "y", sink);
    g.add_edge_by_name(d, "z", e);
    g
}

#[test]
fn star_queries_select_every_cycle_node() {
    let g = cyclic_graph();
    let q = PathQuery::parse("x*.y", g.labels()).unwrap();
    let answer = q.evaluate(&g);
    // Every node of the cycle eventually reaches the y edge.
    for name in ["a", "b", "c"] {
        assert!(answer.contains(g.node_by_name(name).unwrap()), "{name}");
    }
    assert!(!answer.contains(g.node_by_name("sink").unwrap()));
    assert!(!answer.contains(g.node_by_name("d").unwrap()));
}

#[test]
fn witnesses_on_cycles_have_minimal_length() {
    let g = cyclic_graph();
    let q = PathQuery::parse("x*.y", g.labels()).unwrap();
    // c is one step from the exit, a is three steps (a→b→c→exit? no: a→b→c
    // then y — so 2 x-steps plus y).
    let wc = q.witness(&g, g.node_by_name("c").unwrap()).unwrap();
    assert_eq!(wc.len(), 1);
    let wa = q.witness(&g, g.node_by_name("a").unwrap()).unwrap();
    assert_eq!(wa.len(), 3);
    assert!(q.dfa().accepts(&wa.word));
}

#[test]
fn unbounded_repetition_is_handled_by_the_product_fixed_point() {
    let g = cyclic_graph();
    let x = g.label_id("x").unwrap();
    // A long fixed word x^10: the cycle provides it even though no simple
    // path is that long.
    let dfa = Dfa::from_regex(&Regex::word(&[x; 10]));
    let answer = eval::evaluate(&g, &dfa);
    assert!(answer.contains(g.node_by_name("a").unwrap()));
    let path = witness::shortest_witness(&g, &dfa, g.node_by_name("a").unwrap()).unwrap();
    assert_eq!(path.len(), 10);
    assert_eq!(path.nodes.len(), 11);
}

#[test]
fn components_do_not_leak_into_each_other() {
    let g = cyclic_graph();
    let qz = PathQuery::parse("z", g.labels()).unwrap();
    assert_eq!(qz.evaluate(&g).node_names(&g), vec!["d"]);
    let qx = PathQuery::parse("x", g.labels()).unwrap();
    assert!(!qx.evaluate(&g).contains(g.node_by_name("d").unwrap()));
}

#[test]
fn coverage_interacts_correctly_with_cycles() {
    let g = cyclic_graph();
    let a = g.node_by_name("a").unwrap();
    let b = g.node_by_name("b").unwrap();
    // Labeling a negative covers its bounded words (x, xx, xxx, xxy, …).
    let coverage = NegativeCoverage::from_negatives(&g, [a], 3);
    let x = g.label_id("x").unwrap();
    let y = g.label_id("y").unwrap();
    assert!(coverage.is_covered(&[x, x, x]));
    assert!(coverage.is_covered(&[x, x, y]));
    // b's word x·y is NOT one of a's bounded words (a needs two x's before y).
    assert!(!coverage.is_covered(&[x, y]));
    assert!(!coverage.is_uninformative(&g, b));
}

#[test]
fn bounded_enumeration_agrees_with_evaluation_on_finite_queries() {
    let g = cyclic_graph();
    let x = g.label_id("x").unwrap();
    let y = g.label_id("y").unwrap();
    let word = vec![x, x, y];
    let dfa = Dfa::from_regex(&Regex::word(&word));
    let answer = eval::evaluate(&g, &dfa);
    let enumerator = PathEnumerator::new(3);
    for node in g.nodes() {
        assert_eq!(
            answer.contains(node),
            enumerator.words_from(&g, node).contains(&word),
            "node {}",
            g.node_name(node)
        );
    }
}

#[test]
fn empty_and_universal_queries() {
    let g = cyclic_graph();
    let empty = Dfa::from_regex(&Regex::Empty);
    assert!(eval::evaluate(&g, &empty).is_empty());
    // Σ* selects every node (nullable).
    let x = g.label_id("x").unwrap();
    let y = g.label_id("y").unwrap();
    let z = g.label_id("z").unwrap();
    let sigma_star = Dfa::from_regex(&Regex::star(Regex::union([
        Regex::symbol(x),
        Regex::symbol(y),
        Regex::symbol(z),
    ])));
    assert_eq!(eval::evaluate(&g, &sigma_star).len(), g.node_count());
}

#[test]
fn accepted_word_counts_reflect_cycle_richness() {
    let g = cyclic_graph();
    let q = PathQuery::parse("x*.y", g.labels()).unwrap();
    let counts = eval::accepted_word_counts(&g, q.dfa(), 4);
    let c = g.node_by_name("c").unwrap();
    let d = g.node_by_name("d").unwrap();
    assert!(counts[&c] >= 2, "c has y and xxxy within bound 4");
    assert_eq!(counts[&d], 0);
}
