//! Memoization of query evaluations.
//!
//! During an interactive session the same candidate queries are evaluated
//! repeatedly against the same (immutable) graph — after every interaction
//! the learner re-checks consistency and the halt condition re-evaluates the
//! current hypothesis.  [`EvalCache`] memoizes answers keyed by the query's
//! regular expression, behind a lock so strategy evaluation can be
//! parallelized by the benchmark harness.
//!
//! The cache is **bounded**: entries carry a last-used tick and once
//! [`capacity`](EvalCache::capacity) is reached the least-recently-used entry
//! is evicted, so workload replay over many distinct queries cannot grow the
//! cache without limit.  Evaluation itself is delegated to a pluggable
//! [`DfaEvaluator`], so the same cache serves the naive reference evaluator
//! and the `gps-exec` frontier/batch engines.

use crate::eval::{DfaEvaluator, EvalResume, NaiveEvaluator, QueryAnswer};
use gps_automata::{Alphabet, Dfa, Regex};
use gps_graph::{CsrGraph, GraphBackend, GraphDelta, NodeId, Path, PathEnumerator, Word};
use gps_telemetry::{Counter, Histogram, MetricsRegistry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default maximum number of cached answers.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default maximum number of per-bound bounded-word snapshots.
///
/// A word snapshot holds every node's distinct bounded words, so it is by far
/// the largest object the cache can own; interactive sessions only ever ask
/// for a handful of distinct bounds (the path bound plus the zoom radii in
/// use, typically 2–6), so a small cap bounds the memory without evicting on
/// the session fast path.
pub const DEFAULT_WORDS_CAPACITY: usize = 8;

#[derive(Debug)]
struct Entry {
    answer: Arc<QueryAnswer>,
    /// The labels the query's DFA can ever read — the per-entry alphabet
    /// fingerprint epoch migration compares against a delta's touched labels
    /// to prove the entry unaffected (Tier 1).
    alphabet: Alphabet,
    /// Whether the query's language contains the empty word — the membership
    /// a node with no alphabet-relevant out-edges has, i.e. the fill value
    /// when a carried answer is extended over nodes a label-disjoint delta
    /// added.
    nullable: bool,
    /// The compiled automaton the answer was computed from, kept so a
    /// touched entry can be re-derived without reparsing the expression.
    dfa: Arc<Dfa>,
    /// The captured fixed point (Tier-2 seed); `None` when the evaluator
    /// does not capture (naive mode) or the evaluation early-exited.
    resume: Option<Arc<EvalResume>>,
    /// Monotonic recency tick, updated with a relaxed store on every hit so
    /// lookups stay on the shared read lock.
    last_used: AtomicU64,
}

/// One per-bound snapshot of every node's distinct bounded words, plus the
/// derived per-node counts (always materialized together: the counts are a
/// trivial map over the words, and a single entry keeps the LRU eviction of
/// words and counts atomic).
#[derive(Debug)]
struct WordsEntry {
    words: Arc<Vec<Vec<Word>>>,
    counts: Arc<Vec<usize>>,
    /// Every label occurring in any node's bounded words — the fingerprint
    /// [`EvalCache::inherit_words`] uses to skip its union-BFS entirely when
    /// a removal-only delta cannot touch any materialized word.
    alphabet: Alphabet,
    last_used: AtomicU64,
}

/// Every label appearing in any word of a bounded-word snapshot.
fn words_alphabet(words: &[Vec<Word>]) -> Alphabet {
    Alphabet::from_labels(words.iter().flatten().flatten().copied())
}

/// One bounded-word snapshot lifted out of an old cache for inheritance:
/// `(bound, words, counts, alphabet)`.
type WordsSnapshot = (usize, Arc<Vec<Vec<Word>>>, Arc<Vec<usize>>, Alphabet);

/// How one epoch migration ([`EvalCache::migrate_answers`]) split the old
/// cache's answers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Entries whose alphabet misses every touched label: carried verbatim
    /// (Tier 1), zero recomputation.
    pub carried: usize,
    /// Touched entries re-derived from their seeded fixed point restricted
    /// to an insert-only delta (Tier 2).
    pub reseeded: usize,
    /// Touched entries re-derived across a removal-bearing delta by the
    /// over-delete/re-derive sweep (Tier 3).
    pub delete_reseeded: usize,
    /// Touched entries dropped to a cold recompute on next use — always the
    /// sum of the three `fallback_*` reasons.
    pub recomputed: usize,
    /// Cold fallbacks where the resume itself gave up: the removal's
    /// over-delete cone blew the saturation budget (or the seed's shape no
    /// longer matched the snapshot).
    pub fallback_saturation: usize,
    /// Cold fallbacks because the entry never captured a resumable seed.
    pub fallback_no_seed: usize,
    /// Cold fallbacks because the new cache hit its capacity before the
    /// entry's recency rank came up.
    pub fallback_evicted: usize,
}

/// A concurrent, bounded evaluation cache bound to one graph snapshot.
///
/// Hits take only the shared read lock (recency and counters are atomics);
/// the exclusive write lock is reserved for inserts and evictions.
#[derive(Debug)]
pub struct EvalCache {
    csr: Arc<CsrGraph>,
    evaluator: Box<dyn DfaEvaluator>,
    capacity: usize,
    words_capacity: usize,
    answers: RwLock<HashMap<Regex, Entry>>,
    /// Per-bound distinct bounded word sets of every node (lazy, shared) and
    /// their derived per-node counts.  Sessions score informativeness and
    /// cover negatives against these words; enumerating them once per
    /// snapshot instead of once per node per interaction is a large part of
    /// the sessions/sec win.  LRU-bounded by `words_capacity` — the word
    /// snapshots dominate the cache's memory, so a shard-sized deployment can
    /// cap them independently of the answer cache.
    words: RwLock<HashMap<usize, WordsEntry>>,
    /// Hit/miss/eviction counters.  Standalone (per-cache) by default so the
    /// legacy accessors keep their exact per-instance semantics; rebound to
    /// the shared `gps_rpq_cache_*` registry series by
    /// [`with_metrics`](Self::with_metrics), where rebuilt-per-epoch caches
    /// keep extending one aggregate series.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    word_evictions: Counter,
    /// Epoch-migration split: answers carried verbatim (Tier 1), re-derived
    /// from their seed across insert-only deltas (Tier 2) or removal-bearing
    /// deltas (Tier 3), and dropped to a cold recompute — the latter further
    /// attributed to a reason trio whose sum is the legacy `fallback` series.
    carried: Counter,
    reseeded: Counter,
    delete_reseeded: Counter,
    fallback: Counter,
    fallback_saturation: Counter,
    fallback_no_seed: Counter,
    fallback_evicted: Counter,
    /// Entries (answers + word snapshots) dropped when the cache's epoch was
    /// retired — the eviction attribution of the epoch swap.
    retired_entries: Counter,
    /// `gps_rpq_eval_latency_ns` — wall time of one cache-miss evaluation
    /// (disabled until [`with_metrics`](Self::with_metrics) binds it).
    eval_latency: Histogram,
    /// `gps_rpq_reseed_latency_ns` — wall time of one Tier-2 seeded
    /// re-derivation at publish.
    reseed_latency: Histogram,
    /// `gps_rpq_delete_reseed_latency_ns` — wall time of one Tier-3
    /// over-delete/re-derive at publish.
    delete_reseed_latency: Histogram,
    tick: AtomicU64,
    /// Set once the snapshot this cache serves has been superseded by a
    /// newer epoch and every entry has been dropped (see
    /// [`retire`](Self::retire)).
    retired: AtomicBool,
}

impl EvalCache {
    /// Creates a cache for any backend (snapshotting it), evaluating with the
    /// naive reference evaluator and the default capacity.
    pub fn new<B: GraphBackend>(graph: &B) -> Self {
        Self::from_csr(CsrGraph::from_backend(graph))
    }

    /// Creates a cache from an existing CSR snapshot (naive evaluator,
    /// default capacity).  The snapshot is shared with the evaluator, not
    /// copied.
    pub fn from_csr(csr: CsrGraph) -> Self {
        let csr = Arc::new(csr);
        let evaluator = Box::new(NaiveEvaluator::from_shared(Arc::clone(&csr)));
        Self::with_shared_evaluator(csr, evaluator)
    }

    /// Creates a cache that answers queries through `evaluator`.
    ///
    /// `csr` is the snapshot the evaluator was built from; the cache keeps it
    /// so witness extraction and rendering keep working against the exact
    /// graph the answers were computed on.
    pub fn with_evaluator(csr: CsrGraph, evaluator: Box<dyn DfaEvaluator>) -> Self {
        Self::with_shared_evaluator(Arc::new(csr), evaluator)
    }

    /// [`with_evaluator`](Self::with_evaluator) over an already-shared
    /// snapshot.
    pub fn with_shared_evaluator(csr: Arc<CsrGraph>, evaluator: Box<dyn DfaEvaluator>) -> Self {
        Self {
            csr,
            evaluator,
            capacity: DEFAULT_CAPACITY,
            words_capacity: DEFAULT_WORDS_CAPACITY,
            answers: RwLock::new(HashMap::new()),
            words: RwLock::new(HashMap::new()),
            hits: Counter::standalone(),
            misses: Counter::standalone(),
            evictions: Counter::standalone(),
            word_evictions: Counter::standalone(),
            carried: Counter::standalone(),
            reseeded: Counter::standalone(),
            delete_reseeded: Counter::standalone(),
            fallback: Counter::standalone(),
            fallback_saturation: Counter::standalone(),
            fallback_no_seed: Counter::standalone(),
            fallback_evicted: Counter::standalone(),
            retired_entries: Counter::standalone(),
            eval_latency: Histogram::disabled(),
            reseed_latency: Histogram::disabled(),
            delete_reseed_latency: Histogram::disabled(),
            tick: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }

    /// Binds the cache's counters to `registry`'s `gps_rpq_cache_*` series
    /// and its miss-evaluation latency to `gps_rpq_eval_latency_ns`.
    ///
    /// With an enabled registry the counters are *shared* across every cache
    /// bound to it — exactly what the epoch-advancing engine wants, where
    /// each publish rebuilds the cache but the hit/miss series must continue.
    /// With a disabled registry this is a no-op and the cache keeps its
    /// standalone per-instance counters.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        if registry.is_enabled() {
            self.hits = registry.counter("gps_rpq_cache_hits_total");
            self.misses = registry.counter("gps_rpq_cache_misses_total");
            self.evictions = registry.counter("gps_rpq_cache_evictions_total");
            self.word_evictions = registry.counter("gps_rpq_cache_word_evictions_total");
            self.carried = registry.counter("gps_rpq_cache_carried_total");
            self.reseeded = registry.counter("gps_rpq_cache_reseeded_total");
            self.delete_reseeded = registry.counter("gps_rpq_cache_delete_reseeded_total");
            self.fallback = registry.counter("gps_rpq_cache_fallback_total");
            self.fallback_saturation = registry.counter("gps_rpq_cache_fallback_saturation_total");
            self.fallback_no_seed = registry.counter("gps_rpq_cache_fallback_no_seed_total");
            self.fallback_evicted = registry.counter("gps_rpq_cache_fallback_evicted_total");
            self.retired_entries = registry.counter("gps_rpq_cache_retired_total");
            self.eval_latency = registry.histogram("gps_rpq_eval_latency_ns");
            self.reseed_latency = registry.histogram("gps_rpq_reseed_latency_ns");
            self.delete_reseed_latency = registry.histogram("gps_rpq_delete_reseed_latency_ns");
        }
        self
    }

    /// Sets the maximum number of cached answers (at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the maximum number of per-bound bounded-word snapshots (at least
    /// 1) — the memory knob for the largest structures the cache owns.
    pub fn with_words_capacity(mut self, capacity: usize) -> Self {
        self.words_capacity = capacity.max(1);
        self
    }

    /// The maximum number of cached answers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The maximum number of per-bound bounded-word snapshots.
    pub fn words_capacity(&self) -> usize {
        self.words_capacity
    }

    /// The underlying snapshot.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The epoch of the snapshot this cache serves.  Cached answers and word
    /// snapshots are only valid for graphs at exactly this `(epoch,
    /// node_count)` identity — the check the per-snapshot fast paths
    /// (pruning deltas, validation prompts) perform before trusting shared
    /// state, instead of relying on pointer or size coincidence.
    pub fn epoch(&self) -> u64 {
        self.csr.epoch()
    }

    /// Atomically drops every cached answer and word snapshot: called by a
    /// versioned store when this cache's snapshot has been superseded by a
    /// published epoch and no session is pinned to it anymore.  The cache
    /// stays functional (a straggling handle re-misses and recomputes
    /// deterministically), but its memory is released eagerly instead of
    /// waiting for the last `Arc` to die.
    ///
    /// The drop is attributed to `gps_rpq_cache_retired_total` (answers plus
    /// word snapshots), so the epoch swap's evictions stay observable next to
    /// the migration split instead of vanishing without a counter.
    pub fn retire(&self) {
        let mut answers = self.answers.write();
        let mut words = self.words.write();
        self.retired_entries
            .add((answers.len() + words.len()) as u64);
        answers.clear();
        words.clear();
        self.retired.store(true, Ordering::Release);
    }

    /// Returns `true` once [`retire`](Self::retire) has run.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Migrates `old`'s (the superseded epoch's) cached answers into this
    /// (new-epoch) cache across `delta`, in three tiers:
    ///
    /// * **Tier 1 — proof of irrelevance.** An entry whose DFA alphabet
    ///   misses every touched label cannot observe the delta: edges with
    ///   labels outside the alphabet never fire a DFA transition, so the
    ///   product — and the answer, witnesses and captured fixed point — is
    ///   unchanged.  The entry is carried verbatim (`Arc`-shared; when the
    ///   delta added nodes, the answer is extended with the language's
    ///   nullability, since a node whose every edge is alphabet-irrelevant is
    ///   selected iff the language contains the empty word).
    /// * **Tier 2 — delta-restricted re-derivation.** A touched entry with a
    ///   captured seed on an *insert-only* delta resumes its fixed point
    ///   restricted to the delta ([`DfaEvaluator::evaluate_dfa_resumed`]) —
    ///   the fixed point is monotone in the edge set, so inserts only grow
    ///   it.
    /// * **Tier 3 — over-delete/re-derive.** A touched entry with a seed on
    ///   a *removal-bearing* delta takes the delete-aware resume: support
    ///   counts are decremented along removed edges, zero-support
    ///   configurations are transitively over-deleted, and the survivors
    ///   re-seed a push-only re-derivation (mixed insert+delete deltas run
    ///   the insert sweep first, then the removal sweep — one unified path).
    ///
    /// Everything else falls back to a cold recompute on next use, with the
    /// reason attributed: `fallback_saturation` (the resume gave up — the
    /// over-delete cone blew the configured budget, or the seed's shape no
    /// longer matched), `fallback_no_seed` (nothing captured to resume
    /// from), or `fallback_evicted` (the new cache filled before this
    /// entry's recency rank came up); `recomputed` is always their sum.
    ///
    /// Recency ticks carry over, so LRU ordering survives the epoch swap;
    /// the split is recorded on the `carried`/`reseeded`/`delete_reseeded`/
    /// `fallback*` counters and each reseed's wall time on
    /// `gps_rpq_reseed_latency_ns` (Tier 2) or
    /// `gps_rpq_delete_reseed_latency_ns` (Tier 3).
    pub fn migrate_answers(&self, old: &EvalCache, delta: &GraphDelta) -> MigrationReport {
        let mut report = MigrationReport::default();
        let touched = delta.touched_labels();
        let insert_only = delta.removed_edges.is_empty();
        let new_n = self.csr.node_count();
        // Continue the old epoch's tick stream so carried recency stays
        // comparable with post-migration touches.
        self.tick
            .fetch_max(old.tick.load(Ordering::Relaxed), Ordering::Relaxed);
        let old_entries = old.answers.read();
        // Most-recently-used first, so the capacity cap keeps the hot end.
        let mut ordered: Vec<(&Regex, &Entry)> = old_entries.iter().collect();
        ordered
            .sort_by_key(|(_, entry)| std::cmp::Reverse(entry.last_used.load(Ordering::Relaxed)));
        let total = ordered.len();
        let mut entries = self.answers.write();
        for (rank, (regex, entry)) in ordered.into_iter().enumerate() {
            if entries.len() >= self.capacity {
                // Everything below the capacity line recomputes cold on its
                // next use; attribute the whole tail in one step.
                let evicted = total - rank;
                report.recomputed += evicted;
                report.fallback_evicted += evicted;
                break;
            }
            let untouched = !entry.alphabet.iter().any(|label| touched.contains(&label));
            let migrated = if untouched {
                report.carried += 1;
                let answer = if entry.answer.flags().len() == new_n {
                    Arc::clone(&entry.answer)
                } else {
                    let mut flags = entry.answer.flags().to_vec();
                    flags.resize(new_n, entry.nullable);
                    Arc::new(QueryAnswer::from_flags(flags))
                };
                Entry {
                    answer,
                    alphabet: entry.alphabet.clone(),
                    nullable: entry.nullable,
                    dfa: Arc::clone(&entry.dfa),
                    // The seed stays valid: the relevant subgraph is
                    // unchanged, and nodes past `resume.nodes()` are
                    // re-seeded from the DFA alone at the next resume.
                    resume: entry.resume.clone(),
                    last_used: AtomicU64::new(entry.last_used.load(Ordering::Relaxed)),
                }
            } else {
                let reseeded = entry.resume.as_ref().and_then(|resume| {
                    let span = if insert_only {
                        self.reseed_latency.start_timer()
                    } else {
                        self.delete_reseed_latency.start_timer()
                    };
                    let outcome = self
                        .evaluator
                        .evaluate_dfa_resumed(&entry.dfa, resume, delta);
                    if outcome.is_none() {
                        span.cancel();
                    }
                    outcome
                });
                match reseeded {
                    Some((answer, resume)) => {
                        if insert_only {
                            report.reseeded += 1;
                        } else {
                            report.delete_reseeded += 1;
                        }
                        Entry {
                            answer: Arc::new(answer),
                            alphabet: entry.alphabet.clone(),
                            nullable: entry.nullable,
                            dfa: Arc::clone(&entry.dfa),
                            resume: Some(Arc::new(resume)),
                            last_used: AtomicU64::new(entry.last_used.load(Ordering::Relaxed)),
                        }
                    }
                    None => {
                        report.recomputed += 1;
                        if entry.resume.is_some() {
                            // The evaluator declined the seed: over-delete
                            // budget blown, shape mismatch, or (naive
                            // evaluator) no resume support at all.
                            report.fallback_saturation += 1;
                        } else {
                            report.fallback_no_seed += 1;
                        }
                        continue;
                    }
                }
            };
            entries.insert(regex.clone(), migrated);
        }
        self.carried.add(report.carried as u64);
        self.reseeded.add(report.reseeded as u64);
        self.delete_reseeded.add(report.delete_reseeded as u64);
        self.fallback.add(report.recomputed as u64);
        self.fallback_saturation
            .add(report.fallback_saturation as u64);
        self.fallback_no_seed.add(report.fallback_no_seed as u64);
        self.fallback_evicted.add(report.fallback_evicted as u64);
        report
    }

    /// Seeds this (new-epoch) cache's bounded-word snapshots from `old` (the
    /// superseded epoch's cache) after a publish whose changed-edge sources
    /// are `changed_sources` — the incremental-maintenance alternative to
    /// re-enumerating every node's bounded paths on the first session of
    /// each epoch.
    ///
    /// A node's distinct bounded words (length `1..=bound`) can only change
    /// if one of its bounded out-paths — in the old graph (a path that
    /// disappeared) or the new one (a path that appeared) — traverses a
    /// changed edge, i.e. iff the node reaches some changed edge's source
    /// within `bound - 1` steps.  For every bound the old cache had
    /// materialized, a reverse BFS over the *union* of both snapshots'
    /// reverse adjacencies computes that affected set; affected and
    /// newly-inserted nodes are re-enumerated on the new snapshot and every
    /// other node's word set is carried over verbatim.  The result is
    /// identical to a cold enumeration (asserted by the conformance tests).
    ///
    /// Before any of that, a fingerprint check can skip even the union BFS:
    /// when the delta adds no edges (an insertion always mints a fresh
    /// length-1 word at its source) and no removed edge's label occurs in any
    /// snapshot's word alphabet, no materialized word can change, and every
    /// snapshot is carried verbatim — `Arc`-shared when the node count is
    /// unchanged, extended with empty word sets for added nodes otherwise.
    pub fn inherit_words(&self, old: &EvalCache, delta: &GraphDelta) {
        let old_n = old.csr.node_count();
        let new_n = self.csr.node_count();
        let mut snapshots: Vec<WordsSnapshot> = old
            .words
            .read()
            .iter()
            .map(|(&bound, entry)| {
                (
                    bound,
                    Arc::clone(&entry.words),
                    Arc::clone(&entry.counts),
                    entry.alphabet.clone(),
                )
            })
            .collect();
        if snapshots.is_empty() {
            return;
        }
        // Deterministic inheritance order: when the capacity cap truncates,
        // the smallest bounds — the ones the session fast paths ask for
        // first — survive, not whatever the map iteration happened to yield.
        snapshots.sort_by_key(|(bound, ..)| *bound);

        let touched = delta.touched_labels();
        let untouchable = delta.added_edges.is_empty()
            && snapshots
                .iter()
                .all(|(_, _, _, alphabet)| !alphabet.iter().any(|label| touched.contains(&label)));
        if untouchable {
            let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            let mut map = self.words.write();
            for (bound, old_words, old_counts, alphabet) in snapshots {
                if map.len() >= self.words_capacity {
                    break;
                }
                let (words, counts) = if old_n == new_n {
                    (old_words, old_counts)
                } else {
                    let mut words = (*old_words).clone();
                    words.resize(new_n, Vec::new());
                    let counts: Vec<usize> = words.iter().map(|words| words.len()).collect();
                    (Arc::new(words), Arc::new(counts))
                };
                map.entry(bound).or_insert(WordsEntry {
                    words,
                    counts,
                    alphabet,
                    last_used: AtomicU64::new(tick),
                });
            }
            return;
        }

        let changed_sources = delta.changed_sources();
        // One union reverse BFS up to the largest materialized bound; the
        // per-bound affected set is "reached within bound - 1 steps".
        let max_bound = snapshots.iter().map(|(bound, ..)| *bound).max().unwrap();
        let mut depth: Vec<Option<usize>> = vec![None; new_n.max(old_n)];
        let mut frontier: Vec<NodeId> = Vec::new();
        for &source in &changed_sources {
            if source.index() < depth.len() && depth[source.index()].is_none() {
                depth[source.index()] = Some(0);
                frontier.push(source);
            }
        }
        let mut level = 0usize;
        while !frontier.is_empty() && level + 1 < max_bound {
            level += 1;
            let mut next = Vec::new();
            for &node in &frontier {
                let mut visit = |pred: NodeId| {
                    if pred.index() < depth.len() && depth[pred.index()].is_none() {
                        depth[pred.index()] = Some(level);
                        next.push(pred);
                    }
                };
                if node.index() < old_n {
                    for entry in old.csr.inc(node) {
                        visit(entry.node);
                    }
                }
                if node.index() < new_n {
                    for entry in self.csr.inc(node) {
                        visit(entry.node);
                    }
                }
            }
            frontier = next;
        }

        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.words.write();
        for (bound, old_words, _, _) in snapshots {
            if map.len() >= self.words_capacity {
                break;
            }
            let enumerator = PathEnumerator::new(bound);
            let words: Vec<Vec<Word>> = (0..new_n)
                .map(|index| {
                    let carried = index < old_n && depth[index].is_none_or(|d| d + 1 > bound);
                    if carried {
                        old_words[index].clone()
                    } else {
                        enumerator
                            .words_from(&*self.csr, NodeId::from(index))
                            .into_iter()
                            .collect()
                    }
                })
                .collect();
            let counts: Vec<usize> = words.iter().map(|words| words.len()).collect();
            let alphabet = words_alphabet(&words);
            map.entry(bound).or_insert(WordsEntry {
                words: Arc::new(words),
                counts: Arc::new(counts),
                alphabet,
                last_used: AtomicU64::new(tick),
            });
        }
    }

    /// A new reference to the shared snapshot the answers are computed on.
    pub fn shared_csr(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.csr)
    }

    /// The evaluator answering cache misses.
    pub fn evaluator(&self) -> &dyn DfaEvaluator {
        self.evaluator.as_ref()
    }

    /// Evaluates `regex` on the snapshot, returning a shared answer.  Repeated
    /// calls with an equal expression hit the cache; when the cache is full
    /// the least-recently-used entry is evicted.
    pub fn evaluate(&self, regex: &Regex) -> Arc<QueryAnswer> {
        if let Some(answer) = self.touch(regex) {
            return answer;
        }
        let dfa = Dfa::from_regex(regex);
        let span = self.eval_latency.start_timer();
        let (answer, resume) = self.evaluator.evaluate_dfa_captured(&dfa);
        span.stop();
        let answer = Arc::new(answer);
        self.insert(regex, &answer, dfa, resume);
        answer
    }

    /// Like [`evaluate`](Self::evaluate), but for callers that already hold
    /// the compiled DFA of `regex` (the learner does): a miss evaluates the
    /// supplied automaton directly instead of recompiling the expression.
    ///
    /// `dfa` must accept the language of `regex` — the answer is cached under
    /// the expression.
    pub fn evaluate_compiled(&self, regex: &Regex, dfa: &Dfa) -> Arc<QueryAnswer> {
        if let Some(answer) = self.touch(regex) {
            return answer;
        }
        let span = self.eval_latency.start_timer();
        let (answer, resume) = self.evaluator.evaluate_dfa_captured(dfa);
        span.stop();
        let answer = Arc::new(answer);
        self.insert(regex, &answer, dfa.clone(), resume);
        answer
    }

    /// A shortest witness path for `node` under `dfa`, extracted by the
    /// configured evaluator (uncached — witnesses are per-node queries).
    pub fn witness(&self, dfa: &Dfa, node: NodeId) -> Option<Path> {
        self.evaluator.witness(dfa, node)
    }

    /// The distinct words of length `1..=bound` spelled by each node's
    /// outgoing paths (sorted, indexed by node id).
    ///
    /// Computed lazily once per bound on the shared snapshot and memoized;
    /// identical to `PathEnumerator::new(bound).words_from(graph, node)` for
    /// every node.  Sessions score informativeness (filter by coverage) and
    /// record negative examples against these sets without re-walking the
    /// graph.
    pub fn bounded_words(&self, bound: usize) -> Arc<Vec<Vec<Word>>> {
        self.bounded_entry(bound).0
    }

    /// The number of distinct words of length `1..=bound` spelled by each
    /// node's outgoing paths, indexed by node id — every node's
    /// uncovered-word count under *empty* negative coverage, i.e. the
    /// informativeness baseline an interactive session starts from.
    pub fn bounded_word_counts(&self, bound: usize) -> Arc<Vec<usize>> {
        self.bounded_entry(bound).1
    }

    /// Looks up (or computes) the bounded-word snapshot for `bound`,
    /// refreshing its recency; when the map is full the least-recently-used
    /// bound is evicted first.  Re-computation after an eviction is
    /// deterministic, so eviction never changes observable behavior.
    ///
    /// The snapshot is the most expensive object the cache builds (a bounded
    /// enumeration over every node), so a miss computes it *under the write
    /// lock* after a re-check: a burst of cold sessions asking for the same
    /// bound enumerates once and 7 waiters get the shared result, instead of
    /// N racing whole-graph sweeps.  Only `words` callers wait on this lock —
    /// the answer cache has its own.
    fn bounded_entry(&self, bound: usize) -> (Arc<Vec<Vec<Word>>>, Arc<Vec<usize>>) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(entry) = self.words.read().get(&bound) {
            entry.last_used.store(tick, Ordering::Relaxed);
            return (Arc::clone(&entry.words), Arc::clone(&entry.counts));
        }
        let mut map = self.words.write();
        if let Some(entry) = map.get(&bound) {
            entry.last_used.store(tick, Ordering::Relaxed);
            return (Arc::clone(&entry.words), Arc::clone(&entry.counts));
        }
        let enumerator = PathEnumerator::new(bound);
        let words: Vec<Vec<Word>> = self
            .csr
            .nodes()
            .map(|node| {
                enumerator
                    .words_from(self.csr.as_ref(), node)
                    .into_iter()
                    .collect()
            })
            .collect();
        let counts: Vec<usize> = words.iter().map(|words| words.len()).collect();
        let alphabet = words_alphabet(&words);
        let words = Arc::new(words);
        let counts = Arc::new(counts);
        if map.len() >= self.words_capacity {
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(&bound, _)| bound)
            {
                map.remove(&oldest);
                self.word_evictions.inc();
            }
        }
        map.insert(
            bound,
            WordsEntry {
                words: Arc::clone(&words),
                counts: Arc::clone(&counts),
                alphabet,
                last_used: AtomicU64::new(tick),
            },
        );
        (words, counts)
    }

    /// Number of per-bound bounded-word snapshots currently cached.
    pub fn words_len(&self) -> usize {
        self.words.read().len()
    }

    /// Number of bounded-word snapshots evicted by the capacity cap so far.
    ///
    /// Deprecated in favor of the registry snapshot path
    /// (`gps_rpq_cache_word_evictions_total` in
    /// [`MetricsRegistry::snapshot`]); kept as a thin read of the same
    /// counter.  Note that under [`with_metrics`](Self::with_metrics) the
    /// counter is shared registry-wide, not per-cache.
    pub fn word_evictions(&self) -> u64 {
        self.word_evictions.get()
    }

    /// Evaluates a batch of expressions, returning the answers in input
    /// order.  Hits are served from the cache; the *distinct* misses are
    /// compiled and handed to the evaluator's batch entry point in one call
    /// (duplicates within the batch are evaluated once), so batch engines
    /// can share visited state or parallelize across the misses.
    pub fn evaluate_many(&self, regexes: &[&Regex]) -> Vec<Arc<QueryAnswer>> {
        let mut results: Vec<Option<Arc<QueryAnswer>>> =
            regexes.iter().map(|regex| self.touch(regex)).collect();
        // Distinct uncached expressions in first-occurrence order, plus the
        // (result slot → distinct miss) assignment.
        let mut first_occurrence: HashMap<&Regex, usize> = HashMap::new();
        let mut distinct: Vec<usize> = Vec::new();
        let mut assignment: Vec<(usize, usize)> = Vec::new();
        for (i, result) in results.iter().enumerate() {
            if result.is_none() {
                let slot = *first_occurrence.entry(regexes[i]).or_insert_with(|| {
                    distinct.push(i);
                    distinct.len() - 1
                });
                assignment.push((i, slot));
            }
        }
        if !distinct.is_empty() {
            let dfas: Vec<Dfa> = distinct
                .iter()
                .map(|&i| Dfa::from_regex(regexes[i]))
                .collect();
            let outcomes = {
                let dfa_refs: Vec<&Dfa> = dfas.iter().collect();
                let span = self.eval_latency.start_timer();
                let outcomes = self.evaluator.evaluate_dfas_captured(&dfa_refs);
                span.stop();
                outcomes
            };
            let mut answers: Vec<Arc<QueryAnswer>> = Vec::with_capacity(outcomes.len());
            for ((&i, dfa), (answer, resume)) in distinct.iter().zip(dfas).zip(outcomes) {
                let answer = Arc::new(answer);
                self.insert(regexes[i], &answer, dfa, resume);
                answers.push(answer);
            }
            for (i, slot) in assignment {
                results[i] = Some(Arc::clone(&answers[slot]));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("all filled"))
            .collect()
    }

    /// Looks up `regex`, refreshing its recency on a hit.  Hits stay on the
    /// shared read lock.
    fn touch(&self, regex: &Regex) -> Option<Arc<QueryAnswer>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let answers = self.answers.read();
        if let Some(entry) = answers.get(regex) {
            entry.last_used.store(tick, Ordering::Relaxed);
            self.hits.inc();
            Some(Arc::clone(&entry.answer))
        } else {
            self.misses.inc();
            None
        }
    }

    /// Inserts an answer (with the automaton it came from and, when captured,
    /// its resumable fixed point), evicting the least-recently-used entry
    /// when full.
    fn insert(
        &self,
        regex: &Regex,
        answer: &Arc<QueryAnswer>,
        dfa: Dfa,
        resume: Option<EvalResume>,
    ) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut answers = self.answers.write();
        if !answers.contains_key(regex) && answers.len() >= self.capacity {
            if let Some(oldest) = answers
                .iter()
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(regex, _)| regex.clone())
            {
                answers.remove(&oldest);
                self.evictions.inc();
            }
        }
        answers.entry(regex.clone()).or_insert_with(|| Entry {
            answer: Arc::clone(answer),
            alphabet: dfa.used_alphabet(),
            nullable: dfa.is_accepting(dfa.start()),
            dfa: Arc::new(dfa),
            resume: resume.map(Arc::new),
            last_used: AtomicU64::new(tick),
        });
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.answers.read().len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters, useful in benchmarks.
    ///
    /// Deprecated in favor of the registry snapshot path
    /// (`gps_rpq_cache_hits_total` / `gps_rpq_cache_misses_total` in
    /// [`MetricsRegistry::snapshot`]); kept as a thin read of the same
    /// counters.  Note that under [`with_metrics`](Self::with_metrics) the
    /// counters are shared registry-wide, not per-cache.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of entries evicted by the capacity cap so far.
    ///
    /// Deprecated like [`stats`](Self::stats) — prefer
    /// `gps_rpq_cache_evictions_total` from the registry snapshot.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Clears all cached answers (the counters are kept).
    pub fn clear(&self) {
        self.answers.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        g
    }

    #[test]
    fn caches_repeated_evaluations() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        let q = Regex::symbol(x);
        assert!(cache.is_empty());
        let a1 = cache.evaluate(&q);
        let a2 = cache.evaluate(&q);
        assert_eq!(a1.nodes(), a2.nodes());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_queries_get_distinct_entries() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        cache.evaluate(&Regex::symbol(x));
        cache.evaluate(&Regex::star(Regex::symbol(x)));
        assert_eq!(cache.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2);
    }

    #[test]
    fn answers_are_correct_through_the_cache() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        let answer = cache.evaluate(&Regex::symbol(x));
        assert!(answer.contains(g.node_by_name("A").unwrap()));
        assert!(!answer.contains(g.node_by_name("B").unwrap()));
    }

    #[test]
    fn clear_empties_the_cache() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        cache.evaluate(&Regex::symbol(x));
        cache.clear();
        assert!(cache.is_empty());
        // Re-evaluation after clear is a miss again.
        cache.evaluate(&Regex::symbol(x));
        assert_eq!(cache.stats().1, 2);
    }

    #[test]
    fn capacity_cap_evicts_least_recently_used() {
        let g = sample();
        let cache = EvalCache::new(&g).with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let x = g.label_id("x").unwrap();
        let q1 = Regex::symbol(x);
        let q2 = Regex::star(Regex::symbol(x));
        let q3 = Regex::concat([Regex::symbol(x), Regex::symbol(x)]);
        cache.evaluate(&q1);
        cache.evaluate(&q2);
        assert_eq!(cache.len(), 2);
        // Touch q1 so q2 becomes the least recently used, then overflow.
        cache.evaluate(&q1);
        cache.evaluate(&q3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // q1 and q3 are still cached (hits); q2 was evicted (miss again).
        let hits_before = cache.stats().0;
        cache.evaluate(&q1);
        cache.evaluate(&q3);
        assert_eq!(cache.stats().0, hits_before + 2);
        let misses_before = cache.stats().1;
        cache.evaluate(&q2);
        assert_eq!(cache.stats().1, misses_before + 1, "q2 was evicted");
    }

    #[test]
    fn workload_replay_stays_within_capacity() {
        let g = sample();
        let cache = EvalCache::new(&g).with_capacity(4);
        let x = g.label_id("x").unwrap();
        for round in 0..3 {
            for i in 1..=16usize {
                let word = vec![x; i];
                cache.evaluate(&Regex::word(&word));
            }
            assert!(cache.len() <= 4, "round {round}: len {}", cache.len());
        }
        assert!(cache.evictions() >= 12 * 3);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let g = sample();
        let cache = EvalCache::new(&g).with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        let x = g.label_id("x").unwrap();
        cache.evaluate(&Regex::symbol(x));
        cache.evaluate(&Regex::star(Regex::symbol(x)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evaluate_many_mixes_hits_and_misses() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        let q1 = Regex::symbol(x);
        let q2 = Regex::star(Regex::symbol(x));
        cache.evaluate(&q1);
        let answers = cache.evaluate_many(&[&q1, &q2, &q1]);
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0].nodes(), answers[2].nodes());
        assert!(
            answers[1].contains(g.node_by_name("B").unwrap()),
            "x* selects B"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evaluate_many_deduplicates_misses() {
        /// Counts how many DFAs it is actually asked to evaluate.
        #[derive(Debug)]
        struct Counting {
            inner: NaiveEvaluator,
            evaluated: std::sync::atomic::AtomicUsize,
        }
        impl DfaEvaluator for Counting {
            fn evaluate_dfa(&self, dfa: &Dfa) -> QueryAnswer {
                self.evaluated
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.evaluate_dfa(dfa)
            }

            fn witness(&self, dfa: &Dfa, node: NodeId) -> Option<Path> {
                self.inner.witness(dfa, node)
            }
        }
        let g = sample();
        let csr = gps_graph::CsrGraph::from_graph(&g);
        let counting = Counting {
            inner: NaiveEvaluator::from_csr(csr.clone()),
            evaluated: std::sync::atomic::AtomicUsize::new(0),
        };
        let cache = EvalCache::with_evaluator(csr, Box::new(counting));
        let x = g.label_id("x").unwrap();
        let q1 = Regex::symbol(x);
        let q2 = Regex::star(Regex::symbol(x));
        let answers = cache.evaluate_many(&[&q1, &q2, &q1, &q1]);
        assert_eq!(answers.len(), 4);
        assert_eq!(answers[0].nodes(), answers[2].nodes());
        // q1 appears three times uncached but is evaluated once.
        let counting = cache.evaluator();
        let debug = format!("{counting:?}");
        assert!(debug.contains("evaluated: 2"), "got {debug}");
    }

    #[test]
    fn bounded_words_match_direct_enumeration() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let words = cache.bounded_words(3);
        let counts = cache.bounded_word_counts(3);
        for node in g.nodes() {
            let direct: Vec<Word> = PathEnumerator::new(3)
                .words_from(&g, node)
                .into_iter()
                .collect();
            assert_eq!(words[node.index()], direct);
            assert_eq!(counts[node.index()], direct.len());
        }
    }

    #[test]
    fn words_capacity_evicts_least_recently_used_bound() {
        let g = sample();
        let cache = EvalCache::new(&g).with_words_capacity(2);
        assert_eq!(cache.words_capacity(), 2);
        cache.bounded_words(1);
        cache.bounded_words(2);
        assert_eq!(cache.words_len(), 2);
        // Touch bound 1 so bound 2 is the least recently used, then overflow.
        cache.bounded_words(1);
        cache.bounded_words(3);
        assert_eq!(cache.words_len(), 2);
        assert_eq!(cache.word_evictions(), 1);
        // Bounds 1 and 3 survive (same shared allocation on re-request);
        // bound 2 was evicted and is recomputed to identical content.
        let w1 = cache.bounded_words(1);
        assert!(Arc::ptr_eq(&w1, &cache.bounded_words(1)));
        let w2 = cache.bounded_words(2);
        assert_eq!(cache.word_evictions(), 2, "bound 3 evicted in turn");
        let direct: Vec<Word> = PathEnumerator::new(2)
            .words_from(&g, g.node_by_name("A").unwrap())
            .into_iter()
            .collect();
        assert_eq!(w2[g.node_by_name("A").unwrap().index()], direct);
    }

    #[test]
    fn words_and_counts_evict_together() {
        let g = sample();
        let cache = EvalCache::new(&g).with_words_capacity(1);
        let counts1 = cache.bounded_word_counts(1);
        cache.bounded_words(2);
        assert_eq!(cache.words_len(), 1);
        assert_eq!(cache.word_evictions(), 1);
        // The bound-1 counts were evicted with their words; re-requesting
        // recomputes identical content in a fresh allocation.
        let counts1_again = cache.bounded_word_counts(1);
        assert_eq!(*counts1, *counts1_again);
        assert!(!Arc::ptr_eq(&counts1, &counts1_again));
    }

    #[test]
    fn words_capacity_is_at_least_one() {
        let g = sample();
        let cache = EvalCache::new(&g).with_words_capacity(0);
        assert_eq!(cache.words_capacity(), 1);
        cache.bounded_words(1);
        cache.bounded_words(2);
        assert_eq!(cache.words_len(), 1);
    }

    #[test]
    fn repeated_bounds_stay_within_words_capacity() {
        let g = sample();
        let cache = EvalCache::new(&g).with_words_capacity(2);
        for round in 0..3 {
            for bound in 1..=6usize {
                cache.bounded_words(bound);
                cache.bounded_word_counts(bound);
                assert!(
                    cache.words_len() <= 2,
                    "round {round}, bound {bound}: {} snapshots",
                    cache.words_len()
                );
            }
        }
        assert!(cache.word_evictions() >= 12);
    }

    #[test]
    fn retire_drops_every_entry_but_stays_functional() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        cache.evaluate(&Regex::symbol(x));
        cache.bounded_words(2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.words_len(), 1);
        assert!(!cache.is_retired());
        cache.retire();
        assert!(cache.is_retired());
        assert!(cache.is_empty());
        assert_eq!(cache.words_len(), 0);
        // A straggling handle recomputes deterministically.
        let answer = cache.evaluate(&Regex::symbol(x));
        assert!(answer.contains(g.node_by_name("A").unwrap()));
    }

    #[test]
    fn epoch_tracks_the_snapshot() {
        let g = sample();
        let cache = EvalCache::new(&g);
        assert_eq!(cache.epoch(), 0);
        let stamped = CsrGraph::from_graph(&g).with_epoch(7);
        let cache = EvalCache::from_csr(stamped);
        assert_eq!(cache.epoch(), 7);
    }

    /// A chain v0 -x-> v1 -x-> … -x-> v4 long enough that the head is
    /// untouched (at small bounds) by an update at the tail.
    #[test]
    fn inherit_words_matches_cold_enumeration() {
        use gps_graph::DeltaGraph;

        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..5).map(|i| g.add_node(format!("v{i}"))).collect();
        for window in nodes.windows(2) {
            g.add_edge_by_name(window[0], "x", window[1]);
        }
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old_cache = EvalCache::from_csr((*base).clone());
        let old_w2 = old_cache.bounded_words(2);
        let old_w4 = old_cache.bounded_words(4);

        // Change both ends: drop the first hop, append w after the tail.
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let w = delta.add_node("w");
        let z = delta.label("z");
        delta.add_edge(nodes[4], z, w);
        let x = delta.labels().get("x").unwrap();
        assert!(delta.remove_edge(nodes[0], x, nodes[1]));
        let summary = delta.delta();
        let compacted = delta.compact();

        let new_cache = EvalCache::from_csr(compacted.clone());
        new_cache.inherit_words(&old_cache, &summary);
        assert_eq!(new_cache.words_len(), 2, "both bounds inherited");
        let cold = EvalCache::from_csr(compacted);
        for bound in [2usize, 4] {
            let inherited = new_cache.bounded_words(bound);
            let direct = cold.bounded_words(bound);
            assert_eq!(*inherited, *direct, "bound {bound}");
            assert_eq!(
                *new_cache.bounded_word_counts(bound),
                *cold.bounded_word_counts(bound),
                "bound {bound}"
            );
        }
        // v1 is 3 reverse steps from the nearest changed source (v4) and
        // unreachable from v0's removal, so its bound-2 words carried over…
        assert_eq!(
            new_cache.bounded_words(2)[nodes[1].index()],
            old_w2[nodes[1].index()]
        );
        // …while at bound 4 the appended tail edge reaches it.
        assert_ne!(
            new_cache.bounded_words(4)[nodes[1].index()],
            old_w4[nodes[1].index()]
        );
        // The changed nodes themselves were recomputed on the new snapshot.
        assert!(new_cache.bounded_words(2)[nodes[0].index()].is_empty());
        assert!(new_cache.bounded_words(2)[w.index()].is_empty());
    }

    #[test]
    fn inherit_words_respects_the_capacity_cap() {
        let g = sample();
        let old_cache = EvalCache::new(&g);
        for bound in 1..=4usize {
            old_cache.bounded_words(bound);
        }
        let new_cache = EvalCache::new(&g).with_words_capacity(2);
        new_cache.inherit_words(&old_cache, &GraphDelta::default());
        assert!(new_cache.words_len() <= 2);
    }

    #[test]
    fn migrate_answers_carries_label_disjoint_entries() {
        use gps_graph::DeltaGraph;

        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old_cache = EvalCache::from_csr((*base).clone());
        let x = g.label_id("x").unwrap();
        let q = Regex::symbol(x);
        let star = Regex::star(Regex::symbol(x));
        old_cache.evaluate(&q);
        old_cache.evaluate(&star);

        // Publish an epoch that only touches a fresh label `z`.
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let w = delta.add_node("W");
        let z = delta.label("z");
        delta.add_edge(b, z, w);
        let summary = delta.delta();
        let compacted = delta.compact();

        let new_cache = EvalCache::from_csr(compacted.clone());
        let report = new_cache.migrate_answers(&old_cache, &summary);
        assert_eq!(
            report,
            MigrationReport {
                carried: 2,
                ..MigrationReport::default()
            }
        );
        assert_eq!(new_cache.len(), 2);

        // Both lookups are hits — the migrated answers serve without any
        // re-evaluation — and match a cold evaluation on the new snapshot.
        let migrated = new_cache.evaluate(&q);
        assert_eq!(new_cache.stats(), (1, 0));
        let migrated_star = new_cache.evaluate(&star);
        assert!(migrated.contains(a));
        assert!(!migrated.contains(w), "`x` is not nullable: W unselected");
        assert!(migrated_star.contains(w), "`x*` is nullable: W selected");
        let cold = EvalCache::from_csr(compacted);
        assert_eq!(migrated.flags(), cold.evaluate(&q).flags());
        assert_eq!(migrated_star.flags(), cold.evaluate(&star).flags());
    }

    #[test]
    fn migrate_answers_shares_answers_when_no_nodes_were_added() {
        use gps_graph::DeltaGraph;

        let g = sample();
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old_cache = EvalCache::from_csr((*base).clone());
        let x = g.label_id("x").unwrap();
        let q = Regex::symbol(x);
        let old_answer = old_cache.evaluate(&q);

        // A disjoint-label edge between existing nodes: no node growth.
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let z = delta.label("z");
        delta.add_edge(
            g.node_by_name("B").unwrap(),
            z,
            g.node_by_name("A").unwrap(),
        );
        let summary = delta.delta();
        let new_cache = EvalCache::from_csr(delta.compact());

        let report = new_cache.migrate_answers(&old_cache, &summary);
        assert_eq!(report.carried, 1);
        let migrated = new_cache.evaluate(&q);
        assert!(
            Arc::ptr_eq(&old_answer, &migrated),
            "same node count: the answer allocation is shared, not copied"
        );
    }

    #[test]
    fn migrate_answers_drops_touched_entries_without_a_seed() {
        use gps_graph::DeltaGraph;

        let g = sample();
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old_cache = EvalCache::from_csr((*base).clone());
        let x = g.label_id("x").unwrap();
        let q = Regex::symbol(x);
        old_cache.evaluate(&q);

        // Remove the only x-edge: the entry is touched, and the naive
        // evaluator captures no seed to resume from.
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        assert!(delta.remove_edge(
            g.node_by_name("A").unwrap(),
            x,
            g.node_by_name("B").unwrap()
        ));
        let summary = delta.delta();
        let new_cache = EvalCache::from_csr(delta.compact());

        let report = new_cache.migrate_answers(&old_cache, &summary);
        assert_eq!(
            report,
            MigrationReport {
                recomputed: 1,
                fallback_no_seed: 1,
                ..MigrationReport::default()
            }
        );
        assert!(new_cache.is_empty(), "touched entry dropped, not carried");
        // The cold recompute on next use is correct for the new graph.
        let recomputed = new_cache.evaluate(&q);
        assert!(!recomputed.contains(g.node_by_name("A").unwrap()));
    }

    #[test]
    fn migrate_answers_attributes_capacity_overflow_to_eviction() {
        use gps_graph::DeltaGraph;

        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old_cache = EvalCache::from_csr((*base).clone());
        let x = g.label_id("x").unwrap();
        for regex in [
            Regex::symbol(x),
            Regex::star(Regex::symbol(x)),
            Regex::concat([Regex::symbol(x), Regex::symbol(x)]),
        ] {
            old_cache.evaluate(&regex);
        }

        // A label-disjoint delta would carry all three, but the new cache
        // only holds two: the coldest entry is attributed to eviction.
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let w = delta.add_node("W");
        let z = delta.label("z");
        delta.add_edge(b, z, w);
        let summary = delta.delta();

        let new_cache = EvalCache::from_csr(delta.compact()).with_capacity(2);
        let report = new_cache.migrate_answers(&old_cache, &summary);
        assert_eq!(
            report,
            MigrationReport {
                carried: 2,
                recomputed: 1,
                fallback_evicted: 1,
                ..MigrationReport::default()
            }
        );
        assert_eq!(new_cache.len(), 2);
    }

    #[test]
    fn inherit_words_short_circuits_to_shared_snapshots() {
        let g = sample();
        let old_cache = EvalCache::new(&g);
        let w2 = old_cache.bounded_words(2);
        let c2 = old_cache.bounded_word_counts(2);
        let new_cache = EvalCache::new(&g);
        new_cache.inherit_words(&old_cache, &GraphDelta::default());
        assert!(
            Arc::ptr_eq(&w2, &new_cache.bounded_words(2)),
            "an irrelevant delta carries the snapshot allocation verbatim"
        );
        assert!(Arc::ptr_eq(&c2, &new_cache.bounded_word_counts(2)));
    }

    #[test]
    fn inherit_words_extends_snapshots_over_added_nodes() {
        use gps_graph::DeltaGraph;

        let g = sample();
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old_cache = EvalCache::from_csr((*base).clone());
        let old_words = old_cache.bounded_words(2);

        // A node-only delta adds no edge and touches no label.
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let w = delta.add_node("W");
        let summary = delta.delta();
        let compacted = delta.compact();
        let new_cache = EvalCache::from_csr(compacted.clone());
        new_cache.inherit_words(&old_cache, &summary);

        let inherited = new_cache.bounded_words(2);
        assert_eq!(inherited.len(), 3);
        assert_eq!(inherited[..2], old_words[..]);
        assert!(
            inherited[w.index()].is_empty(),
            "isolated node spells nothing"
        );
        let cold = EvalCache::from_csr(compacted);
        assert_eq!(*inherited, *cold.bounded_words(2));
        assert_eq!(
            *new_cache.bounded_word_counts(2),
            *cold.bounded_word_counts(2)
        );
    }

    #[test]
    fn shared_across_threads() {
        let g = sample();
        let cache = std::sync::Arc::new(EvalCache::new(&g));
        let x = g.label_id("x").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let q = Regex::symbol(x);
                std::thread::spawn(move || cache.evaluate(&q).len())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 1);
        }
        assert_eq!(cache.len(), 1);
    }
}
