//! Memoization of query evaluations.
//!
//! During an interactive session the same candidate queries are evaluated
//! repeatedly against the same (immutable) graph — after every interaction
//! the learner re-checks consistency and the halt condition re-evaluates the
//! current hypothesis.  [`EvalCache`] memoizes answers keyed by the query's
//! regular expression, behind a lock so strategy evaluation can be
//! parallelized by the benchmark harness.

use crate::eval::{evaluate_csr, QueryAnswer};
use gps_automata::{Dfa, Regex};
use gps_graph::{CsrGraph, GraphBackend};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A concurrent evaluation cache bound to one graph snapshot.
#[derive(Debug)]
pub struct EvalCache {
    csr: CsrGraph,
    answers: RwLock<HashMap<Regex, Arc<QueryAnswer>>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl EvalCache {
    /// Creates a cache for any backend (snapshotting it).
    pub fn new<B: GraphBackend>(graph: &B) -> Self {
        Self::from_csr(CsrGraph::from_backend(graph))
    }

    /// Creates a cache from an existing CSR snapshot.
    pub fn from_csr(csr: CsrGraph) -> Self {
        Self {
            csr,
            answers: RwLock::new(HashMap::new()),
            hits: RwLock::new(0),
            misses: RwLock::new(0),
        }
    }

    /// The underlying snapshot.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Evaluates `regex` on the snapshot, returning a shared answer.  Repeated
    /// calls with an equal expression hit the cache.
    pub fn evaluate(&self, regex: &Regex) -> Arc<QueryAnswer> {
        if let Some(answer) = self.answers.read().get(regex) {
            *self.hits.write() += 1;
            return Arc::clone(answer);
        }
        *self.misses.write() += 1;
        let dfa = Dfa::from_regex(regex);
        let answer = Arc::new(evaluate_csr(&self.csr, &dfa));
        self.answers
            .write()
            .entry(regex.clone())
            .or_insert_with(|| Arc::clone(&answer));
        answer
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.answers.read().len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters, useful in benchmarks.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Clears all cached answers (the counters are kept).
    pub fn clear(&self) {
        self.answers.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        g
    }

    #[test]
    fn caches_repeated_evaluations() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        let q = Regex::symbol(x);
        assert!(cache.is_empty());
        let a1 = cache.evaluate(&q);
        let a2 = cache.evaluate(&q);
        assert_eq!(a1.nodes(), a2.nodes());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_queries_get_distinct_entries() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        cache.evaluate(&Regex::symbol(x));
        cache.evaluate(&Regex::star(Regex::symbol(x)));
        assert_eq!(cache.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2);
    }

    #[test]
    fn answers_are_correct_through_the_cache() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        let answer = cache.evaluate(&Regex::symbol(x));
        assert!(answer.contains(g.node_by_name("A").unwrap()));
        assert!(!answer.contains(g.node_by_name("B").unwrap()));
    }

    #[test]
    fn clear_empties_the_cache() {
        let g = sample();
        let cache = EvalCache::new(&g);
        let x = g.label_id("x").unwrap();
        cache.evaluate(&Regex::symbol(x));
        cache.clear();
        assert!(cache.is_empty());
        // Re-evaluation after clear is a miss again.
        cache.evaluate(&Regex::symbol(x));
        assert_eq!(cache.stats().1, 2);
    }

    #[test]
    fn shared_across_threads() {
        let g = sample();
        let cache = std::sync::Arc::new(EvalCache::new(&g));
        let x = g.label_id("x").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let q = Regex::symbol(x);
                std::thread::spawn(move || cache.evaluate(&q).len())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 1);
        }
        assert_eq!(cache.len(), 1);
    }
}
