//! # gps-rpq — regular path query evaluation
//!
//! A *path query* selects the nodes of an edge-labeled graph that have at
//! least one outgoing path spelling a word of a regular language (the
//! semantics of the GPS paper).  This crate evaluates such queries:
//!
//! * [`PathQuery`] — a compiled query: the regular expression plus its
//!   minimal DFA;
//! * [`eval`] — the product-graph evaluator computing the set of selected
//!   nodes (and per-node checks);
//! * [`witness`] — extraction of a shortest witness path for a selected
//!   node, used by the interactive layer when it proposes a candidate path;
//! * [`coverage`] — the "covered by a negative example" test that drives the
//!   paper's notion of informative nodes;
//! * [`cache`] — a concurrent memoization layer for repeated evaluations of
//!   the same query during an interactive session;
//! * [`handle`] — a cheaply cloneable [`EvalHandle`] bundling the cache and
//!   its evaluator, threaded through sessions, learner and pruning so the
//!   whole interactive loop shares one evaluation stack.
//!
//! ## Example
//!
//! ```
//! use gps_graph::Graph;
//! use gps_automata::parser;
//! use gps_rpq::PathQuery;
//!
//! let mut g = Graph::new();
//! let n1 = g.add_node("N1");
//! let n4 = g.add_node("N4");
//! let c1 = g.add_node("C1");
//! g.add_edge_by_name(n1, "tram", n4);
//! g.add_edge_by_name(n4, "cinema", c1);
//!
//! let q = PathQuery::parse("tram*.cinema", g.labels()).unwrap();
//! let answer = q.evaluate(&g);
//! assert!(answer.contains(n1));
//! assert!(answer.contains(n4));
//! assert!(!answer.contains(c1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coverage;
pub mod eval;
pub mod handle;
pub mod query;
pub mod witness;

pub use cache::{EvalCache, MigrationReport};
pub use coverage::NegativeCoverage;
pub use eval::{DfaEvaluator, EvalResume, NaiveEvaluator, QueryAnswer};
pub use handle::EvalHandle;
pub use query::PathQuery;
