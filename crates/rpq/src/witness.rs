//! Witness-path extraction.
//!
//! When a node is selected by a query, the interactive layer needs a concrete
//! path demonstrating it — the paper's "relevant path" that is shown to the
//! user for validation.  [`shortest_witness`] performs a forward BFS over the
//! product of the graph with the query DFA and reconstructs a shortest
//! accepting path.

use gps_automata::Dfa;
use gps_graph::{GraphBackend, NodeId, Path};
use std::collections::{HashMap, VecDeque};

/// A `(graph node, DFA state)` configuration of the product search.
type Config = (NodeId, usize);

/// Parent links of the product BFS: configuration → (parent, edge label).
type ParentMap = HashMap<Config, (Config, gps_graph::LabelId)>;

/// Returns a shortest path starting at `node` whose word is accepted by
/// `dfa`, or `None` when no such path exists (the node is not selected).
pub fn shortest_witness<B: GraphBackend>(graph: &B, dfa: &Dfa, node: NodeId) -> Option<Path> {
    witness_within(graph, dfa, node, usize::MAX)
}

/// Like [`shortest_witness`] but only considers paths of length at most
/// `max_length` edges.
pub fn witness_within<B: GraphBackend>(
    graph: &B,
    dfa: &Dfa,
    node: NodeId,
    max_length: usize,
) -> Option<Path> {
    let start_config = (node, dfa.start());
    if dfa.is_accepting(dfa.start()) {
        return Some(Path::empty(node));
    }
    // BFS over (graph node, DFA state) configurations, remembering the parent
    // configuration and the edge taken so the path can be reconstructed.
    let mut parents: ParentMap = HashMap::new();
    let mut depth: HashMap<Config, usize> = HashMap::new();
    let mut queue = VecDeque::new();
    depth.insert(start_config, 0);
    queue.push_back(start_config);

    while let Some(config) = queue.pop_front() {
        let d = depth[&config];
        if d >= max_length {
            continue;
        }
        let (current_node, current_state) = config;
        for (label, target_node) in graph.successors(current_node) {
            if let Some(target_state) = dfa.step(current_state, label) {
                let next = (target_node, target_state);
                if depth.contains_key(&next) {
                    continue;
                }
                depth.insert(next, d + 1);
                parents.insert(next, (config, label));
                if dfa.is_accepting(target_state) {
                    return Some(reconstruct(node, next, &parents));
                }
                queue.push_back(next);
            }
        }
    }
    None
}

fn reconstruct(start: NodeId, accepting: Config, parents: &ParentMap) -> Path {
    let mut labels = Vec::new();
    let mut nodes = vec![accepting.0];
    let mut current = accepting;
    while let Some(&(parent, label)) = parents.get(&current) {
        labels.push(label);
        nodes.push(parent.0);
        current = parent;
    }
    labels.reverse();
    nodes.reverse();
    Path {
        start,
        word: labels,
        nodes,
    }
}

/// Returns one shortest witness per selected node, in node-id order.  Nodes
/// that are not selected are omitted.
pub fn all_witnesses<B: GraphBackend>(graph: &B, dfa: &Dfa) -> Vec<Path> {
    graph
        .nodes()
        .filter_map(|node| shortest_witness(graph, dfa, node))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::Graph;

    fn chain() -> Graph {
        // N2 -bus-> N1 -tram-> N4 -cinema-> C1, plus N2 -restaurant-> R1.
        let mut g = Graph::new();
        let n2 = g.add_node("N2");
        let n1 = g.add_node("N1");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        let r1 = g.add_node("R1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g.add_edge_by_name(n2, "restaurant", r1);
        g
    }

    fn motivating(g: &Graph) -> Dfa {
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
            Regex::symbol(cinema),
        ]))
    }

    #[test]
    fn witness_is_shortest_and_accepted() {
        let g = chain();
        let dfa = motivating(&g);
        let n2 = g.node_by_name("N2").unwrap();
        let path = shortest_witness(&g, &dfa, n2).unwrap();
        assert_eq!(path.start, n2);
        assert_eq!(path.len(), 3, "bus·tram·cinema is the shortest witness");
        assert!(dfa.accepts(&path.word));
        assert_eq!(path.render_word(&g), "bus·tram·cinema");
        assert_eq!(path.nodes.len(), 4);
        assert_eq!(path.nodes[0], n2);
    }

    #[test]
    fn unselected_node_has_no_witness() {
        let g = chain();
        let dfa = motivating(&g);
        let c1 = g.node_by_name("C1").unwrap();
        let r1 = g.node_by_name("R1").unwrap();
        assert!(shortest_witness(&g, &dfa, c1).is_none());
        assert!(shortest_witness(&g, &dfa, r1).is_none());
    }

    #[test]
    fn nullable_query_gives_empty_witness() {
        let g = chain();
        let tram = g.label_id("tram").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(tram)));
        let c1 = g.node_by_name("C1").unwrap();
        let path = shortest_witness(&g, &dfa, c1).unwrap();
        assert!(path.is_empty());
    }

    #[test]
    fn bounded_witness_respects_the_limit() {
        let g = chain();
        let dfa = motivating(&g);
        let n2 = g.node_by_name("N2").unwrap();
        assert!(witness_within(&g, &dfa, n2, 2).is_none());
        assert!(witness_within(&g, &dfa, n2, 3).is_some());
        let n4 = g.node_by_name("N4").unwrap();
        assert!(witness_within(&g, &dfa, n4, 1).is_some());
    }

    #[test]
    fn all_witnesses_covers_exactly_the_answer() {
        let g = chain();
        let dfa = motivating(&g);
        let witnesses = all_witnesses(&g, &dfa);
        let starts: Vec<NodeId> = witnesses.iter().map(|p| p.start).collect();
        assert_eq!(
            starts,
            vec![
                g.node_by_name("N2").unwrap(),
                g.node_by_name("N1").unwrap(),
                g.node_by_name("N4").unwrap()
            ]
        );
        for w in &witnesses {
            assert!(dfa.accepts(&w.word));
        }
    }

    #[test]
    fn witness_on_cyclic_graph_terminates() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", a);
        let x = g.label_id("x").unwrap();
        // Query x·x·x·x·x — witness loops around the cycle.
        let dfa = Dfa::from_regex(&Regex::word(&[x; 5]));
        let path = shortest_witness(&g, &dfa, a).unwrap();
        assert_eq!(path.len(), 5);
        assert!(dfa.accepts(&path.word));
        // Query with no accepted word from this graph: label y is absent.
        let mut g2 = g.clone();
        let y = g2.label("y");
        let dfa2 = Dfa::from_regex(&Regex::symbol(y));
        assert!(shortest_witness(&g2, &dfa2, a).is_none());
    }
}
