//! Product-graph evaluation of path queries.
//!
//! A node `v` is selected by query `q` iff, in the product of the graph with
//! the query DFA, the configuration `(v, start)` can reach some configuration
//! `(u, f)` with `f` accepting.  The evaluator computes the set of *all*
//! configurations that can reach an accepting configuration by a backward
//! fixed point (one pass over the product, independent of the number of
//! start nodes), then reads off the answer for every node at once.

use gps_automata::Dfa;
use gps_graph::{CsrGraph, GraphBackend, GraphDelta, LabelId, NodeId, Path, PrefixTree, Word};
use std::collections::{BTreeMap, VecDeque};

/// The set of nodes selected by a query on a graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryAnswer {
    selected: Vec<bool>,
}

impl QueryAnswer {
    /// Builds an answer from a per-node membership vector.
    pub fn from_flags(selected: Vec<bool>) -> Self {
        Self { selected }
    }

    /// Returns `true` when `node` is selected.
    pub fn contains(&self, node: NodeId) -> bool {
        self.selected.get(node.index()).copied().unwrap_or(false)
    }

    /// The selected nodes in ascending id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.selected
            .iter()
            .enumerate()
            .filter_map(|(i, &sel)| sel.then_some(i).map(NodeId::from))
            .collect()
    }

    /// Number of selected nodes.
    pub fn len(&self) -> usize {
        self.selected.iter().filter(|&&sel| sel).count()
    }

    /// Returns `true` when no node is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the selected nodes to their display names.
    pub fn node_names<'g, B: GraphBackend>(&self, graph: &'g B) -> Vec<&'g str> {
        self.nodes()
            .into_iter()
            .map(|n| graph.node_name(n))
            .collect()
    }

    /// The underlying per-node membership flags (indexed by node id).
    pub fn flags(&self) -> &[bool] {
        &self.selected
    }
}

/// A portable snapshot of a *completed* product fixed point: for every DFA
/// state, the packed bit-words of its alive-node set (one bit per node, 64
/// nodes per word, little-endian within each word), plus a per-state
/// **support** array — for each configuration `(node, state)`, the number of
/// distinct edge-derivations it has (one per `(DFA transition, graph edge)`
/// pair whose target configuration is alive), saturated at 255.
///
/// An answer cache stores one of these next to each answer so that after a
/// [`GraphDelta`] the fixed point can be re-entered from the old alive sets
/// instead of from zero: insert-only deltas resume monotonically, and deltas
/// with removals run a DRed-style over-delete/re-derive sweep that uses the
/// support counts to find the still-derivable boundary.  The snapshot is only
/// a valid seed when it describes a true fixed point of the old graph —
/// evaluators that early-exit once the start state saturates must not capture
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResume {
    nodes: usize,
    states: Vec<Vec<u64>>,
    supports: Vec<Vec<u8>>,
}

impl EvalResume {
    /// Packs a captured fixed point: `states[q]` holds the bit-words of DFA
    /// state `q`'s alive set over a universe of `nodes` nodes, and
    /// `supports[q][v]` the saturating derivation count of configuration
    /// `(v, q)` (0 for dead configurations).
    pub fn new(nodes: usize, states: Vec<Vec<u64>>, supports: Vec<Vec<u8>>) -> Self {
        debug_assert_eq!(states.len(), supports.len());
        debug_assert!(supports.iter().all(|sup| sup.len() == nodes));
        Self {
            nodes,
            states,
            supports,
        }
    }

    /// The node count of the graph the fixed point was computed on.  A later
    /// epoch may have more nodes; bits for nodes `>= nodes()` are implied by
    /// the DFA alone (accepting states are alive everywhere).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of DFA states captured.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The packed alive-set words of DFA state `state`.
    pub fn state_words(&self, state: usize) -> &[u64] {
        &self.states[state]
    }

    /// The per-node saturating derivation counts of DFA state `state`
    /// (indexed by node, `min(true support, 255)`; 0 for dead
    /// configurations).
    pub fn state_supports(&self, state: usize) -> &[u8] {
        &self.supports[state]
    }
}

/// Evaluates a query DFA on any graph backend.
///
/// The product fixed point iterates the backend's reverse adjacency
/// directly; the generic parameter is monomorphized, so evaluation over a
/// [`CsrGraph`] compiles to the same contiguous-slice scans as the previous
/// hand-specialized CSR evaluator, while the mutable [`gps_graph::Graph`]
/// backend works without an up-front snapshot.
pub fn evaluate<B: GraphBackend>(graph: &B, dfa: &Dfa) -> QueryAnswer {
    let n = GraphBackend::node_count(graph);
    let s = dfa.state_count();
    if n == 0 || s == 0 {
        return QueryAnswer::from_flags(vec![false; n]);
    }

    // Reverse DFA transitions: for each target state, the (label, source)
    // pairs that lead into it.
    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
        }
    }

    // `alive[node][state]` ⇔ configuration (node, state) can reach an
    // accepting configuration.  Flattened to a single vector.
    let idx = |node: usize, state: usize| node * s + state;
    let mut alive = vec![false; n * s];
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();

    // Seed: every configuration whose DFA state is accepting.
    for state in 0..s {
        if dfa.is_accepting(state) {
            for node in 0..n {
                alive[idx(node, state)] = true;
                queue.push_back((node, state));
            }
        }
    }

    // Backward propagation: (w, p) is alive when w --a--> u in the graph,
    // p --a--> q' in the DFA and (u, q') is alive.
    while let Some((node, state)) = queue.pop_front() {
        // Group the reverse DFA transitions into `label -> predecessor
        // states` on the fly; reverse graph edges give predecessor nodes.
        // States with no incoming DFA transition need no graph scan at all.
        let rev_transitions = &rev_dfa[state];
        if rev_transitions.is_empty() {
            continue;
        }
        for (entry_label, entry_node) in graph.predecessors(NodeId::from(node)) {
            for &(label, prev_state) in rev_transitions {
                if label == entry_label {
                    let prev = (entry_node.index(), prev_state);
                    if !alive[idx(prev.0, prev.1)] {
                        alive[idx(prev.0, prev.1)] = true;
                        queue.push_back(prev);
                    }
                }
            }
        }
    }

    let start = dfa.start();
    let selected = (0..n).map(|node| alive[idx(node, start)]).collect();
    QueryAnswer::from_flags(selected)
}

/// Evaluates a query DFA on a CSR snapshot.
///
/// Kept as a named entry point for callers that already hold a snapshot;
/// equivalent to [`evaluate`] at `B = CsrGraph`.
pub fn evaluate_csr(csr: &CsrGraph, dfa: &Dfa) -> QueryAnswer {
    evaluate(csr, dfa)
}

/// Evaluates several query DFAs on the same graph.
///
/// Since [`evaluate`] runs on any backend directly, no intermediate CSR
/// snapshot is built — callers holding a mutable [`gps_graph::Graph`] that
/// want snapshot-speed bulk evaluation should snapshot once themselves and
/// pass the [`CsrGraph`].
pub fn evaluate_many<B: GraphBackend>(graph: &B, dfas: &[&Dfa]) -> Vec<QueryAnswer> {
    dfas.iter().map(|dfa| evaluate(graph, dfa)).collect()
}

/// A compiled-query evaluation strategy bound to one graph.
///
/// The [`EvalCache`](crate::EvalCache) and the `gps-core` engine evaluate
/// queries through this trait, so alternative execution engines — notably the
/// frontier-based batch engine of `gps-exec` — plug in without the query
/// layers changing.  Implementations own (or snapshot) their graph so an
/// evaluator can be handed to worker threads; the trait is object-safe and
/// boxed evaluators are what the cache stores.
pub trait DfaEvaluator: std::fmt::Debug + Send + Sync {
    /// Evaluates one compiled query DFA, returning the selected-node set.
    fn evaluate_dfa(&self, dfa: &Dfa) -> QueryAnswer;

    /// Evaluates a batch of compiled DFAs (answers in input order).
    ///
    /// The default implementation is a sequential loop; batch engines
    /// override it to share visited state or fan out across threads.
    fn evaluate_dfas(&self, dfas: &[&Dfa]) -> Vec<QueryAnswer> {
        dfas.iter().map(|dfa| self.evaluate_dfa(dfa)).collect()
    }

    /// Evaluates one DFA and, when the engine ran the product to a true
    /// fixed point, additionally captures the per-state alive sets as an
    /// [`EvalResume`] seed for later delta-restricted re-derivation.
    ///
    /// The default captures nothing (a plain evaluation); only engines whose
    /// internal state is exactly the product fixed point override this.
    fn evaluate_dfa_captured(&self, dfa: &Dfa) -> (QueryAnswer, Option<EvalResume>) {
        (self.evaluate_dfa(dfa), None)
    }

    /// Batch variant of [`evaluate_dfa_captured`](Self::evaluate_dfa_captured)
    /// (answers in input order).
    fn evaluate_dfas_captured(&self, dfas: &[&Dfa]) -> Vec<(QueryAnswer, Option<EvalResume>)> {
        dfas.iter()
            .map(|dfa| self.evaluate_dfa_captured(dfa))
            .collect()
    }

    /// Re-derives `dfa`'s answer on this evaluator's (post-delta) graph by
    /// resuming the product fixed point from `resume` — the captured alive
    /// sets and support counts of the *pre-delta* evaluation.  Insert-only
    /// deltas expand monotonically from the seed; deltas with removals
    /// additionally run a DRed-style over-delete/re-derive sweep over the
    /// removed edges' derivation cones.
    ///
    /// Returns `None` when the seed does not match the DFA, when a removal's
    /// over-delete cone would exceed the engine's configured fraction of the
    /// alive configuration set (the saturation fallback — a cold recompute
    /// is cheaper at that point), or when the engine has no resumable entry
    /// point (the default).
    fn evaluate_dfa_resumed(
        &self,
        _dfa: &Dfa,
        _resume: &EvalResume,
        _delta: &GraphDelta,
    ) -> Option<(QueryAnswer, EvalResume)> {
        None
    }

    /// Single-node membership: is `node` selected by `dfa`?
    ///
    /// The default computes the full answer; engines with an early-exit
    /// forward search override it.
    fn selects_node(&self, dfa: &Dfa, node: NodeId) -> bool {
        self.evaluate_dfa(dfa).contains(node)
    }

    /// A *shortest* witness path for `node` (a path spelling a word of the
    /// DFA's language), or `None` when the node is not selected.
    ///
    /// Every implementation must return a path of the minimal length, so
    /// callers that only consume the length (the simulated user's zooming
    /// decision) observe identical behavior across engines.
    fn witness(&self, dfa: &Dfa, node: NodeId) -> Option<Path>;

    /// The nodes with at least one outgoing path spelling one of `words`
    /// (ascending id order) — the dirty set incremental session pruning
    /// rescans when those words become covered.
    ///
    /// The default compiles the word set into its prefix-tree acceptor and
    /// evaluates it like any query; engines override it with a direct
    /// trie-shaped backward sweep over their own adjacency, which avoids
    /// materializing a many-state product for what is a finite language.
    fn nodes_spelling(&self, words: &[Word]) -> Vec<NodeId> {
        if words.is_empty() {
            return Vec::new();
        }
        self.evaluate_dfa(&gps_automata::pta::build_pta(words))
            .nodes()
    }

    /// For every node spelling at least one of the (distinct) `words`, the
    /// *number* of those words it spells, as sorted `(node, count)` pairs.
    ///
    /// This is the exact informativeness decrement incremental pruning
    /// applies when `words` become covered: a node's uncovered count drops
    /// by precisely the number of newly covered words it spells.  Engines
    /// override the default (one membership query per word) with a shared
    /// sweep over the reversed-word trie.
    fn spelling_counts(&self, words: &[Word]) -> Vec<(NodeId, u32)> {
        let mut counts: BTreeMap<NodeId, u32> = BTreeMap::new();
        for word in words {
            for node in self.nodes_spelling(std::slice::from_ref(word)) {
                *counts.entry(node).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }
}

/// Reference implementation of [`DfaEvaluator::nodes_spelling`] over any
/// backend: a post-order walk of the word trie computing, per trie node, the
/// graph nodes that can spell some word of its subtree — `R(t) = all` when
/// `t` ends a word, else the union over children `(a, c)` of the
/// `a`-predecessors of `R(c)`.  Memory is one node-set per trie depth.
pub fn nodes_spelling<B: GraphBackend>(graph: &B, words: &[Word]) -> Vec<NodeId> {
    let n = GraphBackend::node_count(graph);
    if n == 0 || words.is_empty() {
        return Vec::new();
    }
    let trie = PrefixTree::from_words(words);
    let reach = spell_reach(graph, &trie, trie.root(), n);
    reach
        .iter()
        .enumerate()
        .filter(|&(_, &reached)| reached)
        .map(|(index, _)| NodeId::from(index))
        .collect()
}

/// Reference implementation of [`DfaEvaluator::spelling_counts`] over any
/// backend: a pre-order walk of the trie of the **reversed** words.  The set
/// of spellers of a word `w = a₁…a_k` is `pred_{a₁}(…pred_{a_k}(V)…)` —
/// consumed suffix-first, so reversed words share their sweeps through the
/// trie — and every terminal's speller set bumps its nodes' counts by one.
pub fn spelling_counts<B: GraphBackend>(graph: &B, words: &[Word]) -> Vec<(NodeId, u32)> {
    let n = GraphBackend::node_count(graph);
    if n == 0 || words.is_empty() {
        return Vec::new();
    }
    let reversed: Vec<Word> = words
        .iter()
        .map(|w| w.iter().rev().copied().collect())
        .collect();
    let trie = PrefixTree::from_words(&reversed);
    let mut counts = vec![0u32; n];
    let all = vec![true; n];
    count_spellers(graph, &trie, trie.root(), &all, &mut counts);
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, count)| count > 0)
        .map(|(index, count)| (NodeId::from(index), count))
        .collect()
}

fn count_spellers<B: GraphBackend>(
    graph: &B,
    trie: &PrefixTree,
    t: gps_graph::PrefixNodeId,
    spellers: &[bool],
    counts: &mut [u32],
) {
    if trie.is_terminal(t) {
        for (index, &spells) in spellers.iter().enumerate() {
            if spells {
                counts[index] += 1;
            }
        }
    }
    for (label, child) in trie.children(t) {
        let mut next = vec![false; spellers.len()];
        let mut any = false;
        for (index, &spells) in spellers.iter().enumerate() {
            if spells {
                for (entry_label, u) in graph.predecessors(NodeId::from(index)) {
                    if entry_label == label {
                        next[u.index()] = true;
                        any = true;
                    }
                }
            }
        }
        if any {
            count_spellers(graph, trie, child, &next, counts);
        }
    }
}

fn spell_reach<B: GraphBackend>(
    graph: &B,
    trie: &PrefixTree,
    t: gps_graph::PrefixNodeId,
    n: usize,
) -> Vec<bool> {
    if trie.is_terminal(t) {
        // The empty suffix completes a word here: every node qualifies.
        return vec![true; n];
    }
    let mut reach = vec![false; n];
    for (label, child) in trie.children(t) {
        let child_reach = spell_reach(graph, trie, child, n);
        for (index, &reached) in child_reach.iter().enumerate() {
            if reached {
                for (entry_label, u) in graph.predecessors(NodeId::from(index)) {
                    if entry_label == label {
                        reach[u.index()] = true;
                    }
                }
            }
        }
    }
    reach
}

/// The reference node-at-a-time evaluator over a CSR snapshot.
///
/// Wraps [`evaluate`] at `B = CsrGraph` behind the [`DfaEvaluator`] trait;
/// this is the evaluator every alternative engine is differentially tested
/// against.  The snapshot is held behind an [`Arc`](std::sync::Arc) so the
/// cache and the evaluator share one copy.
#[derive(Debug, Clone)]
pub struct NaiveEvaluator {
    csr: std::sync::Arc<CsrGraph>,
}

impl NaiveEvaluator {
    /// Snapshots `graph` and builds the reference evaluator over it.
    pub fn new<B: GraphBackend>(graph: &B) -> Self {
        Self::from_csr(CsrGraph::from_backend(graph))
    }

    /// Builds the reference evaluator over an existing snapshot.
    pub fn from_csr(csr: CsrGraph) -> Self {
        Self::from_shared(std::sync::Arc::new(csr))
    }

    /// Builds the reference evaluator over a shared snapshot (no copy).
    pub fn from_shared(csr: std::sync::Arc<CsrGraph>) -> Self {
        Self { csr }
    }

    /// The underlying snapshot.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }
}

impl DfaEvaluator for NaiveEvaluator {
    fn evaluate_dfa(&self, dfa: &Dfa) -> QueryAnswer {
        evaluate(self.csr.as_ref(), dfa)
    }

    fn witness(&self, dfa: &Dfa, node: NodeId) -> Option<Path> {
        crate::witness::shortest_witness(self.csr.as_ref(), dfa, node)
    }

    fn nodes_spelling(&self, words: &[Word]) -> Vec<NodeId> {
        nodes_spelling(self.csr.as_ref(), words)
    }

    fn spelling_counts(&self, words: &[Word]) -> Vec<(NodeId, u32)> {
        spelling_counts(self.csr.as_ref(), words)
    }
}

/// Counts, for every node, the number of distinct words of length at most
/// `bound` spelled by its outgoing paths that the DFA accepts.  This is the
/// quantity the informative-paths strategy scores nodes with.
pub fn accepted_word_counts<B: GraphBackend>(
    graph: &B,
    dfa: &Dfa,
    bound: usize,
) -> BTreeMap<NodeId, usize> {
    use gps_graph::PathEnumerator;
    let enumerator = PathEnumerator::new(bound);
    graph
        .nodes()
        .map(|node| {
            let count = enumerator
                .words_from(graph, node)
                .into_iter()
                .filter(|w| dfa.accepts(w))
                .count();
            (node, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::Graph;

    /// The full Figure 1 graph of the paper.
    fn figure1() -> Graph {
        let mut g = Graph::new();
        for name in ["N1", "N2", "N3", "N4", "N5", "N6", "C1", "C2", "R1", "R2"] {
            g.add_node(name);
        }
        let n = |g: &Graph, name: &str| g.node_by_name(name).unwrap();
        let edges = [
            ("N1", "tram", "N4"),
            ("N2", "bus", "N1"),
            ("N2", "bus", "N3"),
            ("N3", "bus", "N2"),
            ("N2", "restaurant", "R1"),
            ("N4", "cinema", "C1"),
            ("N4", "bus", "N5"),
            ("N5", "tram", "N2"),
            ("N5", "restaurant", "R2"),
            ("N6", "tram", "N5"),
            ("N6", "cinema", "C2"),
            ("N3", "tram", "N6"),
        ];
        for (s, l, t) in edges {
            let s = n(&g, s);
            let t = n(&g, t);
            g.add_edge_by_name(s, l, t);
        }
        g
    }

    fn motivating_query(g: &Graph) -> Dfa {
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
            Regex::symbol(cinema),
        ]))
    }

    #[test]
    fn motivating_query_selects_reachable_neighborhoods() {
        let g = figure1();
        let dfa = motivating_query(&g);
        let answer = evaluate(&g, &dfa);
        let names = answer.node_names(&g);
        // Every neighborhood from which a cinema is reachable by tram/bus:
        // the paper lists N1, N2, N4, N6 for its (smaller) Figure 1; in our
        // encoding N3 and N5 also reach cinemas via tram/bus chains, so check
        // the exact fixed point of the semantics instead.
        assert!(names.contains(&"N1"));
        assert!(names.contains(&"N2"));
        assert!(names.contains(&"N4"));
        assert!(names.contains(&"N6"));
        assert!(!names.contains(&"C1"));
        assert!(!names.contains(&"R1"));
    }

    #[test]
    fn single_label_query() {
        let g = figure1();
        let cinema = g.label_id("cinema").unwrap();
        let dfa = Dfa::from_regex(&Regex::symbol(cinema));
        let answer = evaluate(&g, &dfa);
        let names = answer.node_names(&g);
        assert_eq!(names, vec!["N4", "N6"]);
        assert_eq!(answer.len(), 2);
    }

    #[test]
    fn empty_query_selects_nothing() {
        let g = figure1();
        let dfa = Dfa::from_regex(&Regex::Empty);
        let answer = evaluate(&g, &dfa);
        assert!(answer.is_empty());
        assert_eq!(answer.nodes(), vec![]);
    }

    #[test]
    fn epsilon_query_selects_every_node() {
        let g = figure1();
        let dfa = Dfa::from_regex(&Regex::Epsilon);
        let answer = evaluate(&g, &dfa);
        assert_eq!(answer.len(), g.node_count());
    }

    #[test]
    fn star_query_handles_cycles() {
        let g = figure1();
        let bus = g.label_id("bus").unwrap();
        // bus·bus·bus… of length ≥ 1: the N2↔N3 cycle gives arbitrarily long
        // bus paths, so both N2 and N3 are selected for bus·bus·bus.
        let dfa = Dfa::from_regex(&Regex::word(&[bus, bus, bus]));
        let answer = evaluate(&g, &dfa);
        let names = answer.node_names(&g);
        assert!(names.contains(&"N2"));
        assert!(names.contains(&"N3"));
        assert!(!names.contains(&"N4"));
    }

    #[test]
    fn evaluation_on_empty_graph() {
        let g = Graph::new();
        let dfa = Dfa::from_regex(&Regex::Epsilon);
        let answer = evaluate(&g, &dfa);
        assert!(answer.is_empty());
        assert!(!answer.contains(NodeId::new(0)));
    }

    #[test]
    fn evaluate_many_shares_snapshot() {
        let g = figure1();
        let cinema = g.label_id("cinema").unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        let d1 = Dfa::from_regex(&Regex::symbol(cinema));
        let d2 = Dfa::from_regex(&Regex::symbol(restaurant));
        let answers = evaluate_many(&g, &[&d1, &d2]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].node_names(&g), vec!["N4", "N6"]);
        assert_eq!(answers[1].node_names(&g), vec!["N2", "N5"]);
    }

    #[test]
    fn accepted_word_counts_score_nodes() {
        let g = figure1();
        let dfa = motivating_query(&g);
        let counts = accepted_word_counts(&g, &dfa, 3);
        let n4 = g.node_by_name("N4").unwrap();
        let c1 = g.node_by_name("C1").unwrap();
        assert!(counts[&n4] >= 1, "N4 has the direct cinema path");
        assert_eq!(counts[&c1], 0);
    }

    #[test]
    fn naive_evaluator_matches_direct_evaluation() {
        let g = figure1();
        let dfa = motivating_query(&g);
        let evaluator = NaiveEvaluator::new(&g);
        assert_eq!(evaluator.evaluate_dfa(&dfa), evaluate(&g, &dfa));
        let cinema = g.label_id("cinema").unwrap();
        let d2 = Dfa::from_regex(&Regex::symbol(cinema));
        let batch = evaluator.evaluate_dfas(&[&dfa, &d2]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1], evaluate(&g, &d2));
        assert_eq!(evaluator.csr().node_count(), g.node_count());
    }

    #[test]
    fn answer_flags_round_trip() {
        let answer = QueryAnswer::from_flags(vec![true, false, true]);
        assert!(answer.contains(NodeId::new(0)));
        assert!(!answer.contains(NodeId::new(1)));
        assert!(answer.contains(NodeId::new(2)));
        assert!(!answer.contains(NodeId::new(7)), "out of range is false");
        assert_eq!(answer.nodes(), vec![NodeId::new(0), NodeId::new(2)]);
    }
}
