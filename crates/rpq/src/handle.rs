//! A shared handle to one evaluation stack.
//!
//! An interactive session touches the evaluator from many places — the
//! simulated user computes the goal answer, the learner re-checks every new
//! hypothesis, the pruning state asks which nodes spell newly covered words,
//! witnesses are extracted for proposed nodes.  [`EvalHandle`] bundles the
//! [`EvalCache`] (and through it the configured [`DfaEvaluator`] and its
//! shared snapshot/index) behind one cheaply cloneable value so all of those
//! call sites share a single cache, evaluator and [`gps_graph::CsrGraph`]
//! per engine instead of re-evaluating or re-snapshotting ad hoc.

use crate::cache::EvalCache;
use crate::eval::{DfaEvaluator, QueryAnswer};
use gps_automata::{Dfa, Regex};
use gps_graph::{GraphBackend, NodeId, Path, Word};
use std::sync::Arc;

/// A cheaply cloneable handle to a shared evaluation cache + evaluator.
///
/// Cloning shares the underlying [`EvalCache`]; every clone sees the same
/// cached answers and drives the same evaluator (and therefore the same
/// graph snapshot and any engine-internal index).
#[derive(Debug, Clone)]
pub struct EvalHandle {
    cache: Arc<EvalCache>,
}

impl EvalHandle {
    /// A handle over the reference node-at-a-time evaluator (snapshotting
    /// `graph`).  This is what a bare [`Session`](../gps_interactive) runs
    /// with when no engine provides a handle.
    pub fn naive<B: GraphBackend>(graph: &B) -> Self {
        Self::from_cache(Arc::new(EvalCache::new(graph)))
    }

    /// Wraps an existing shared cache (the engine's).
    pub fn from_cache(cache: Arc<EvalCache>) -> Self {
        Self { cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// A new reference to the shared cache.
    pub fn shared_cache(&self) -> Arc<EvalCache> {
        Arc::clone(&self.cache)
    }

    /// The evaluator answering cache misses.
    pub fn evaluator(&self) -> &dyn DfaEvaluator {
        self.cache.evaluator()
    }

    /// The epoch of the snapshot this handle evaluates against — see
    /// [`EvalCache::epoch`].
    pub fn epoch(&self) -> u64 {
        self.cache.epoch()
    }

    /// Evaluates `regex` through the cache.
    pub fn evaluate(&self, regex: &Regex) -> Arc<QueryAnswer> {
        self.cache.evaluate(regex)
    }

    /// Evaluates an already-compiled query through the cache (keyed by its
    /// expression; the DFA is only consulted on a miss).
    pub fn evaluate_compiled(&self, regex: &Regex, dfa: &Dfa) -> Arc<QueryAnswer> {
        self.cache.evaluate_compiled(regex, dfa)
    }

    /// Single-node membership through the evaluator (early-exit engines
    /// answer without a full fixed point).
    pub fn selects(&self, dfa: &Dfa, node: NodeId) -> bool {
        self.evaluator().selects_node(dfa, node)
    }

    /// A shortest witness path for `node`, or `None` when unselected.
    pub fn witness(&self, dfa: &Dfa, node: NodeId) -> Option<Path> {
        self.evaluator().witness(dfa, node)
    }

    /// Distinct bounded word sets per node, computed once per snapshot and
    /// shared — see [`EvalCache::bounded_words`].
    pub fn bounded_words(&self, bound: usize) -> Arc<Vec<Vec<Word>>> {
        self.cache.bounded_words(bound)
    }

    /// Distinct bounded-word counts per node (empty-coverage informativeness
    /// baseline), computed once per snapshot and shared — see
    /// [`EvalCache::bounded_word_counts`].
    pub fn bounded_word_counts(&self, bound: usize) -> Arc<Vec<usize>> {
        self.cache.bounded_word_counts(bound)
    }

    /// The nodes having at least one outgoing path spelling one of `words`.
    ///
    /// This is the dirty set the incremental pruning refresh needs: when a
    /// word becomes covered by a new negative example, only the nodes that
    /// spell it can change informativeness.  Answered by the configured
    /// engine's [`DfaEvaluator::nodes_spelling`] — a trie-shaped backward
    /// sweep over the engine's own adjacency (the RPQ semantics — "has a
    /// path spelling a word of the language" — is exactly this set).
    pub fn nodes_spelling(&self, words: &[Word]) -> Vec<NodeId> {
        self.evaluator().nodes_spelling(words)
    }

    /// Per-node counts of how many of `words` each node spells — the exact
    /// informativeness decrement when those words become covered.  See
    /// [`DfaEvaluator::spelling_counts`].
    pub fn spelling_counts(&self, words: &[Word]) -> Vec<(NodeId, u32)> {
        self.evaluator().spelling_counts(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// N2 -bus-> N1 -tram-> N4 -cinema-> C1, N2 -restaurant-> R1.
    fn chain() -> Graph {
        let mut g = Graph::new();
        let n2 = g.add_node("N2");
        let n1 = g.add_node("N1");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        let r1 = g.add_node("R1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g.add_edge_by_name(n2, "restaurant", r1);
        g
    }

    #[test]
    fn clones_share_one_cache() {
        let g = chain();
        let handle = EvalHandle::naive(&g);
        let other = handle.clone();
        let cinema = g.label_id("cinema").unwrap();
        handle.evaluate(&Regex::symbol(cinema));
        other.evaluate(&Regex::symbol(cinema));
        assert_eq!(handle.cache().stats(), (1, 1), "second call is a hit");
        assert_eq!(Arc::strong_count(&handle.shared_cache()), 3);
    }

    #[test]
    fn evaluate_compiled_hits_the_same_entry() {
        let g = chain();
        let handle = EvalHandle::naive(&g);
        let cinema = g.label_id("cinema").unwrap();
        let regex = Regex::symbol(cinema);
        let dfa = Dfa::from_regex(&regex);
        let a = handle.evaluate_compiled(&regex, &dfa);
        let b = handle.evaluate(&regex);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(handle.cache().stats(), (1, 1));
    }

    #[test]
    fn witness_and_selects_route_through_the_evaluator() {
        let g = chain();
        let handle = EvalHandle::naive(&g);
        let q = crate::PathQuery::parse("bus.tram.cinema", g.labels()).unwrap();
        let n2 = g.node_by_name("N2").unwrap();
        let c1 = g.node_by_name("C1").unwrap();
        assert!(handle.selects(q.dfa(), n2));
        assert!(!handle.selects(q.dfa(), c1));
        let path = handle.witness(q.dfa(), n2).unwrap();
        assert_eq!(path.len(), 3);
        assert!(handle.witness(q.dfa(), c1).is_none());
    }

    #[test]
    fn nodes_spelling_matches_path_semantics() {
        let g = chain();
        let handle = EvalHandle::naive(&g);
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        // Who spells bus·tram or cinema?  N2 (bus·tram) and N4 (cinema).
        let nodes = handle.nodes_spelling(&[vec![bus, tram], vec![cinema]]);
        assert_eq!(
            nodes,
            vec![g.node_by_name("N2").unwrap(), g.node_by_name("N4").unwrap()]
        );
        assert!(handle.nodes_spelling(&[]).is_empty());
    }
}
