//! Coverage of paths by negative examples.
//!
//! The paper's notion of an *uninformative* node: a node is uninformative
//! when all of its (bounded) paths are covered by negative nodes — labeling
//! it could not change the learned query, so the system prunes it.  A word is
//! *covered* when it is spelled by some path of a node already labeled
//! negative: the goal query cannot select via that word, because it would
//! then also select the negative node.

use gps_graph::{GraphBackend, NodeId, PathEnumerator, PrefixTree, Word};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of fresh coverage log identities (see
/// [`NegativeCoverage::log_identity`]).
static NEXT_LOG_IDENTITY: AtomicU64 = AtomicU64::new(1);

/// The set of words covered by the negative examples collected so far,
/// bounded by a maximum path length.
#[derive(Debug, Clone)]
pub struct NegativeCoverage {
    bound: usize,
    covered: PrefixTree,
    negatives: BTreeSet<NodeId>,
    /// Every word in insertion order, exactly once — the delta log consumers
    /// (incremental pruning) key their state off [`version`](Self::version),
    /// which is this log's length.
    covered_log: Vec<Word>,
    /// Identity of the log lineage this coverage belongs to (shared by
    /// clones, distinct across [`new`](Self::new) calls) — see
    /// [`log_identity`](Self::log_identity).
    log_identity: u64,
}

impl NegativeCoverage {
    /// Creates an empty coverage with the given path-length bound.
    pub fn new(bound: usize) -> Self {
        Self {
            bound,
            covered: PrefixTree::new(),
            negatives: BTreeSet::new(),
            covered_log: Vec::new(),
            log_identity: NEXT_LOG_IDENTITY.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Creates a coverage seeded with a set of negative nodes.
    pub fn from_negatives<B: GraphBackend>(
        graph: &B,
        negatives: impl IntoIterator<Item = NodeId>,
        bound: usize,
    ) -> Self {
        let mut coverage = Self::new(bound);
        for node in negatives {
            coverage.add_negative(graph, node);
        }
        coverage
    }

    /// The path-length bound used when collecting words.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The negative nodes recorded so far.
    pub fn negatives(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.negatives.iter().copied()
    }

    /// Number of negative nodes recorded.
    pub fn negative_count(&self) -> usize {
        self.negatives.len()
    }

    /// Records `node` as a negative example: all its words up to the bound
    /// become covered.  Returns `false` when the node was already recorded.
    pub fn add_negative<B: GraphBackend>(&mut self, graph: &B, node: NodeId) -> bool {
        if !self.negatives.insert(node) {
            return false;
        }
        for word in PathEnumerator::new(self.bound).words_from(graph, node) {
            if !self.covered.contains(&word) {
                self.covered.insert(&word);
                self.covered_log.push(word);
            }
        }
        true
    }

    /// Like [`add_negative`](Self::add_negative), but with the node's
    /// bounded word set supplied by the caller (typically the shared
    /// per-snapshot word cache) instead of enumerated from the graph.
    ///
    /// `words` must be exactly the node's distinct words up to this
    /// coverage's bound.
    pub fn add_negative_with_words(&mut self, node: NodeId, words: &[Word]) -> bool {
        if !self.negatives.insert(node) {
            return false;
        }
        for word in words {
            if !self.covered.contains(word) {
                self.covered.insert(word);
                self.covered_log.push(word.clone());
            }
        }
        true
    }

    /// A monotonic version counter: the number of distinct covered words so
    /// far.  Bumps exactly when coverage grows, so consumers can detect and
    /// fetch the delta with [`covered_since`](Self::covered_since).
    pub fn version(&self) -> u64 {
        self.covered_log.len() as u64
    }

    /// Identifies the covered-word log lineage this coverage belongs to.
    ///
    /// Two coverages with the same identity share their log prefix (one is
    /// a clone of the other at some version), so a delta consumer that
    /// synchronized against one may safely apply
    /// [`covered_since`](Self::covered_since) deltas from the other.
    /// Coverages created independently get distinct identities, letting
    /// consumers detect a foreign object instead of applying its delta.
    pub fn log_identity(&self) -> u64 {
        self.log_identity
    }

    /// The words that became covered after the coverage was at `version`
    /// (insertion order).  `covered_since(0)` is every covered word.
    pub fn covered_since(&self, version: u64) -> &[Word] {
        let start = (version as usize).min(self.covered_log.len());
        &self.covered_log[start..]
    }

    /// Every covered word, sorted (shortest-prefix-first lexicographic) and
    /// deduplicated — the negative constraint set the learner generalizes
    /// against.
    pub fn covered_words(&self) -> Vec<Word> {
        self.covered.words()
    }

    /// Returns `true` when `word` is covered by some negative example.
    pub fn is_covered(&self, word: &[gps_graph::LabelId]) -> bool {
        self.covered.contains(word)
    }

    /// The words of `node` (up to the bound) that are *not* covered — the
    /// words that could still witness the node's membership in the goal
    /// query.
    pub fn uncovered_words<B: GraphBackend>(&self, graph: &B, node: NodeId) -> Vec<Word> {
        PathEnumerator::new(self.bound)
            .words_from(graph, node)
            .into_iter()
            .filter(|w| !self.is_covered(w))
            .collect()
    }

    /// Number of uncovered words of `node` — the informativeness score used
    /// by the practical strategy of the paper.
    pub fn uncovered_count<B: GraphBackend>(&self, graph: &B, node: NodeId) -> usize {
        self.uncovered_words(graph, node).len()
    }

    /// Returns `true` when the node is *uninformative*: every word of every
    /// path of the node (up to the bound) is covered by a negative example.
    /// Nodes with no outgoing paths at all are also uninformative (there is
    /// nothing to learn from them under non-nullable goal queries).
    pub fn is_uninformative<B: GraphBackend>(&self, graph: &B, node: NodeId) -> bool {
        self.uncovered_count(graph, node) == 0
    }

    /// All uninformative nodes of the graph under the current negatives.
    pub fn uninformative_nodes<B: GraphBackend>(&self, graph: &B) -> Vec<NodeId> {
        graph
            .nodes()
            .filter(|&n| self.is_uninformative(graph, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// N5 -bus-> N6 -cinema-> C2, N5 -restaurant-> R2 ; N7 isolated.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let n5 = g.add_node("N5");
        let n6 = g.add_node("N6");
        let c2 = g.add_node("C2");
        let r2 = g.add_node("R2");
        let _n7 = g.add_node("N7");
        g.add_edge_by_name(n5, "bus", n6);
        g.add_edge_by_name(n6, "cinema", c2);
        g.add_edge_by_name(n5, "restaurant", r2);
        g
    }

    #[test]
    fn adding_negative_covers_its_words() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let mut cov = NegativeCoverage::new(3);
        assert!(cov.add_negative(&g, n5));
        assert!(!cov.add_negative(&g, n5), "idempotent");
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        assert!(cov.is_covered(&[bus]));
        assert!(cov.is_covered(&[bus, cinema]));
        assert!(cov.is_covered(&[restaurant]));
        assert!(!cov.is_covered(&[cinema]));
        assert_eq!(cov.negative_count(), 1);
    }

    #[test]
    fn uncovered_words_shrink_as_negatives_grow() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let mut cov = NegativeCoverage::new(3);
        let before = cov.uncovered_count(&g, n6);
        assert_eq!(before, 1, "N6 has only the cinema word");
        cov.add_negative(&g, n5);
        // N5's words include bus·cinema but not cinema itself, so N6 keeps
        // its single uncovered word.
        assert_eq!(cov.uncovered_count(&g, n6), 1);
        cov.add_negative(&g, n6);
        assert_eq!(cov.uncovered_count(&g, n6), 0);
        assert!(cov.is_uninformative(&g, n6));
    }

    #[test]
    fn nodes_without_paths_are_uninformative() {
        let g = sample();
        let cov = NegativeCoverage::new(3);
        let c2 = g.node_by_name("C2").unwrap();
        let n7 = g.node_by_name("N7").unwrap();
        assert!(cov.is_uninformative(&g, c2));
        assert!(cov.is_uninformative(&g, n7));
        let n5 = g.node_by_name("N5").unwrap();
        assert!(!cov.is_uninformative(&g, n5));
    }

    #[test]
    fn uninformative_nodes_spread_with_negatives() {
        let g = sample();
        let mut cov = NegativeCoverage::new(3);
        let initial = cov.uninformative_nodes(&g);
        assert_eq!(initial.len(), 3, "C2, R2, N7 have no outgoing paths");
        // Labeling N5 negative covers bus, bus·cinema, restaurant; N6's word
        // `cinema` remains uncovered, so only the sinks stay uninformative.
        cov.add_negative(&g, g.node_by_name("N5").unwrap());
        let after = cov.uninformative_nodes(&g);
        assert_eq!(after.len(), 4, "N5 joins the uninformative set");
    }

    #[test]
    fn from_negatives_seeds_coverage() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let cov = NegativeCoverage::from_negatives(&g, [n5, n6], 2);
        assert_eq!(cov.negative_count(), 2);
        assert_eq!(cov.bound(), 2);
        assert_eq!(cov.negatives().collect::<Vec<_>>(), vec![n5, n6]);
        let cinema = g.label_id("cinema").unwrap();
        assert!(cov.is_covered(&[cinema]));
    }

    #[test]
    fn version_and_delta_track_new_words_exactly_once() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let mut cov = NegativeCoverage::new(3);
        assert_eq!(cov.version(), 0);
        cov.add_negative(&g, n5);
        let v1 = cov.version();
        assert!(v1 > 0);
        assert_eq!(cov.covered_since(0).len(), v1 as usize);
        // N6's words (cinema) are new; N5's shared words (bus·cinema) are
        // already covered and must not reappear in the delta.
        cov.add_negative(&g, n6);
        let delta: Vec<_> = cov.covered_since(v1).to_vec();
        let cinema = g.label_id("cinema").unwrap();
        assert_eq!(delta, vec![vec![cinema]]);
        // Re-adding a negative is a no-op for the version.
        let v2 = cov.version();
        cov.add_negative(&g, n5);
        assert_eq!(cov.version(), v2);
        // Past-the-end versions yield an empty delta.
        assert!(cov.covered_since(v2 + 10).is_empty());
        // covered_words is the sorted, deduplicated union of the log.
        let mut log: Vec<_> = cov.covered_since(0).to_vec();
        log.sort();
        assert_eq!(cov.covered_words(), log);
    }

    #[test]
    fn bound_limits_covered_word_length() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let mut cov = NegativeCoverage::new(1);
        cov.add_negative(&g, n5);
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        assert!(cov.is_covered(&[bus]));
        assert!(
            !cov.is_covered(&[bus, cinema]),
            "length-2 word is beyond the bound"
        );
    }
}
