//! Compiled path queries.

use crate::eval::{evaluate_csr, QueryAnswer};
use crate::witness::shortest_witness;
use gps_automata::parser::{self, ParseError};
use gps_automata::printer;
use gps_automata::{Dfa, Regex};
use gps_graph::{CsrGraph, GraphBackend, LabelInterner, NodeId, Path};

/// A path query: a regular expression over edge labels together with its
/// compiled minimal DFA.
///
/// A node `v` is selected by the query iff some path starting at `v` spells a
/// word of the expression's language.
#[derive(Debug, Clone)]
pub struct PathQuery {
    regex: Regex,
    dfa: Dfa,
}

impl PathQuery {
    /// Compiles a query from a regular expression.
    pub fn new(regex: Regex) -> Self {
        let dfa = Dfa::from_regex(&regex);
        Self { regex, dfa }
    }

    /// Parses and compiles a query written in the paper's concrete syntax,
    /// e.g. `(tram+bus)*.cinema`.
    pub fn parse(input: &str, labels: &LabelInterner) -> Result<Self, ParseError> {
        Ok(Self::new(parser::parse(input, labels)?))
    }

    /// The query's regular expression.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The query's minimal DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Renders the query in the paper's syntax using the graph's label names.
    pub fn display(&self, labels: &LabelInterner) -> String {
        printer::print(&self.regex, labels)
    }

    /// Evaluates the query on any graph backend, returning the set of
    /// selected nodes.
    pub fn evaluate<B: GraphBackend>(&self, graph: &B) -> QueryAnswer {
        crate::eval::evaluate(graph, &self.dfa)
    }

    /// Evaluates the query on a pre-built CSR snapshot (equivalent to
    /// [`PathQuery::evaluate`] at `B = CsrGraph`; kept as a named entry
    /// point for snapshot-holding callers).
    pub fn evaluate_csr(&self, csr: &CsrGraph) -> QueryAnswer {
        evaluate_csr(csr, &self.dfa)
    }

    /// Returns `true` if `node` is selected by the query on `graph`.
    pub fn selects<B: GraphBackend>(&self, graph: &B, node: NodeId) -> bool {
        self.evaluate(graph).contains(node)
    }

    /// Returns a shortest witness path for `node` (a path spelling an
    /// accepted word), or `None` when the node is not selected.
    pub fn witness<B: GraphBackend>(&self, graph: &B, node: NodeId) -> Option<Path> {
        shortest_witness(graph, &self.dfa, node)
    }

    /// Returns `true` when the two queries select the same nodes on every
    /// graph over the given alphabet (language equivalence).
    pub fn equivalent(&self, other: &PathQuery, labels: &LabelInterner) -> bool {
        let alphabet = gps_automata::Alphabet::from_interner(labels);
        gps_automata::decide::equivalent(&self.dfa, &other.dfa, &alphabet)
    }
}

impl From<Regex> for PathQuery {
    fn from(regex: Regex) -> Self {
        Self::new(regex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    fn figure1_like() -> Graph {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g
    }

    #[test]
    fn parse_and_evaluate() {
        let g = figure1_like();
        let q = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let answer = q.evaluate(&g);
        assert!(answer.contains(g.node_by_name("N1").unwrap()));
        assert!(answer.contains(g.node_by_name("N2").unwrap()));
        assert!(answer.contains(g.node_by_name("N4").unwrap()));
        assert!(!answer.contains(g.node_by_name("C1").unwrap()));
    }

    #[test]
    fn selects_single_node() {
        let g = figure1_like();
        let q = PathQuery::parse("cinema", g.labels()).unwrap();
        assert!(q.selects(&g, g.node_by_name("N4").unwrap()));
        assert!(!q.selects(&g, g.node_by_name("N2").unwrap()));
    }

    #[test]
    fn witness_path_spells_an_accepted_word() {
        let g = figure1_like();
        let q = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let n2 = g.node_by_name("N2").unwrap();
        let path = q.witness(&g, n2).unwrap();
        assert_eq!(path.start, n2);
        assert!(q.dfa().accepts(&path.word));
        assert!(q.witness(&g, g.node_by_name("C1").unwrap()).is_none());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let g = figure1_like();
        let q = PathQuery::parse("(tram + bus)* · cinema", g.labels()).unwrap();
        let displayed = q.display(g.labels());
        let reparsed = PathQuery::parse(&displayed, g.labels()).unwrap();
        assert_eq!(q.regex(), reparsed.regex());
    }

    #[test]
    fn equivalence_of_queries() {
        let g = figure1_like();
        let q1 = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let q2 = PathQuery::parse("(bus+tram)*.cinema", g.labels()).unwrap();
        let q3 = PathQuery::parse("bus", g.labels()).unwrap();
        assert!(q1.equivalent(&q2, g.labels()));
        assert!(!q1.equivalent(&q3, g.labels()));
    }

    #[test]
    fn query_from_regex_conversion() {
        let g = figure1_like();
        let cinema = g.label_id("cinema").unwrap();
        let q: PathQuery = Regex::symbol(cinema).into();
        assert!(q.selects(&g, g.node_by_name("N4").unwrap()));
    }
}
