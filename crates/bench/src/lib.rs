//! # gps-bench — experiment harness
//!
//! Shared helpers for the Criterion benchmarks and the `repro` binary that
//! regenerates every experiment series reported in `EXPERIMENTS.md`.
//!
//! The individual experiments are:
//!
//! * **E1** — interactions to convergence per strategy and graph size;
//! * **E2** — per-interaction latency per strategy;
//! * **E3** — learning time as a function of the number of examples;
//! * **E4** — pruning effectiveness over the course of a session;
//! * **E5** — RPQ evaluation throughput (substrate sanity check);
//! * **A1** — ablation: goal-recovery rate with and without path validation;
//! * **A2** — ablation: initial neighborhood radius vs. interactions/zooms.

#![forbid(unsafe_code)]

use gps_graph::Graph;
use gps_interactive::session::{Session, SessionConfig, SessionOutcome};
use gps_interactive::strategy::{
    DegreeStrategy, InformativePathsStrategy, RandomStrategy, Strategy,
};
use gps_interactive::user::SimulatedUser;
use gps_rpq::PathQuery;

/// The strategies compared by the interaction experiments, freshly
/// constructed so each run starts from the same state.
pub fn strategies(seed: u64) -> Vec<(&'static str, Box<dyn Strategy>)> {
    vec![
        (
            "informative-paths",
            Box::new(InformativePathsStrategy::default()) as Box<dyn Strategy>,
        ),
        ("degree", Box::new(DegreeStrategy)),
        ("random", Box::new(RandomStrategy::seeded(seed))),
    ]
}

/// Runs one interactive session of `goal` on `graph` with the given strategy
/// and configuration, against the simulated oracle user.
pub fn run_session(
    graph: &Graph,
    goal: &PathQuery,
    strategy: &mut dyn Strategy,
    config: SessionConfig,
) -> SessionOutcome {
    let mut user = SimulatedUser::new(goal.clone(), graph);
    let mut session = Session::new(graph, config);
    session.run(strategy, &mut user)
}

/// Returns `true` when the session's learned query selects exactly the same
/// nodes as the goal.
pub fn goal_reached(graph: &Graph, goal: &PathQuery, outcome: &SessionOutcome) -> bool {
    outcome
        .learned
        .as_ref()
        .map(|l| l.answer.nodes() == goal.evaluate(graph).nodes())
        .unwrap_or(false)
}

/// Formats a table row with fixed-width columns for the repro binary.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(cell, width)| format!("{cell:>width$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

    #[test]
    fn helpers_compose() {
        let (g, _) = figure1_graph();
        let goal = PathQuery::parse(MOTIVATING_QUERY, g.labels()).unwrap();
        for (name, mut strategy) in strategies(1) {
            let outcome = run_session(&g, &goal, strategy.as_mut(), SessionConfig::default());
            assert!(outcome.stats.interactions > 0, "{name} did nothing");
            assert!(goal_reached(&g, &goal, &outcome), "{name} missed the goal");
        }
        let formatted = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(formatted, "  a    bb");
    }
}
