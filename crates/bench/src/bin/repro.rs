//! `repro` — regenerates every experiment series of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p gps-bench --bin repro              # all experiments
//! cargo run --release -p gps-bench --bin repro -- --experiment e1
//! ```
//!
//! Experiments: `f1` (Figure 1 answer), `e1` (interactions vs strategy),
//! `e2` (strategy latency), `e3` (learning time), `e4` (pruning), `e5`
//! (RPQ throughput), `a1` (path-validation ablation), `a2` (radius
//! ablation).

use gps_bench::{goal_reached, row, run_session, strategies};
use gps_core::Gps;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_datasets::synthetic::{self, SyntheticConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_datasets::Workload;
use gps_interactive::session::SessionConfig;
use gps_learner::characteristic::partial_sample;
use gps_learner::Learner;
use gps_rpq::PathQuery;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let selected = args
        .iter()
        .position(|a| a == "--experiment")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let run = |name: &str| selected.as_deref().map(|s| s == name).unwrap_or(true);

    if run("f1") {
        experiment_f1();
    }
    if run("e1") {
        experiment_e1();
    }
    if run("e2") {
        experiment_e2();
    }
    if run("e3") {
        experiment_e3();
    }
    if run("e4") {
        experiment_e4();
    }
    if run("e5") {
        experiment_e5();
    }
    if run("a1") {
        experiment_a1();
    }
    if run("a2") {
        experiment_a2();
    }
}

/// F1 — the Figure 1 motivating query answer and witness paths.
fn experiment_f1() {
    println!("== F1: Figure 1 motivating query ==");
    let (graph, _) = figure1_graph();
    let gps = Gps::new(graph);
    println!("q = {MOTIVATING_QUERY}");
    println!(
        "q(G) = {}",
        gps.evaluate_rendered(MOTIVATING_QUERY).unwrap()
    );
    let query = gps.parse_query(MOTIVATING_QUERY).unwrap();
    for name in ["N1", "N2", "N4", "N6"] {
        let node = gps.graph().node_by_name(name).unwrap();
        let witness = query.witness(gps.graph(), node).unwrap();
        println!("  witness({name}) = {}", witness.render_word(gps.graph()));
    }
    println!();
}

/// E1 — interactions to convergence per strategy and graph size.
fn experiment_e1() {
    println!("== E1: interactions to convergence (goal = tram*.cinema) ==");
    let widths = [14, 10, 18, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "graph".into(),
                "|V|".into(),
                "strategy".into(),
                "interactions".into(),
                "zooms".into(),
                "goal".into()
            ],
            &widths
        )
    );
    for neighborhoods in [20usize, 50, 100, 200] {
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, 3));
        let goal = PathQuery::parse("tram*.cinema", net.graph.labels()).unwrap();
        for (name, mut strategy) in strategies(1) {
            let outcome = run_session(
                &net.graph,
                &goal,
                strategy.as_mut(),
                SessionConfig::default(),
            );
            println!(
                "{}",
                row(
                    &[
                        format!("transport-{neighborhoods}"),
                        net.graph.node_count().to_string(),
                        name.to_string(),
                        outcome.stats.interactions.to_string(),
                        outcome.stats.zooms.to_string(),
                        goal_reached(&net.graph, &goal, &outcome).to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!();
}

/// E2 — mean system time per interaction per strategy.
fn experiment_e2() {
    println!("== E2: per-interaction system latency ==");
    let widths = [14, 18, 14, 22, 22];
    println!(
        "{}",
        row(
            &[
                "graph".into(),
                "strategy".into(),
                "interactions".into(),
                "mean time / step".into(),
                "max time / step".into()
            ],
            &widths
        )
    );
    for neighborhoods in [50usize, 200] {
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, 5));
        let goal = PathQuery::parse("(tram+bus)*.cinema", net.graph.labels()).unwrap();
        for (name, mut strategy) in strategies(2) {
            let outcome = run_session(
                &net.graph,
                &goal,
                strategy.as_mut(),
                SessionConfig::default(),
            );
            println!(
                "{}",
                row(
                    &[
                        format!("transport-{neighborhoods}"),
                        name.to_string(),
                        outcome.stats.interactions.to_string(),
                        format!("{:?}", outcome.stats.mean_interaction_time()),
                        format!("{:?}", outcome.stats.max_interaction_time),
                    ],
                    &widths
                )
            );
        }
    }
    println!();
}

/// E3 — learning time vs number of examples and goal complexity.
fn experiment_e3() {
    println!("== E3: learning time ==");
    let widths = [26, 12, 16];
    println!(
        "{}",
        row(
            &["goal".into(), "examples".into(), "learn time".into()],
            &widths
        )
    );
    let net = transport::generate(&TransportConfig::with_neighborhoods(100, 5));
    let graph = net.graph;
    let learner = Learner::default();
    for syntax in ["cinema", "tram*.cinema", "(tram+bus)*.cinema"] {
        let goal = PathQuery::parse(syntax, graph.labels()).unwrap();
        for examples_count in [4usize, 16, 64] {
            let sample = partial_sample(&graph, &goal, examples_count / 2, examples_count / 2);
            let started = Instant::now();
            let result = learner.learn(&graph, &sample);
            let elapsed = started.elapsed();
            let status = if result.is_ok() { "" } else { " (error)" };
            println!(
                "{}{}",
                row(
                    &[
                        syntax.to_string(),
                        sample.len().to_string(),
                        format!("{elapsed:?}"),
                    ],
                    &widths
                ),
                status
            );
        }
    }
    println!();
}

/// E4 — pruning effectiveness over the course of a session.
fn experiment_e4() {
    println!("== E4: pruning effectiveness ==");
    let widths = [14, 14, 18, 20];
    println!(
        "{}",
        row(
            &[
                "graph".into(),
                "interactions".into(),
                "pruned (final)".into(),
                "pruned fraction".into()
            ],
            &widths
        )
    );
    for neighborhoods in [50usize, 100, 200] {
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, 11));
        let goal = PathQuery::parse("(tram+bus)*.cinema", net.graph.labels()).unwrap();
        let mut strategy = strategies(1).remove(0).1;
        let outcome = run_session(
            &net.graph,
            &goal,
            strategy.as_mut(),
            SessionConfig::default(),
        );
        let final_pruned = outcome
            .stats
            .pruned_after_interaction
            .last()
            .copied()
            .unwrap_or(0);
        println!(
            "{}",
            row(
                &[
                    format!("transport-{neighborhoods}"),
                    outcome.stats.interactions.to_string(),
                    final_pruned.to_string(),
                    format!(
                        "{:.2}",
                        outcome.stats.final_pruned_fraction(net.graph.node_count())
                    ),
                ],
                &widths
            )
        );
    }
    println!();
}

/// E5 — RPQ evaluation throughput.
fn experiment_e5() {
    println!("== E5: RPQ evaluation throughput ==");
    let widths = [16, 10, 10, 26, 16];
    println!(
        "{}",
        row(
            &[
                "graph".into(),
                "|V|".into(),
                "|E|".into(),
                "query".into(),
                "eval time".into()
            ],
            &widths
        )
    );
    for nodes in [100usize, 500, 2000] {
        let graph = synthetic::generate(&SyntheticConfig::with_nodes(nodes, 7));
        let query = PathQuery::parse("(a0+a1)*.a2", graph.labels()).unwrap();
        let csr = gps_graph::CsrGraph::from_graph(&graph);
        let started = Instant::now();
        let iterations = 20;
        for _ in 0..iterations {
            std::hint::black_box(query.evaluate_csr(&csr));
        }
        let elapsed = started.elapsed() / iterations;
        println!(
            "{}",
            row(
                &[
                    format!("synthetic-{nodes}"),
                    graph.node_count().to_string(),
                    graph.edge_count().to_string(),
                    "(a0+a1)*.a2".to_string(),
                    format!("{elapsed:?}"),
                ],
                &widths
            )
        );
    }
    println!();
}

/// A1 — ablation: with vs. without path validation.
///
/// Two measures per mode: does the learned query select the same nodes as the
/// goal on the instance (`ans`), and is it *language-equivalent* to the goal
/// (`lang`)?  The paper's point is that without validation the learned query
/// is consistent but not necessarily the intended one — which shows up as
/// `lang = false` while `ans` may still be true.
fn experiment_a1() {
    println!("== A1: path-validation ablation (answer match / language equivalence) ==");
    let widths = [18, 28, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "workload".into(),
                "goal".into(),
                "ans+val".into(),
                "lang+val".into(),
                "ans-val".into(),
                "lang-val".into()
            ],
            &widths
        )
    );
    let workloads = [Workload::figure1(), Workload::transport(30, 21)];
    for workload in &workloads {
        let alphabet = gps_automata::Alphabet::from_interner(workload.graph.labels());
        for goal in &workload.queries.queries {
            if goal.evaluate(&workload.graph).is_empty() {
                continue;
            }
            let measure = |config: SessionConfig| {
                let mut strategy = strategies(1).remove(0).1;
                let outcome = run_session(&workload.graph, goal, strategy.as_mut(), config);
                let ans = goal_reached(&workload.graph, goal, &outcome);
                let lang = outcome
                    .learned
                    .as_ref()
                    .map(|l| gps_automata::decide::equivalent(&l.dfa, goal.dfa(), &alphabet))
                    .unwrap_or(false);
                (ans, lang)
            };
            let (ans_with, lang_with) = measure(SessionConfig::default());
            let (ans_without, lang_without) = measure(SessionConfig::without_path_validation());
            println!(
                "{}",
                row(
                    &[
                        workload.name.clone(),
                        goal.display(workload.graph.labels()),
                        ans_with.to_string(),
                        lang_with.to_string(),
                        ans_without.to_string(),
                        lang_without.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!();
}

/// A2 — ablation: initial neighborhood radius vs interactions and zooms.
fn experiment_a2() {
    println!("== A2: initial-radius ablation ==");
    let widths = [18, 10, 14, 10, 10];
    println!(
        "{}",
        row(
            &[
                "graph".into(),
                "radius".into(),
                "interactions".into(),
                "zooms".into(),
                "goal".into()
            ],
            &widths
        )
    );
    let net = transport::generate(&TransportConfig::with_neighborhoods(50, 9));
    let goal = PathQuery::parse("tram*.cinema", net.graph.labels()).unwrap();
    for radius in [1u32, 2, 3] {
        let config = SessionConfig {
            initial_radius: radius,
            ..SessionConfig::default()
        };
        let mut strategy = strategies(1).remove(0).1;
        let outcome = run_session(&net.graph, &goal, strategy.as_mut(), config);
        println!(
            "{}",
            row(
                &[
                    "transport-50".into(),
                    radius.to_string(),
                    outcome.stats.interactions.to_string(),
                    outcome.stats.zooms.to_string(),
                    goal_reached(&net.graph, &goal, &outcome).to_string(),
                ],
                &widths
            )
        );
    }
    println!();
}
