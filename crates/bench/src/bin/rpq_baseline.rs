//! `rpq_baseline` — records the RPQ-evaluation backend baseline.
//!
//! Times `PathQuery::evaluate` on the adjacency-list and CSR backends over
//! the transport and scale-free datasets (the same configurations as the
//! `rpq_eval` Criterion bench) and writes the results to `BENCH_rpq.json`
//! in the current directory, so regressions and backend parity can be
//! tracked across PRs.
//!
//! Samples for the two backends are interleaved round-robin so slow clock
//! or thermal drift cannot bias the comparison one way.
//!
//! ```text
//! cargo run --release -p gps-bench --bin rpq_baseline
//! ```

use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_graph::{CsrGraph, Graph, LabelId};
use gps_rpq::PathQuery;
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Record {
    dataset: &'static str,
    backend: &'static str,
    nodes: usize,
    edges: usize,
    query: String,
    mean_ns: f64,
    min_ns: f64,
    iterations: u64,
}

const SAMPLES: usize = 30;

/// Calibrates an iteration count for `f` targeting ~5 ms per sample.
fn calibrate<O>(f: &mut impl FnMut() -> O) -> u64 {
    let start = Instant::now();
    black_box(f());
    let single = start.elapsed().max(Duration::from_nanos(1));
    (Duration::from_millis(5).as_nanos() / single.as_nanos()).clamp(1, 20_000) as u64
}

/// One timed sample: mean ns per call over `iters` calls.
fn sample<O>(iters: u64, f: &mut impl FnMut() -> O) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn summarize(samples: &[f64]) -> (f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

fn bench_pair(dataset: &'static str, graph: &Graph, query: &PathQuery, records: &mut Vec<Record>) {
    let csr = CsrGraph::from_graph(graph);
    let syntax = query.display(graph.labels());

    let mut run_adjacency = || query.evaluate(graph);
    let mut run_csr = || query.evaluate(&csr);

    // Warm both paths, then interleave the timed samples.
    let adjacency_iters = calibrate(&mut run_adjacency);
    let csr_iters = calibrate(&mut run_csr);
    let mut adjacency_samples = Vec::with_capacity(SAMPLES);
    let mut csr_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        adjacency_samples.push(sample(adjacency_iters, &mut run_adjacency));
        csr_samples.push(sample(csr_iters, &mut run_csr));
    }

    let (mean, min) = summarize(&adjacency_samples);
    records.push(Record {
        dataset,
        backend: "adjacency",
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        query: syntax.clone(),
        mean_ns: mean,
        min_ns: min,
        iterations: adjacency_iters,
    });
    let (mean, min) = summarize(&csr_samples);
    records.push(Record {
        dataset,
        backend: "csr",
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        query: syntax,
        mean_ns: mean,
        min_ns: min,
        iterations: csr_iters,
    });
}

fn main() {
    let mut records = Vec::new();

    let net = transport::generate(&TransportConfig::with_neighborhoods(600, 7));
    let transport_query = PathQuery::parse("(tram+bus)*.cinema", net.graph.labels())
        .expect("transport alphabet contains the motivating labels");
    bench_pair("transport-600", &net.graph, &transport_query, &mut records);

    let sf = scale_free::generate(&ScaleFreeConfig {
        nodes: 2_000,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let name = |i: u32| sf.labels().name(LabelId::new(i)).unwrap().to_string();
    let sf_query = PathQuery::parse(
        &format!("({}+{})*.{}", name(0), name(1), name(2)),
        sf.labels(),
    )
    .expect("scale-free alphabet has at least three labels");
    bench_pair("scale-free-2000", &sf, &sf_query, &mut records);

    // Render the records as JSON by hand (stable field order, no extra deps).
    let mut out = String::from(
        "{\n  \"benchmark\": \"rpq_eval_backend_baseline\",\n  \"unit\": \"ns_per_eval\",\n  \"records\": [\n",
    );
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"nodes\": {}, \"edges\": {}, \"query\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"iterations\": {}}}{}\n",
            r.dataset,
            r.backend,
            r.nodes,
            r.edges,
            r.query.replace('"', "\\\""),
            r.mean_ns,
            r.min_ns,
            r.iterations,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_rpq.json", &out).expect("write BENCH_rpq.json");
    println!("{out}");

    // Parity check mirrors the PR acceptance criterion: CSR at parity or
    // faster than the adjacency backend on every dataset (with a small
    // tolerance for timer noise).
    for pair in records.chunks(2) {
        let (adjacency, csr) = (&pair[0], &pair[1]);
        let ratio = csr.min_ns / adjacency.min_ns;
        println!(
            "{}: csr/adjacency min ratio = {ratio:.3} ({})",
            adjacency.dataset,
            if ratio <= 1.05 {
                "parity or faster"
            } else {
                "SLOWER"
            },
        );
    }
}
