//! `rpq_baseline` — records the RPQ-evaluation baseline across eval modes.
//!
//! Times query evaluation on the transport and scale-free datasets across
//! every execution mode of the system and writes the results to
//! `BENCH_rpq.json` in the current directory, so regressions and mode
//! speedups can be tracked across PRs:
//!
//! * `adjacency-naive` — node-at-a-time evaluator on the mutable store;
//! * `csr-naive` — node-at-a-time evaluator on the CSR snapshot;
//! * `csr-frontier` — the `gps-exec` frontier engine (planner-chosen plan);
//! * `batch-naive-loop` / `batch-frontier-seq` / `batch-frontier-parallel`
//!   — a multi-query batch workload evaluated query-by-query vs. through
//!   the shared-scratch batch API vs. the scoped-thread parallel executor
//!   (per-batch timings);
//! * `session-naive` / `session-frontier` / `session-parallel` — full
//!   interactive specification sessions (simulated user, informative-paths
//!   strategy, path validation) per engine `EvalMode`, reported as
//!   **ns per interaction** so interactions/sec is `1e9 / mean_ns`;
//! * `sessions-sequential` / `concurrent-sessions-w{1,4,8}` — a batch of
//!   whole sessions driven directly one-by-one vs. through the
//!   `GpsService`/`SessionManager` worker pool over one shared `EngineCore`,
//!   reported as **ns per session** so sessions/sec is `1e9 / mean_ns`;
//! * `update-publish` — staging + publishing one small live-update batch
//!   through the epoch-versioned store (delta compaction, label-partition
//!   index patch, bounded-word cache inheritance, epoch swap), reported as
//!   **ns per publish**;
//! * `sessions-static` / `sessions-during-updates` — the same session batch
//!   served over a never-updated store vs. a store that publishes a live
//!   update mid-batch (new sessions land on the new epoch), reported as
//!   **ns per session** — the cost of serving *while* the graph changes;
//! * `durable-publish` / `memory-publish` — the identical publish through a
//!   file-backed store (WAL append + commit fsync + amortized checkpoints)
//!   vs. the default in-memory store, reported as **ns per publish** — the
//!   price of durability;
//! * `recovery` — reopening a durable store whose log holds 32 committed
//!   publishes past its checkpoint (checkpoint decode + full WAL replay),
//!   reported as **ns per open**;
//! * `telemetry-disabled` / `telemetry-enabled` — the identical session
//!   batch served with no metrics registry vs. a live one wired through
//!   exec, cache, sessions and service, reported as **ns per session** —
//!   the price of observability (bounded by the smoke floor);
//! * the scale-out group (`scale-free-1m` in a full run, `scale-free-100k`
//!   under `--smoke`): streamed corpus build vs. Graph-then-compact (wall
//!   time plus **peak heap bytes** from the counting allocator, in the
//!   `*-peak-bytes` pseudo-records), sequential vs. sharded label-index
//!   build, dense vs. sparse frontier evaluation of a low-reach chain
//!   query, sequential vs. parallel batch evaluation, and publish latency
//!   with sequential vs. sharded index patching.
//!
//! Samples for the compared modes are interleaved round-robin so clock or
//! thermal drift cannot bias the comparison one way.
//!
//! ```text
//! cargo run --release -p gps-bench --bin rpq_baseline [-- --smoke]
//! ```
//!
//! With `--smoke` the sample counts shrink and the run *asserts* the
//! acceptance floors (frontier beating naive on scale-free, parallel batch
//! beating the single-query loop, frontier-backed sessions at least as fast
//! as naive-backed ones), exiting non-zero on a perf regression — this is
//! the CI guard.

use gps_automata::Dfa;
use gps_core::service::GpsService;
use gps_core::versioned::{GraphUpdate, VersionedStore};
use gps_core::{Engine, EvalMode};
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_datasets::updates::{update_stream, UpdateStreamConfig};
use gps_datasets::Workload;
use gps_exec::BatchEvaluator;
use gps_graph::{CsrGraph, DeltaGraph, Graph, LabelId};
use gps_graph::{NodeId, UpdateOp};
use gps_interactive::strategy::InformativePathsStrategy;
use gps_interactive::user::SimulatedUser;
use gps_rpq::{DfaEvaluator, PathQuery};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The system allocator wrapped with live/peak byte counters, so the corpus
/// builds of the scale-out group can report their true peak heap footprint.
/// Relaxed atomics only — the tracking cost is a few nanoseconds per
/// allocation and identical for every interleaved arm.
mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Counting wrapper around [`System`].
    pub struct CountingAlloc;

    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    fn on_alloc(size: usize) {
        let now = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc_zeroed(layout);
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = System.realloc(ptr, layout, new_size);
            if !new_ptr.is_null() {
                on_dealloc(layout.size());
                on_alloc(new_size);
            }
            new_ptr
        }
    }

    /// Resets the peak to the current live footprint and returns that base.
    pub fn reset_peak() -> usize {
        let live = LIVE.load(Ordering::Relaxed);
        PEAK.store(live, Ordering::Relaxed);
        live
    }

    /// Peak bytes allocated beyond `base` since the last [`reset_peak`].
    pub fn peak_since(base: usize) -> usize {
        PEAK.load(Ordering::Relaxed).saturating_sub(base)
    }
}

#[global_allocator]
static GLOBAL: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

struct Record {
    dataset: String,
    backend: &'static str,
    nodes: usize,
    edges: usize,
    query: String,
    mean_ns: f64,
    min_ns: f64,
    iterations: u64,
}

/// Calibrates an iteration count for `f` targeting ~5 ms per sample.
fn calibrate<O>(f: &mut impl FnMut() -> O) -> u64 {
    let start = Instant::now();
    black_box(f());
    let single = start.elapsed().max(Duration::from_nanos(1));
    (Duration::from_millis(5).as_nanos() / single.as_nanos()).clamp(1, 20_000) as u64
}

/// One timed sample: mean ns per call over `iters` calls.
fn sample<O>(iters: u64, f: &mut impl FnMut() -> O) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn summarize(samples: &[f64]) -> (f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

/// Times a set of labeled closures with interleaved (round-robin) samples
/// and appends one record per closure.
fn bench_group(
    dataset: &str,
    graph_size: (usize, usize),
    query: &str,
    samples: usize,
    runners: &mut [(&'static str, &mut dyn FnMut())],
    records: &mut Vec<Record>,
) {
    let iters: Vec<u64> = runners.iter_mut().map(|(_, f)| calibrate(f)).collect();
    let mut all_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); runners.len()];
    for _ in 0..samples {
        for ((series, (_, f)), &iters) in all_samples.iter_mut().zip(runners.iter_mut()).zip(&iters)
        {
            series.push(sample(iters, f));
        }
    }
    for (((name, _), series), &iterations) in runners.iter().zip(&all_samples).zip(&iters) {
        let (mean_ns, min_ns) = summarize(series);
        records.push(Record {
            dataset: dataset.to_string(),
            backend: name,
            nodes: graph_size.0,
            edges: graph_size.1,
            query: query.to_string(),
            mean_ns,
            min_ns,
            iterations,
        });
    }
}

fn single_query_records(
    dataset: &str,
    graph: &Graph,
    query: &PathQuery,
    samples: usize,
    records: &mut Vec<Record>,
) {
    let csr = CsrGraph::from_graph(graph);
    let frontier = BatchEvaluator::from_csr(&csr);
    let syntax = query.display(graph.labels());
    let dfa = query.dfa();

    let mut run_adjacency = || {
        black_box(query.evaluate(graph));
    };
    let mut run_csr = || {
        black_box(query.evaluate(&csr));
    };
    let mut run_frontier = || {
        black_box(frontier.evaluate(dfa));
    };
    bench_group(
        dataset,
        (graph.node_count(), graph.edge_count()),
        &syntax,
        samples,
        &mut [
            ("adjacency-naive", &mut run_adjacency),
            ("csr-naive", &mut run_csr),
            ("csr-frontier", &mut run_frontier),
        ],
        records,
    );
}

fn batch_records(workload: &Workload, samples: usize, threads: usize, records: &mut Vec<Record>) {
    let csr = CsrGraph::from_graph(&workload.graph);
    let frontier = BatchEvaluator::from_csr(&csr);
    let dfas: Vec<&Dfa> = workload.queries.queries.iter().map(|q| q.dfa()).collect();

    let mut run_loop = || {
        black_box(
            workload
                .queries
                .queries
                .iter()
                .map(|q| q.evaluate_csr(&csr))
                .collect::<Vec<_>>(),
        );
    };
    let mut run_seq = || {
        black_box(frontier.evaluate_many(&dfas));
    };
    let mut run_parallel = || {
        black_box(frontier.evaluate_many_parallel(&dfas, threads));
    };
    bench_group(
        &workload.name,
        (workload.graph.node_count(), workload.graph.edge_count()),
        &format!("batch of {} queries", dfas.len()),
        samples,
        &mut [
            ("batch-naive-loop", &mut run_loop),
            ("batch-frontier-seq", &mut run_seq),
            ("batch-frontier-parallel", &mut run_parallel),
        ],
        records,
    );
}

/// Times full interactive sessions per [`EvalMode`] and appends one record
/// per mode with `mean_ns` normalized **per interaction**.
///
/// Engine construction (snapshot + index build) happens once per mode
/// outside the timed region — it is per-deployment cost, not per-session —
/// while the timed closure runs a complete session end to end: goal-driven
/// simulated user, informative-paths strategy, zooming, path validation,
/// learning and pruning.
fn session_records(graph: &Graph, goal_syntax: &str, samples: usize, records: &mut Vec<Record>) {
    let modes = [
        ("session-naive", EvalMode::Naive),
        ("session-frontier", EvalMode::Frontier),
        ("session-parallel", EvalMode::Parallel),
    ];
    let engines: Vec<_> = modes
        .iter()
        .map(|&(_, mode)| {
            Engine::builder(graph.clone())
                .eval_mode(mode)
                .max_interactions(24)
                .build_csr()
        })
        .collect();
    // One untimed run per mode: warms the per-snapshot structural baseline
    // (bounded-word counts) the way a long-lived service would be warm, and
    // pins the interaction count — sessions are deterministic, and the
    // conformance suite guarantees every mode produces the identical
    // transcript.
    let interactions: Vec<usize> = engines
        .iter()
        .map(|engine| {
            let goal = engine.parse_query(goal_syntax).expect("goal parses");
            let mut user = SimulatedUser::with_exec(goal, engine.eval_handle());
            let mut session = engine.new_session();
            session
                .run(&mut InformativePathsStrategy::default(), &mut user)
                .stats
                .interactions
        })
        .collect();
    assert!(
        interactions.windows(2).all(|w| w[0] == w[1]),
        "eval modes must run identical sessions: {interactions:?}"
    );
    let per_session = interactions[0].max(1) as f64;

    // Each timed sample is a *fresh task*: the query cache is cleared so the
    // goal answer, every new hypothesis and every dirty-set query is really
    // evaluated by the mode's engine (a service sees a different goal per
    // session); repeated hypotheses within the session still hit the cache.
    type Runner<'a> = (&'static str, Box<dyn FnMut() + 'a>);
    let mut runners: Vec<Runner<'_>> = engines
        .iter()
        .zip(&modes)
        .map(|(engine, &(name, _))| {
            let closure: Box<dyn FnMut()> = Box::new(move || {
                engine.eval_cache().clear();
                let goal = engine.parse_query(goal_syntax).expect("goal parses");
                let mut user = SimulatedUser::with_exec(goal, engine.eval_handle());
                let mut session = engine.new_session();
                black_box(session.run(&mut InformativePathsStrategy::default(), &mut user));
            });
            (name, closure)
        })
        .collect();
    let mut refs: Vec<(&'static str, &mut dyn FnMut())> = runners
        .iter_mut()
        .map(|(name, f)| (*name, f.as_mut() as &mut dyn FnMut()))
        .collect();
    let before = records.len();
    bench_group(
        "scale-free-2000-session",
        (graph.node_count(), graph.edge_count()),
        &format!("session({goal_syntax}) x{} interactions", interactions[0]),
        samples,
        &mut refs,
        records,
    );
    // Normalize the session records from ns/session to ns/interaction.
    for record in &mut records[before..] {
        record.mean_ns /= per_session;
        record.min_ns /= per_session;
    }
}

/// Times a batch of whole interactive sessions per serving shape and appends
/// one record per shape with `mean_ns` normalized **per session**:
///
/// * `sessions-sequential` — the single-user shape: sessions driven directly
///   on the engine one after the other (no session table, no workers);
/// * `concurrent-sessions-wN` — the service shape: the same goals fanned out
///   over N worker threads through a `SessionManager` on one shared core.
///
/// Every shape runs the identical goal batch over one shared frontier-mode
/// core, so the comparison isolates the service machinery (session table,
/// per-session locks, worker handoff).  The query cache is cleared before
/// each sample so every batch pays the real per-task evaluation cost.
fn concurrent_session_records(
    graph: &Graph,
    goal_syntaxes: &[String],
    samples: usize,
    records: &mut Vec<Record>,
) {
    let engine = Engine::builder(graph.clone())
        .eval_mode(EvalMode::Frontier)
        .max_interactions(24)
        .build_csr();
    let service = GpsService::new(engine.core_handle());
    let sessions = goal_syntaxes.len() as f64;

    let mut run_sequential = || {
        engine.eval_cache().clear();
        for syntax in goal_syntaxes {
            let goal = engine.parse_query(syntax).expect("goal parses");
            let mut user = SimulatedUser::with_exec(goal, engine.eval_handle());
            let mut session = engine.new_session();
            black_box(session.run(&mut InformativePathsStrategy::default(), &mut user));
        }
    };
    let workers_runner = |workers: usize| {
        let service = &service;
        let engine = &engine;
        move || {
            engine.eval_cache().clear();
            black_box(
                service
                    .serve(goal_syntaxes, workers)
                    .expect("goals parse and sessions halt"),
            );
        }
    };
    let mut run_w1 = workers_runner(1);
    let mut run_w4 = workers_runner(4);
    let mut run_w8 = workers_runner(8);
    let before = records.len();
    bench_group(
        "scale-free-2000-service",
        (graph.node_count(), graph.edge_count()),
        &format!("batch of {} sessions", goal_syntaxes.len()),
        samples,
        &mut [
            ("sessions-sequential", &mut run_sequential),
            ("concurrent-sessions-w1", &mut run_w1),
            ("concurrent-sessions-w4", &mut run_w4),
            ("concurrent-sessions-w8", &mut run_w8),
        ],
        records,
    );
    // Normalize from ns/batch to ns/session.
    for record in &mut records[before..] {
        record.mean_ns /= sessions;
        record.min_ns /= sessions;
    }
}

/// An endlessly repeatable live-update workload: insertion ops drawn from
/// the streamed update workload or an explicit batch, published as
/// alternating add / remove batches so the graph oscillates around the base
/// snapshot instead of drifting — every publish exercises the full
/// machinery (compaction, partition patch, word inheritance, epoch swap,
/// per-epoch answer recomputation) while graph size stays put.
struct OscillatingUpdates {
    adds: Vec<UpdateOp>,
    removes: Vec<UpdateOp>,
    toggle: std::cell::Cell<bool>,
}

impl OscillatingUpdates {
    /// Insertion batch sampled from the streamed update workload (graph
    /// labels, attachment-biased endpoints).
    fn from_stream(graph: &Graph, batch: usize, seed: u64) -> Self {
        Self::from_adds(update_stream(
            graph,
            &UpdateStreamConfig {
                operations: batch,
                insert_ratio: 1.0,
                new_node_ratio: 0.0,
                seed,
            },
        ))
    }

    /// Builds the oscillation from an explicit insertion batch.
    fn from_adds(adds: Vec<UpdateOp>) -> Self {
        let removes = adds
            .iter()
            .map(|op| match op {
                UpdateOp::AddEdge {
                    source,
                    label,
                    target,
                } => UpdateOp::RemoveEdge {
                    source: source.clone(),
                    label: label.clone(),
                    target: target.clone(),
                },
                other => unreachable!("insert-only stream produced {other:?}"),
            })
            .collect();
        Self {
            adds,
            removes,
            toggle: std::cell::Cell::new(false),
        }
    }

    fn next(&self) -> GraphUpdate {
        let removing = self.toggle.replace(!self.toggle.get());
        GraphUpdate::from_ops(if removing {
            self.removes.clone()
        } else {
            self.adds.clone()
        })
    }
}

/// Times one publish of a small update batch through the versioned store
/// (`update-publish`, ns per publish), and the same session batch served
/// over a static store vs. one that publishes mid-batch (`sessions-static`
/// vs. `sessions-during-updates`, ns per session).
fn live_update_records(
    graph: &Graph,
    goal_syntaxes: &[String],
    samples: usize,
    records: &mut Vec<Record>,
) {
    let build = || {
        GpsService::new(
            Engine::builder(graph.clone())
                .eval_mode(EvalMode::Frontier)
                .max_interactions(24)
                .build_core(),
        )
    };
    let size = (graph.node_count(), graph.edge_count());

    // Publish latency alone: alternating 4-op add/remove batches straight
    // off the streamed workload (graph labels, hub-biased endpoints).
    let publish_service = build();
    let publish_updates = OscillatingUpdates::from_stream(graph, 4, 23);
    // Warm the word cache the way a serving deployment is warm, so the
    // publish pays the realistic inheritance cost, not an empty-cache one.
    publish_service.core().eval_cache().bounded_words(4);
    let mut run_publish = || {
        black_box(
            publish_service
                .update(publish_updates.next())
                .expect("oscillating updates always apply"),
        );
    };
    bench_group(
        "scale-free-2000-live",
        size,
        "publish of 4 update ops",
        samples,
        &mut [("update-publish", &mut run_publish)],
        records,
    );

    // Sessions over a static store vs. sessions with one publish landing
    // mid-batch (a read-heavy serving ratio: one small write per ~200
    // sessions).  Both shapes serve the identical goal list (24x the service
    // goals) on one worker and pay exactly one cold evaluation segment per
    // sample: the static shape starts from a cleared answer cache (a fresh
    // deployment), the live shape starts warm but its mid-batch publish
    // moves the second half of the sessions onto a fresh epoch — cold
    // answers, inherited word snapshots and a patched index (the MVCC
    // machinery this floor guards).  The oscillating edges connect
    // *low-degree* nodes under a label no goal query uses: hub-attached
    // edges genuinely lengthen every downstream specification dialogue
    // (that is workload change, not serving overhead), while leaf edges
    // keep the measured sessions comparable between the two graph states —
    // so the ratio isolates the cost of the publish machinery itself.
    let goals: Vec<String> = goal_syntaxes
        .iter()
        .cycle()
        .take(goal_syntaxes.len() * 24)
        .cloned()
        .collect();
    let sessions = goals.len() as f64;
    let static_service = build();
    let live_service = build();
    let leaf_edges: Vec<UpdateOp> = {
        // The lowest-degree nodes (late arrivals in preferential attachment),
        // paired up: u -live-> v.
        let mut by_degree: Vec<NodeId> = graph.nodes().collect();
        by_degree.sort_by_key(|&n| (graph.out_degree(n) + graph.in_degree(n), n.index()));
        by_degree
            .chunks(2)
            .take(4)
            .filter(|pair| pair.len() == 2)
            .map(|pair| UpdateOp::AddEdge {
                source: graph.node_name(pair[0]).to_string(),
                label: "live".to_string(),
                target: graph.node_name(pair[1]).to_string(),
            })
            .collect()
    };
    let live_updates = OscillatingUpdates::from_adds(leaf_edges);
    let mut run_static = || {
        static_service.core().eval_cache().clear();
        black_box(static_service.serve(&goals, 1).expect("sessions halt"));
    };
    let mut run_live = || {
        for (i, goal) in goals.iter().enumerate() {
            if i == goals.len() / 2 {
                live_service
                    .update(live_updates.next())
                    .expect("oscillating updates always apply");
            }
            black_box(live_service.serve_one(goal).expect("sessions halt"));
        }
    };
    let before = records.len();
    bench_group(
        "scale-free-2000-live",
        size,
        &format!("batch of {} sessions, one mid-batch publish", goals.len()),
        samples,
        &mut [
            ("sessions-static", &mut run_static),
            ("sessions-during-updates", &mut run_live),
        ],
        records,
    );
    // Normalize from ns/batch to ns/session.
    for record in &mut records[before..] {
        record.mean_ns /= sessions;
        record.min_ns /= sessions;
    }
}

/// Times what delta-driven answer migration buys at publish time, on a warm
/// 16-query answer cache and a 4-op leaf publish under the fresh label
/// `live` (disjoint from every query's DFA alphabet, so every entry is a
/// Tier-1 carry):
///
/// * `publish-ivm` / `post-publish-first-eval-ivm` — the migrating path:
///   the publish carries the cache across the epoch, and the first
///   post-publish read of all 16 queries answers from it;
/// * `publish-coldstart` / `post-publish-first-eval-coldstart` — the
///   pre-migration behavior, simulated by clearing the answer cache before
///   the publish: the first read re-evaluates everything from scratch.
///
/// The arms are interleaved sample by sample so clock or thermal drift
/// cannot bias the ratio; each sample is one whole publish + first-read
/// cycle (`iterations: 1`).
/// The 16-query warm set over the generated `a0..a3` alphabet shared by the
/// IVM groups.
fn warm_query_set(graph: &Graph) -> Vec<PathQuery> {
    let name = |i: u32| graph.labels().name(LabelId::new(i)).unwrap().to_string();
    let l: Vec<String> = (0..4).map(name).collect();
    [
        l[0].clone(),
        l[1].clone(),
        l[2].clone(),
        l[3].clone(),
        format!("{}.{}", l[0], l[1]),
        format!("{}.{}", l[1], l[2]),
        format!("{}.{}", l[2], l[3]),
        format!("{}.{}", l[3], l[0]),
        format!("{}*", l[0]),
        format!("{}*.{}", l[1], l[2]),
        format!("({}+{})*.{}", l[0], l[1], l[2]),
        format!("({}+{})*.{}", l[2], l[3], l[0]),
        format!("{}.{}*", l[0], l[1]),
        format!("({}+{}).{}", l[0], l[2], l[3]),
        format!("{}.{}.{}", l[1], l[2], l[3]),
        format!("({}+{})*.{}", l[1], l[3], l[2]),
    ]
    .iter()
    .map(|s| PathQuery::parse(s, graph.labels()).expect("query over the generated alphabet"))
    .collect()
}

fn ivm_records(graph: &Graph, samples: usize, records: &mut Vec<Record>) {
    let size = (graph.node_count(), graph.edge_count());
    let queries = warm_query_set(graph);

    let build = || {
        GpsService::new(
            Engine::builder(graph.clone())
                .eval_mode(EvalMode::Frontier)
                .max_interactions(24)
                .build_core(),
        )
    };
    let leaf_edges: Vec<UpdateOp> = {
        let mut by_degree: Vec<NodeId> = graph.nodes().collect();
        by_degree.sort_by_key(|&n| (graph.out_degree(n) + graph.in_degree(n), n.index()));
        by_degree
            .chunks(2)
            .take(4)
            .filter(|pair| pair.len() == 2)
            .map(|pair| UpdateOp::AddEdge {
                source: graph.node_name(pair[0]).to_string(),
                label: "live".to_string(),
                target: graph.node_name(pair[1]).to_string(),
            })
            .collect()
    };
    let ivm = build();
    let cold = build();
    let ivm_updates = OscillatingUpdates::from_adds(leaf_edges.clone());
    let cold_updates = OscillatingUpdates::from_adds(leaf_edges);
    // Warm both deployments the way a serving store is warm: answer cache
    // and word snapshots populated.
    for service in [&ivm, &cold] {
        let core = service.core();
        let cache = core.eval_cache();
        cache.bounded_words(4);
        for q in &queries {
            black_box(cache.evaluate_compiled(q.regex(), q.dfa()));
        }
    }

    let mut publish_ivm = Vec::with_capacity(samples);
    let mut eval_ivm = Vec::with_capacity(samples);
    let mut publish_cold = Vec::with_capacity(samples);
    let mut eval_cold = Vec::with_capacity(samples);
    let first_eval = |service: &GpsService, series: &mut Vec<f64>| {
        let core = service.core();
        let cache = core.eval_cache();
        let start = Instant::now();
        for q in &queries {
            black_box(cache.evaluate_compiled(q.regex(), q.dfa()));
        }
        series.push(start.elapsed().as_nanos() as f64);
    };
    for _ in 0..samples {
        // Migrating arm: the publish carries the warm cache forward.
        let start = Instant::now();
        let report = ivm
            .update(ivm_updates.next())
            .expect("leaf publish applies");
        publish_ivm.push(start.elapsed().as_nanos() as f64);
        assert_eq!(
            report.carried_answers,
            queries.len(),
            "the label-disjoint leaf publish must carry the whole cache"
        );
        first_eval(&ivm, &mut eval_ivm);

        // Cold-start arm: identical publish, but the cache is emptied first
        // (the pre-migration epoch swap had nothing to migrate).
        cold.core().eval_cache().clear();
        let start = Instant::now();
        cold.update(cold_updates.next())
            .expect("leaf publish applies");
        publish_cold.push(start.elapsed().as_nanos() as f64);
        first_eval(&cold, &mut eval_cold);
    }
    let query = format!(
        "publish of 4 leaf ops + first eval of {} warm queries",
        queries.len()
    );
    for (backend, series) in [
        ("publish-ivm", &publish_ivm),
        ("publish-coldstart", &publish_cold),
        ("post-publish-first-eval-ivm", &eval_ivm),
        ("post-publish-first-eval-coldstart", &eval_cold),
    ] {
        let (mean_ns, min_ns) = summarize(series);
        records.push(Record {
            dataset: "scale-free-2000-ivm".to_string(),
            backend,
            nodes: size.0,
            edges: size.1,
            query: query.clone(),
            mean_ns,
            min_ns,
            iterations: 1,
        });
    }
}

/// Times what the Tier-3 delete-aware resume buys on *removal-bearing*
/// publishes, on the same warm 16-query cache:
///
/// * `publish-delete-ivm` / `post-publish-first-eval-delete-ivm` — every
///   publish removes four existing `a0..a3` edges and inserts four others
///   (a mixed delta touching every query alphabet), the warm cache is
///   migrated through the over-delete/re-derive sweep, and the first
///   post-publish read of all 16 queries answers from it;
/// * `publish-delete-coldstart` / `post-publish-first-eval-delete-coldstart`
///   — the pre-Tier-3 behavior, simulated by clearing the answer cache
///   before the identical publish: the first read re-evaluates everything.
///
/// The removed edges originate at in-degree-0 nodes, so each over-delete
/// cone is confined to the source configuration itself — the shape the
/// delete path is built for (bounded removals on a big warm graph).  The
/// two edge sets alternate (remove A / add B, then remove B / add A), so the
/// graph oscillates around the base snapshot and every sample is a genuinely
/// mixed insert+delete publish.  Arms are interleaved sample by sample.
fn ivm_delete_records(graph: &Graph, samples: usize, records: &mut Vec<Record>) {
    let size = (graph.node_count(), graph.edge_count());
    let queries = warm_query_set(graph);

    // Eight distinct in-degree-0 sources with at least one outgoing edge:
    // the first four donate an existing edge (set A), the last four get a
    // fresh alphabet edge (set B).
    let leaf_sources: Vec<NodeId> = {
        let mut nodes: Vec<NodeId> = graph
            .nodes()
            .filter(|&n| graph.in_degree(n) == 0 && graph.out_degree(n) > 0)
            .collect();
        nodes.sort_by_key(|n| n.index());
        nodes
    };
    assert!(
        leaf_sources.len() >= 8,
        "scale-free graph has in-degree-0 attachment sources"
    );
    let edge = |source: NodeId| -> (String, String, String) {
        let (label, target) = graph
            .successors(source)
            .next()
            .expect("source filtered for out-degree > 0");
        (
            graph.node_name(source).to_string(),
            graph.labels().name(label).unwrap().to_string(),
            graph.node_name(target).to_string(),
        )
    };
    let set_a: Vec<(String, String, String)> = leaf_sources[..4].iter().map(|&n| edge(n)).collect();
    let set_b: Vec<(String, String, String)> = leaf_sources[4..8]
        .iter()
        .enumerate()
        .map(|(i, &source)| {
            // A fresh edge under a rotated alphabet label; in-degree-0
            // sources guarantee it cannot already exist with this target
            // unless the source already points there — rotate the label
            // until it does not.
            let (_, _, target) = edge(source);
            let target_id = graph.node_by_name(&target).unwrap();
            let label = (0..4u32)
                .map(|k| LabelId::new((i as u32 + k) % 4))
                .find(|&l| !graph.has_edge(source, l, target_id))
                .expect("some alphabet label is free for this pair");
            (
                graph.node_name(source).to_string(),
                graph.labels().name(label).unwrap().to_string(),
                target,
            )
        })
        .collect();
    let mixed = |removes: &[(String, String, String)], adds: &[(String, String, String)]| {
        let mut update = GraphUpdate::new();
        for (source, label, target) in removes {
            update = update.remove_edge(source.clone(), label.clone(), target.clone());
        }
        for (source, label, target) in adds {
            update = update.add_edge(source.clone(), label.clone(), target.clone());
        }
        update
    };

    let build = || {
        GpsService::new(
            Engine::builder(graph.clone())
                .eval_mode(EvalMode::Frontier)
                .max_interactions(24)
                .build_core(),
        )
    };
    let ivm = build();
    let cold = build();
    for service in [&ivm, &cold] {
        let core = service.core();
        let cache = core.eval_cache();
        cache.bounded_words(4);
        for q in &queries {
            black_box(cache.evaluate_compiled(q.regex(), q.dfa()));
        }
    }

    let mut publish_ivm = Vec::with_capacity(samples);
    let mut eval_ivm = Vec::with_capacity(samples);
    let mut publish_cold = Vec::with_capacity(samples);
    let mut eval_cold = Vec::with_capacity(samples);
    let first_eval = |service: &GpsService, series: &mut Vec<f64>| {
        let core = service.core();
        let cache = core.eval_cache();
        let start = Instant::now();
        for q in &queries {
            black_box(cache.evaluate_compiled(q.regex(), q.dfa()));
        }
        series.push(start.elapsed().as_nanos() as f64);
    };
    for sample in 0..samples {
        let (removes, adds) = if sample % 2 == 0 {
            (&set_a, &set_b)
        } else {
            (&set_b, &set_a)
        };

        // Migrating arm: the mixed publish delete-reseeds the touched
        // entries and carries the rest — nothing falls back to cold.
        let start = Instant::now();
        let report = ivm
            .update(mixed(removes, adds))
            .expect("mixed publish applies");
        publish_ivm.push(start.elapsed().as_nanos() as f64);
        assert!(
            report.delete_reseeded_answers > 0,
            "the alphabet-touching removals must take the delete-aware resume"
        );
        assert_eq!(
            report.recomputed_answers, 0,
            "leaf removals stay far under the saturation budget"
        );
        first_eval(&ivm, &mut eval_ivm);

        // Cold-start arm: identical publish against an emptied cache.
        cold.core().eval_cache().clear();
        let start = Instant::now();
        cold.update(mixed(removes, adds))
            .expect("mixed publish applies");
        publish_cold.push(start.elapsed().as_nanos() as f64);
        first_eval(&cold, &mut eval_cold);
    }
    let query = format!(
        "mixed publish of 4 removals + 4 inserts + first eval of {} warm queries",
        queries.len()
    );
    for (backend, series) in [
        ("publish-delete-ivm", &publish_ivm),
        ("publish-delete-coldstart", &publish_cold),
        ("post-publish-first-eval-delete-ivm", &eval_ivm),
        ("post-publish-first-eval-delete-coldstart", &eval_cold),
    ] {
        let (mean_ns, min_ns) = summarize(series);
        records.push(Record {
            dataset: "scale-free-2000-ivm".to_string(),
            backend,
            nodes: size.0,
            edges: size.1,
            query: query.clone(),
            mean_ns,
            min_ns,
            iterations: 1,
        });
    }
}

/// Times the identical oscillating publish through a file-backed store vs.
/// the in-memory one (`durable-publish` / `memory-publish`, ns per publish,
/// interleaved so disk or thermal drift cannot bias the ratio), then full
/// recovery of a 32-publish log (`recovery`, ns per open: checkpoint decode,
/// WAL replay through delta compaction, index patch and cache inheritance).
fn durable_records(graph: &Graph, samples: usize, records: &mut Vec<Record>) {
    let size = (graph.node_count(), graph.edge_count());
    let base = std::env::temp_dir().join(format!("gps-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let builder = |checkpoint_every: u64| {
        Engine::builder(graph.clone())
            .eval_mode(EvalMode::Frontier)
            .max_interactions(24)
            .checkpoint_every_n_publishes(checkpoint_every)
    };

    // Publish latency, durable vs. in-memory, with the default checkpoint
    // cadence so the durable number includes its amortized checkpoint cost.
    let publish_dir = base.join("publish");
    let (durable, _) =
        VersionedStore::open_durable(&publish_dir, builder(32)).expect("durable store opens");
    let memory = VersionedStore::new(builder(32).build_core());
    let durable_updates = OscillatingUpdates::from_stream(graph, 4, 23);
    let memory_updates = OscillatingUpdates::from_stream(graph, 4, 23);
    durable.latest().eval_cache().bounded_words(4);
    memory.latest().eval_cache().bounded_words(4);
    let mut run_durable = || {
        black_box(
            durable
                .update(durable_updates.next())
                .expect("oscillating updates always apply"),
        );
    };
    let mut run_memory = || {
        black_box(
            memory
                .update(memory_updates.next())
                .expect("oscillating updates always apply"),
        );
    };
    bench_group(
        "scale-free-2000-durable",
        size,
        "publish of 4 update ops",
        samples,
        &mut [
            ("durable-publish", &mut run_durable),
            ("memory-publish", &mut run_memory),
        ],
        records,
    );
    drop(durable);

    // Recovery: a base checkpoint plus 32 committed publishes with
    // re-checkpointing disabled, so every reopen replays the whole tail.
    const RECOVERY_PUBLISHES: usize = 32;
    let recovery_dir = base.join("recovery");
    {
        let (store, _) =
            VersionedStore::open_durable(&recovery_dir, builder(0)).expect("durable store opens");
        let updates = OscillatingUpdates::from_stream(graph, 4, 29);
        for _ in 0..RECOVERY_PUBLISHES {
            store
                .update(updates.next())
                .expect("oscillating updates always apply");
        }
    }
    let mut run_recovery = || {
        let (store, report) =
            VersionedStore::open_durable(&recovery_dir, builder(0)).expect("recovery succeeds");
        assert_eq!(report.replayed_publishes, RECOVERY_PUBLISHES);
        black_box(store.current_epoch());
    };
    bench_group(
        "scale-free-2000-durable",
        size,
        &format!("recovery of {RECOVERY_PUBLISHES} publishes"),
        samples,
        &mut [("recovery", &mut run_recovery)],
        records,
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// Times the identical session batch with telemetry off vs. on
/// (`telemetry-disabled` / `telemetry-enabled`, ns per session, interleaved).
/// The disabled path is one branch per would-be record, so the two shapes
/// must stay within noise of each other; the smoke floor pins that down.
/// Returns the enabled service so the smoke run can validate its exports
/// after real traffic.
fn telemetry_records(
    graph: &Graph,
    goal_syntaxes: &[String],
    samples: usize,
    records: &mut Vec<Record>,
) -> GpsService {
    use gps_core::telemetry::MetricsRegistry;
    let build = |registry: Option<std::sync::Arc<MetricsRegistry>>| {
        let mut builder = Engine::builder(graph.clone())
            .eval_mode(EvalMode::Frontier)
            .max_interactions(24);
        if let Some(registry) = registry {
            builder = builder.metrics(registry);
        }
        GpsService::new(builder.build_core())
    };
    let disabled = build(None);
    let enabled = build(Some(std::sync::Arc::new(MetricsRegistry::enabled())));
    let sessions = goal_syntaxes.len() as f64;

    let mut run_disabled = || {
        disabled.core().eval_cache().clear();
        black_box(
            disabled
                .serve(goal_syntaxes, 1)
                .expect("goals parse and sessions halt"),
        );
    };
    let mut run_enabled = || {
        enabled.core().eval_cache().clear();
        black_box(
            enabled
                .serve(goal_syntaxes, 1)
                .expect("goals parse and sessions halt"),
        );
    };
    let before = records.len();
    bench_group(
        "scale-free-2000-telemetry",
        (graph.node_count(), graph.edge_count()),
        &format!("batch of {} sessions", goal_syntaxes.len()),
        samples,
        &mut [
            ("telemetry-disabled", &mut run_disabled),
            ("telemetry-enabled", &mut run_enabled),
        ],
        records,
    );
    // Normalize from ns/batch to ns/session.
    for record in &mut records[before..] {
        record.mean_ns /= sessions;
        record.min_ns /= sessions;
    }
    enabled
}

/// The scale-out group: a 4-edges-per-node, 8-label scale-free corpus at
/// 1M nodes (full run) or 100k nodes (`--smoke`), measuring the pieces that
/// make that size tractable:
///
/// * `build-streamed` vs. `build-graph-then-compact` — the streamed
///   `CsrGraph` builder vs. materializing the mutable `Graph` first, wall
///   time per build plus `*-peak-bytes` pseudo-records whose `mean_ns`
///   holds the **peak heap bytes** of one build (counting allocator);
/// * `index-build-seq` vs. `index-build-sharded` — `LabelIndex`
///   construction sequentially vs. fanned out across all cores;
/// * `eval-dense-frontier` vs. `eval-sparse-frontier` — the low-reach
///   reseed path: re-deriving a 6-hop chain answer from its captured
///   [`EvalResume`] seed after a 6-edge insert-only delta, under the dense
///   vs. the two-level sparse frontier representation (same shared index).
///   The resume frontier holds only the delta's consequences — a handful of
///   nodes out of a million — which is the population regime the sparse
///   sets' `O(population)` clears and scans are built for (a cold full
///   evaluation seeds *every* node into the accepting frontier, so it never
///   exercises the sparse representation's favourable regime);
/// * `batch-eval-seq` vs. `batch-eval-parallel` — 8 chain queries through
///   the shared-scratch batch API vs. the scoped-thread executor;
/// * `publish-seq` vs. `publish-sharded` — one 4-op leaf publish through
///   the epoch-versioned store with the index patched on 1 shard vs. all
///   cores (`GpsBuilder::index_shards`).
///
/// Returns the dataset name so the caller can check the smoke floors.
fn scale_records(smoke: bool, records: &mut Vec<Record>) -> &'static str {
    use gps_automata::Regex;
    use gps_datasets::streamed;
    use gps_exec::{FrontierPolicy, LabelIndex};
    use std::sync::Arc;

    let (dataset, nodes) = if smoke {
        ("scale-free-100k", 100_000)
    } else {
        ("scale-free-1m", 1_000_000)
    };
    let config = ScaleFreeConfig {
        nodes,
        edges_per_node: 4,
        alphabet_size: 8,
        skewed_labels: true,
        seed: 42,
    };
    let samples = if smoke { 4 } else { 5 };
    let cores = std::thread::available_parallelism().map_or(1, |x| x.get());

    // Corpus build: streamed vs. Graph-then-compact, interleaved, with the
    // peak heap footprint of each arm measured relative to the live bytes
    // when it starts.
    let build_samples = if smoke { 2 } else { 1 };
    let mut streamed_ns = Vec::with_capacity(build_samples);
    let mut compact_ns = Vec::with_capacity(build_samples);
    let mut streamed_peak = 0usize;
    let mut compact_peak = 0usize;
    let mut last: Option<CsrGraph> = None;
    for _ in 0..build_samples {
        drop(last.take()); // free the previous sample before measuring the next
        let base = alloc_track::reset_peak();
        let start = Instant::now();
        let csr = streamed::generate_csr(&config);
        streamed_ns.push(start.elapsed().as_nanos() as f64);
        streamed_peak = streamed_peak.max(alloc_track::peak_since(base));
        last = Some(csr);

        let base = alloc_track::reset_peak();
        let start = Instant::now();
        let reference = CsrGraph::from_graph(&scale_free::generate(&config));
        compact_ns.push(start.elapsed().as_nanos() as f64);
        compact_peak = compact_peak.max(alloc_track::peak_since(base));
        assert_eq!(
            reference.edge_count(),
            last.as_ref().expect("streamed build ran").edge_count(),
            "the streamed builder must produce the identical corpus"
        );
    }
    let snapshot = Arc::new(last.expect("at least one build sample"));
    let (n, m) = (snapshot.node_count(), snapshot.edge_count());
    for (backend, series) in [
        ("build-streamed", &streamed_ns),
        ("build-graph-then-compact", &compact_ns),
    ] {
        let (mean_ns, min_ns) = summarize(series);
        records.push(Record {
            dataset: dataset.to_string(),
            backend,
            nodes: n,
            edges: m,
            query: "corpus build".to_string(),
            mean_ns,
            min_ns,
            iterations: 1,
        });
    }
    for (backend, peak) in [
        ("build-streamed-peak-bytes", streamed_peak),
        ("build-graph-then-compact-peak-bytes", compact_peak),
    ] {
        records.push(Record {
            dataset: dataset.to_string(),
            backend,
            nodes: n,
            edges: m,
            query: "peak heap bytes during one corpus build".to_string(),
            mean_ns: peak as f64,
            min_ns: peak as f64,
            iterations: 1,
        });
    }

    // Label-index build: sequential vs. sharded across every core.  On a
    // 1-core machine the sharded call takes the literal sequential code
    // path (no threads are spawned), so the smoke floor holds everywhere.
    let mut run_seq = || {
        black_box(LabelIndex::from_csr_sharded(&snapshot, 1));
    };
    let mut run_sharded = || {
        black_box(LabelIndex::from_csr_sharded(&snapshot, cores));
    };
    bench_group(
        dataset,
        (n, m),
        "label-index build",
        samples,
        &mut [
            ("index-build-seq", &mut run_seq),
            ("index-build-sharded", &mut run_sharded),
        ],
        records,
    );

    // Low-reach evaluation: the reseed path.  Capture the 6-hop chain's
    // alive sets once, insert a 6-edge path spelling the query between
    // existing nodes, then re-derive the answer from the seed.  The resume
    // frontier carries only the delta's consequences, so its population is
    // a handful of nodes out of `n` — the regime the two-level sparse
    // representation is built for.  Both evaluators share one patched index
    // (the clone copies Arcs, not partitions).
    let labels: Vec<LabelId> = (0..8).map(LabelId::new).collect();
    let chain = |seq: &[usize]| {
        Dfa::from_regex(&Regex::concat(
            seq.iter().map(|&i| Regex::symbol(labels[i])),
        ))
    };
    let chain_labels = [4usize, 5, 6, 7, 4, 5];
    let low_reach = chain(&chain_labels);
    let cold_eval = BatchEvaluator::from_csr_sharded(&snapshot, cores)
        .with_frontier_policy(FrontierPolicy::Dense);
    let (_, resume) = cold_eval.evaluate_dfa_captured(&low_reach);
    let resume = resume.expect("a completed frontier fixed point always captures");
    let mut delta_graph = DeltaGraph::new(Arc::clone(&snapshot));
    for (i, &label) in chain_labels.iter().enumerate() {
        delta_graph.add_edge(
            NodeId::from(n - 8 + i),
            labels[label],
            NodeId::from(n - 7 + i),
        );
    }
    let summary = delta_graph.delta();
    let patched = delta_graph.compact();
    let dense_eval = cold_eval.apply_delta(&patched, &summary);
    let sparse_eval = dense_eval
        .clone()
        .with_frontier_policy(FrontierPolicy::Sparse);
    let (dense_resumed, _) = dense_eval
        .evaluate_dfa_resumed(&low_reach, &resume, &summary)
        .expect("insert-only deltas are resumable");
    let (sparse_resumed, _) = sparse_eval
        .evaluate_dfa_resumed(&low_reach, &resume, &summary)
        .expect("insert-only deltas are resumable");
    assert_eq!(
        dense_resumed, sparse_resumed,
        "frontier representations must agree"
    );
    assert_eq!(
        dense_resumed,
        dense_eval.evaluate(&low_reach),
        "the resumed answer must match a cold evaluation of the patched graph"
    );
    let mut run_dense = || {
        black_box(dense_eval.evaluate_dfa_resumed(&low_reach, &resume, &summary));
    };
    let mut run_sparse = || {
        black_box(sparse_eval.evaluate_dfa_resumed(&low_reach, &resume, &summary));
    };
    bench_group(
        dataset,
        (n, m),
        "reseed of a 6-hop chain after a 6-edge delta",
        samples,
        &mut [
            ("eval-dense-frontier", &mut run_dense),
            ("eval-sparse-frontier", &mut run_sparse),
        ],
        records,
    );

    // Batch evaluation: 8 chain queries, shared-scratch sequential vs. the
    // scoped-thread parallel executor, auto frontier selection.
    let batch_dfas: Vec<Dfa> = (0..8)
        .map(|s| chain(&[s, (s + 1) % 8, (s + 2) % 8, (s + 3) % 8]))
        .collect();
    let refs: Vec<&Dfa> = batch_dfas.iter().collect();
    let auto_eval = dense_eval
        .clone()
        .with_frontier_policy(FrontierPolicy::Auto);
    let mut run_batch_seq = || {
        black_box(auto_eval.evaluate_many(&refs));
    };
    let mut run_batch_par = || {
        black_box(auto_eval.evaluate_many_parallel(&refs, cores));
    };
    bench_group(
        dataset,
        (n, m),
        "batch of 8 chain queries",
        samples,
        &mut [
            ("batch-eval-seq", &mut run_batch_seq),
            ("batch-eval-parallel", &mut run_batch_par),
        ],
        records,
    );

    // Publish latency: the same 4-op leaf publish through two stores over
    // the *same* snapshot Arc (no copy), one patching its index on a single
    // shard, one fanning the patch across every core.
    let store_for = |shards: usize| {
        VersionedStore::new(
            Engine::builder(Graph::new())
                .eval_mode(EvalMode::Frontier)
                .index_shards(shards)
                .max_interactions(24)
                .build_core_over(Arc::clone(&snapshot)),
        )
    };
    let adds: Vec<UpdateOp> = (0..4)
        .map(|i| UpdateOp::AddEdge {
            source: format!("v{}", n - 1 - 2 * i),
            label: "live".to_string(),
            target: format!("v{}", n - 2 - 2 * i),
        })
        .collect();
    let seq_store = store_for(1);
    let sharded_store = store_for(cores);
    let seq_updates = OscillatingUpdates::from_adds(adds.clone());
    let sharded_updates = OscillatingUpdates::from_adds(adds);
    let mut run_publish_seq = || {
        black_box(
            seq_store
                .update(seq_updates.next())
                .expect("leaf publish applies"),
        );
    };
    let mut run_publish_sharded = || {
        black_box(
            sharded_store
                .update(sharded_updates.next())
                .expect("leaf publish applies"),
        );
    };
    bench_group(
        dataset,
        (n, m),
        "publish of 4 leaf ops",
        samples,
        &mut [
            ("publish-seq", &mut run_publish_seq),
            ("publish-sharded", &mut run_publish_sharded),
        ],
        records,
    );
    dataset
}

fn mean_of(records: &[Record], dataset: &str, backend: &str) -> f64 {
    records
        .iter()
        .find(|r| r.dataset == dataset && r.backend == backend)
        .map(|r| r.mean_ns)
        .unwrap_or(f64::NAN)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = if smoke { 8 } else { 30 };
    let mut records = Vec::new();

    let net = transport::generate(&TransportConfig::with_neighborhoods(600, 7));
    let transport_query = PathQuery::parse("(tram+bus)*.cinema", net.graph.labels())
        .expect("transport alphabet contains the motivating labels");
    single_query_records(
        "transport-600",
        &net.graph,
        &transport_query,
        samples,
        &mut records,
    );

    let sf = scale_free::generate(&ScaleFreeConfig {
        nodes: 2_000,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let name = |i: u32| sf.labels().name(LabelId::new(i)).unwrap().to_string();
    let sf_syntax = format!("({}+{})*.{}", name(0), name(1), name(2));
    let sf_query = PathQuery::parse(&sf_syntax, sf.labels())
        .expect("scale-free alphabet has at least three labels");
    single_query_records("scale-free-2000", &sf, &sf_query, samples, &mut records);

    let batch = Workload::scale_free_batch(2_000, 16, 11);
    let threads = BatchEvaluator::default_threads();
    batch_records(&batch, samples, threads, &mut records);

    // Interactive sessions: a goal that produces a realistic mixed-label
    // specification dialogue (positives, negatives, zooms) on the same
    // scale-free graph — negatives are what exercise coverage, pruning and
    // the dirty-set sweeps.
    let session_syntax = format!("{}.{}*.{}", name(2), name(0), name(1));
    let session_samples = if smoke { 4 } else { 12 };
    session_records(&sf, &session_syntax, session_samples, &mut records);

    // Multi-session serving: a batch of specification tasks with a mix of
    // goals (distinct goals stress the shared cache the way distinct users
    // would; repeats profit from it the way popular queries do).
    let service_goals: Vec<String> = vec![
        format!("({}+{})*.{}", name(0), name(1), name(2)),
        session_syntax.clone(),
        name(2).to_string(),
        format!("({}+{})*.{}", name(0), name(1), name(2)),
        format!("{}*.{}", name(1), name(2)),
        session_syntax.clone(),
        name(2).to_string(),
        format!("({}+{})*.{}", name(0), name(1), name(2)),
    ];
    concurrent_session_records(&sf, &service_goals, session_samples, &mut records);

    // Live updates: publish latency through the epoch-versioned store, and
    // session throughput while updates are being published mid-batch.
    live_update_records(&sf, &service_goals, session_samples, &mut records);

    // Incremental answer maintenance: publish + first post-publish read
    // with the answer cache migrated across the epoch vs. cold-started —
    // first on label-disjoint insert-only publishes (Tier-1 carry), then on
    // mixed insert+delete publishes (Tier-3 delete-reseed).
    ivm_records(&sf, session_samples, &mut records);
    ivm_delete_records(&sf, session_samples, &mut records);

    // Durability: the same publish through the file-backed store, and
    // recovery (checkpoint + WAL replay) of a 32-publish log.
    durable_records(&sf, session_samples, &mut records);

    // Observability: the identical session batch with telemetry off vs. on.
    let instrumented = telemetry_records(&sf, &service_goals, session_samples, &mut records);

    // Scale-out: the million-node group (100k under --smoke).
    let scale_dataset = scale_records(smoke, &mut records);

    // Render the records as JSON by hand (stable field order, no extra
    // deps), stamped with the machine profile numbers depend on.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "{{\n  \"benchmark\": \"rpq_eval_mode_baseline\",\n  \"unit\": \"ns_per_eval\",\n  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {}}},\n  \"records\": [\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cores,
    );
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"nodes\": {}, \"edges\": {}, \"query\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"iterations\": {}}}{}\n",
            r.dataset,
            r.backend,
            r.nodes,
            r.edges,
            r.query.replace('"', "\\\""),
            r.mean_ns,
            r.min_ns,
            r.iterations,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");

    if !smoke {
        std::fs::write("BENCH_rpq.json", &out).expect("write BENCH_rpq.json");
    }
    println!("{out}");

    // Headline ratios.  The full run reports them; the smoke run (CI)
    // asserts conservative floors so perf regressions fail the build
    // loudly without tripping on runner noise.
    let mut failures = Vec::new();
    for dataset in ["transport-600", "scale-free-2000"] {
        let naive = mean_of(&records, dataset, "csr-naive");
        let frontier = mean_of(&records, dataset, "csr-frontier");
        let speedup = naive / frontier;
        println!("{dataset}: frontier speedup over csr-naive = {speedup:.2}x");
        // Written so that a NaN (missing record — e.g. a renamed dataset or
        // backend string) fails the guard rather than vacuously passing.
        if smoke && dataset == "scale-free-2000" && (speedup.is_nan() || speedup < 1.3) {
            failures.push(format!(
                "{dataset}: frontier speedup {speedup:.2}x below the 1.3x smoke floor"
            ));
        }
    }
    let batch_name = &batch.name;
    let naive_loop = mean_of(&records, batch_name, "batch-naive-loop");
    let seq = mean_of(&records, batch_name, "batch-frontier-seq");
    let parallel = mean_of(&records, batch_name, "batch-frontier-parallel");
    println!(
        "{batch_name}: loop/seq = {:.2}x, loop/parallel = {:.2}x ({threads} threads)",
        naive_loop / seq,
        naive_loop / parallel,
    );
    if smoke && (parallel.is_nan() || naive_loop.is_nan() || parallel >= naive_loop) {
        failures.push(format!(
            "{batch_name}: parallel batch ({parallel:.0} ns) not faster than the single-query loop ({naive_loop:.0} ns)"
        ));
    }
    let session_dataset = "scale-free-2000-session";
    let session_naive = mean_of(&records, session_dataset, "session-naive");
    let session_frontier = mean_of(&records, session_dataset, "session-frontier");
    let session_parallel = mean_of(&records, session_dataset, "session-parallel");
    let session_speedup = session_naive / session_frontier;
    println!(
        "{session_dataset}: frontier sessions {:.0} interactions/sec vs naive {:.0} ({session_speedup:.2}x, parallel {:.0})",
        1e9 / session_frontier,
        1e9 / session_naive,
        1e9 / session_parallel,
    );
    // Sessions must never regress below the naive baseline; the measured
    // ratio is ~2x, so a 1.2x floor guards regressions without tripping on
    // runner noise (written so a missing record — NaN — fails rather than
    // vacuously passing).
    if smoke && (session_speedup.is_nan() || session_speedup < 1.2) {
        failures.push(format!(
            "{session_dataset}: frontier-backed sessions ({session_frontier:.0} ns/interaction, {session_speedup:.2}x) below the 1.2x smoke floor over naive ({session_naive:.0} ns/interaction)"
        ));
    }
    let service_dataset = "scale-free-2000-service";
    let sequential = mean_of(&records, service_dataset, "sessions-sequential");
    let w1 = mean_of(&records, service_dataset, "concurrent-sessions-w1");
    let w4 = mean_of(&records, service_dataset, "concurrent-sessions-w4");
    let w8 = mean_of(&records, service_dataset, "concurrent-sessions-w8");
    println!(
        "{service_dataset}: sequential {:.0} sessions/sec; service {:.0} (1 worker) / {:.0} (4) / {:.0} (8)",
        1e9 / sequential,
        1e9 / w1,
        1e9 / w4,
        1e9 / w8,
    );
    // The service machinery (session table, per-session locks, worker
    // handoff) must cost < ~10% per session: on a 1-core container the
    // concurrent shapes cannot beat sequential, but a single service worker
    // must stay within 0.9x of the bare sequential loop (NaN — a missing
    // record — fails rather than vacuously passing).
    let service_ratio = sequential / w1;
    if smoke && (service_ratio.is_nan() || service_ratio < 0.9) {
        failures.push(format!(
            "{service_dataset}: one service worker at {:.2}x of sequential per-session throughput ({w1:.0} vs {sequential:.0} ns/session), below the 0.9x smoke floor",
            service_ratio
        ));
    }
    let live_dataset = "scale-free-2000-live";
    let publish = mean_of(&records, live_dataset, "update-publish");
    let static_sessions = mean_of(&records, live_dataset, "sessions-static");
    let during = mean_of(&records, live_dataset, "sessions-during-updates");
    let live_ratio = static_sessions / during;
    println!(
        "{live_dataset}: publish {:.0} µs; sessions {:.0}/sec static vs {:.0}/sec during updates ({live_ratio:.2}x)",
        publish / 1e3,
        1e9 / static_sessions,
        1e9 / during,
    );
    // Serving while publishing must stay within 0.9x of the static-snapshot
    // baseline — the whole point of patching the index and inheriting the
    // word cache instead of rebuilding per epoch (NaN — a missing record —
    // fails rather than vacuously passing).
    if smoke && (live_ratio.is_nan() || live_ratio < 0.9) {
        failures.push(format!(
            "{live_dataset}: sessions during updates at {live_ratio:.2}x of static throughput ({during:.0} vs {static_sessions:.0} ns/session), below the 0.9x smoke floor"
        ));
    }
    if smoke && publish.is_nan() {
        failures.push(format!("{live_dataset}: missing update-publish record"));
    }
    let ivm_dataset = "scale-free-2000-ivm";
    let post_ivm = mean_of(&records, ivm_dataset, "post-publish-first-eval-ivm");
    let post_cold = mean_of(&records, ivm_dataset, "post-publish-first-eval-coldstart");
    let publish_ivm = mean_of(&records, ivm_dataset, "publish-ivm");
    let publish_coldstart = mean_of(&records, ivm_dataset, "publish-coldstart");
    let ivm_speedup = post_cold / post_ivm;
    println!(
        "{ivm_dataset}: first post-publish read of 16 warm queries {:.1} µs carried vs {:.1} µs cold ({ivm_speedup:.1}x); publish {:.1} µs with migration vs {:.1} µs cold-start",
        post_ivm / 1e3,
        post_cold / 1e3,
        publish_ivm / 1e3,
        publish_coldstart / 1e3,
    );
    // The whole point of answer migration: a label-disjoint publish must
    // leave untouched queries answerable far faster than re-evaluating them
    // from scratch.  The measured gap is orders of magnitude (cache hits vs
    // 16 frontier fixed points); 5x is the conservative smoke floor (NaN —
    // a missing record — fails rather than vacuously passing).
    if smoke && (ivm_speedup.is_nan() || ivm_speedup < 5.0) {
        failures.push(format!(
            "{ivm_dataset}: carried post-publish reads at {ivm_speedup:.1}x of cold re-evaluation ({post_ivm:.0} vs {post_cold:.0} ns), below the 5x smoke floor"
        ));
    }
    if smoke && (publish_ivm.is_nan() || publish_coldstart.is_nan()) {
        failures.push(format!("{ivm_dataset}: missing publish records"));
    }
    let post_delete_ivm = mean_of(&records, ivm_dataset, "post-publish-first-eval-delete-ivm");
    let post_delete_cold = mean_of(
        &records,
        ivm_dataset,
        "post-publish-first-eval-delete-coldstart",
    );
    let publish_delete_ivm = mean_of(&records, ivm_dataset, "publish-delete-ivm");
    let publish_delete_cold = mean_of(&records, ivm_dataset, "publish-delete-coldstart");
    let delete_speedup = post_delete_cold / post_delete_ivm;
    println!(
        "{ivm_dataset}: first post-publish read after a mixed delete {:.1} µs delete-reseeded vs {:.1} µs cold ({delete_speedup:.1}x); publish {:.1} µs with migration vs {:.1} µs cold-start",
        post_delete_ivm / 1e3,
        post_delete_cold / 1e3,
        publish_delete_ivm / 1e3,
        publish_delete_cold / 1e3,
    );
    // The point of the Tier-3 path: removal-bearing publishes no longer
    // cold-start the cache, so the first post-publish read must beat the
    // 16-fixed-point re-evaluation comfortably.  The expected gap on this
    // graph is ~cache-hit vs frontier-eval (well over 5x); 2x is the
    // conservative smoke floor (NaN — a missing record — fails rather than
    // vacuously passing).
    if smoke && (delete_speedup.is_nan() || delete_speedup < 2.0) {
        failures.push(format!(
            "{ivm_dataset}: delete-reseeded post-publish reads at {delete_speedup:.1}x of cold re-evaluation ({post_delete_ivm:.0} vs {post_delete_cold:.0} ns), below the 2x smoke floor"
        ));
    }
    if smoke && (publish_delete_ivm.is_nan() || publish_delete_cold.is_nan()) {
        failures.push(format!("{ivm_dataset}: missing delete publish records"));
    }
    let durable_dataset = "scale-free-2000-durable";
    let durable_publish = mean_of(&records, durable_dataset, "durable-publish");
    let memory_publish = mean_of(&records, durable_dataset, "memory-publish");
    let recovery = mean_of(&records, durable_dataset, "recovery");
    let durable_overhead = durable_publish / memory_publish;
    println!(
        "{durable_dataset}: durable publish {:.0} µs vs in-memory {:.0} µs ({durable_overhead:.2}x); recovery of 32 publishes {:.2} ms",
        durable_publish / 1e3,
        memory_publish / 1e3,
        recovery / 1e6,
    );
    // Durability buys a WAL append per stage and an fsync per publish; that
    // must stay a bounded multiple of the in-memory publish, not a cliff.
    // The observed ratio is single-digit; 100x is the generous smoke ceiling
    // that still catches pathologies like checkpointing on every publish
    // (written so a NaN — a missing record — fails rather than vacuously
    // passing).
    if smoke && (!durable_overhead.is_finite() || durable_overhead > 100.0) {
        failures.push(format!(
            "{durable_dataset}: durable publish at {durable_overhead:.1}x of in-memory ({durable_publish:.0} vs {memory_publish:.0} ns/publish), above the 100x smoke ceiling"
        ));
    }
    if smoke && recovery.is_nan() {
        failures.push(format!("{durable_dataset}: missing recovery record"));
    }
    let telemetry_dataset = "scale-free-2000-telemetry";
    let telemetry_off = mean_of(&records, telemetry_dataset, "telemetry-disabled");
    let telemetry_on = mean_of(&records, telemetry_dataset, "telemetry-enabled");
    let telemetry_ratio = telemetry_off / telemetry_on;
    println!(
        "{telemetry_dataset}: {:.0} sessions/sec disabled vs {:.0}/sec enabled ({telemetry_ratio:.2}x)",
        1e9 / telemetry_off,
        1e9 / telemetry_on,
    );
    // The instrumented path must keep at least 95% of the uninstrumented
    // throughput — the disabled side of every metric is one branch, and the
    // enabled side is a relaxed atomic add, so a bigger gap means someone
    // put real work (allocation, locking, formatting) on the hot path
    // (written so a NaN — a missing record — fails rather than vacuously
    // passing).
    if smoke && (telemetry_ratio.is_nan() || telemetry_ratio < 0.95) {
        failures.push(format!(
            "{telemetry_dataset}: instrumented sessions at {telemetry_ratio:.2}x of uninstrumented throughput ({telemetry_on:.0} vs {telemetry_off:.0} ns/session), below the 0.95x smoke floor"
        ));
    }
    let scale_seq_build = mean_of(&records, scale_dataset, "index-build-seq");
    let scale_sharded_build = mean_of(&records, scale_dataset, "index-build-sharded");
    let scale_build_ratio = scale_seq_build / scale_sharded_build;
    let scale_dense = mean_of(&records, scale_dataset, "eval-dense-frontier");
    let scale_sparse = mean_of(&records, scale_dataset, "eval-sparse-frontier");
    let scale_sparse_ratio = scale_dense / scale_sparse;
    let scale_streamed_peak = mean_of(&records, scale_dataset, "build-streamed-peak-bytes");
    let scale_compact_peak = mean_of(
        &records,
        scale_dataset,
        "build-graph-then-compact-peak-bytes",
    );
    let scale_streamed_build = mean_of(&records, scale_dataset, "build-streamed");
    let scale_compact_build = mean_of(&records, scale_dataset, "build-graph-then-compact");
    let scale_publish_seq = mean_of(&records, scale_dataset, "publish-seq");
    let scale_publish_sharded = mean_of(&records, scale_dataset, "publish-sharded");
    println!(
        "{scale_dataset}: streamed build {:.0} ms / {:.0} MiB peak vs graph-then-compact {:.0} ms / {:.0} MiB peak; sharded index build {scale_build_ratio:.2}x of sequential; sparse low-reach reseed {scale_sparse_ratio:.2}x of dense; publish {:.1} ms on 1 shard vs {:.1} ms sharded",
        scale_streamed_build / 1e6,
        scale_streamed_peak / (1024.0 * 1024.0),
        scale_compact_build / 1e6,
        scale_compact_peak / (1024.0 * 1024.0),
        scale_publish_seq / 1e6,
        scale_publish_sharded / 1e6,
    );
    // Sharding must never cost throughput: on one core the sharded build is
    // the literal sequential code path, on many cores it should win — 0.95x
    // absorbs runner noise either way (NaN — a missing record — fails
    // rather than vacuously passing).
    if smoke && (scale_build_ratio.is_nan() || scale_build_ratio < 0.95) {
        failures.push(format!(
            "{scale_dataset}: sharded index build at {scale_build_ratio:.2}x of sequential ({scale_sharded_build:.0} vs {scale_seq_build:.0} ns/build), below the 0.95x smoke floor"
        ));
    }
    // Sparse frontiers must at least match dense on the low-reach reseed
    // path — that is the auto-selection premise (0.95x absorbs noise).
    if smoke && (scale_sparse_ratio.is_nan() || scale_sparse_ratio < 0.95) {
        failures.push(format!(
            "{scale_dataset}: sparse low-reach reseed at {scale_sparse_ratio:.2}x of dense ({scale_sparse:.0} vs {scale_dense:.0} ns/eval), below the 0.95x smoke floor"
        ));
    }
    // The streamed builder's whole point is peak memory well below the
    // Graph-then-compact path (NaN — a missing record — fails too).
    if smoke
        && (scale_streamed_peak.is_nan()
            || scale_compact_peak.is_nan()
            || scale_streamed_peak >= 0.9 * scale_compact_peak)
    {
        failures.push(format!(
            "{scale_dataset}: streamed build peak ({scale_streamed_peak:.0} bytes) not well below graph-then-compact ({scale_compact_peak:.0} bytes)"
        ));
    }
    if smoke && (scale_publish_seq.is_nan() || scale_publish_sharded.is_nan()) {
        failures.push(format!("{scale_dataset}: missing publish records"));
    }
    // The smoke run also proves the exports off the instrumented service are
    // well-formed after real traffic: the JSON document parses and the
    // Prometheus exposition passes the grammar validator with the headline
    // series present.
    if smoke {
        let json = instrumented.metrics_json();
        if let Err(err) = gps_core::telemetry::validate_json(&json) {
            failures.push(format!("{telemetry_dataset}: invalid JSON export: {err}"));
        }
        let text = instrumented.metrics_text();
        if let Err(err) = gps_core::telemetry::validate_prometheus_text(&text) {
            failures.push(format!(
                "{telemetry_dataset}: invalid Prometheus export: {err}"
            ));
        }
        for series in [
            "gps_exec_eval_latency_ns",
            "gps_rpq_cache_misses_total",
            "gps_service_sessions_opened_total",
            "gps_interactive_interactions_total",
        ] {
            if !text.contains(series) {
                failures.push(format!(
                    "{telemetry_dataset}: Prometheus export missing {series}"
                ));
            }
        }
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("SMOKE FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}
