//! E3 — learning-algorithm scaling.
//!
//! Measures the end-to-end learner (path selection + PTA + state merging +
//! state elimination) as a function of the number of examples and of the
//! goal-query complexity, on transport networks.  The companion paper proves
//! polynomial-time learning; the bench verifies the constant factors stay
//! interactive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_datasets::transport::{self, TransportConfig};
use gps_learner::characteristic::partial_sample;
use gps_learner::Learner;
use gps_rpq::PathQuery;
use std::hint::black_box;

fn bench_examples_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning/examples");
    group.sample_size(20);
    let net = transport::generate(&TransportConfig::with_neighborhoods(100, 5));
    let graph = net.graph;
    let goal = PathQuery::parse("(tram+bus)*.cinema", graph.labels()).unwrap();
    for examples_count in [4usize, 8, 16, 32] {
        let sample = partial_sample(&graph, &goal, examples_count / 2, examples_count / 2);
        let learner = Learner::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(examples_count),
            &examples_count,
            |b, _| b.iter(|| black_box(learner.learn(&graph, &sample))),
        );
    }
    group.finish();
}

fn bench_query_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning/goal_complexity");
    group.sample_size(20);
    let net = transport::generate(&TransportConfig::with_neighborhoods(60, 5));
    let graph = net.graph;
    let goals = [
        ("1_label", "cinema"),
        ("2_star", "tram*.cinema"),
        ("3_union_star", "(tram+bus)*.cinema"),
    ];
    let learner = Learner::default();
    for (name, syntax) in goals {
        let goal = PathQuery::parse(syntax, graph.labels()).unwrap();
        let sample = partial_sample(&graph, &goal, 8, 8);
        group.bench_function(name, |b| {
            b.iter(|| black_box(learner.learn(&graph, &sample)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_examples_scaling, bench_query_complexity);
criterion_main!(benches);
