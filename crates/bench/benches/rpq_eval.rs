//! E5 / F1 — RPQ evaluation throughput.
//!
//! Measures product-graph evaluation of path queries of increasing automaton
//! size on graphs of increasing size (synthetic and transport), plus the
//! Figure 1 motivating query as a sanity anchor.  The paper's system must
//! answer queries interactively; this bench verifies the evaluation substrate
//! scales far beyond demo size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_automata::Dfa;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::synthetic::{self, SyntheticConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_datasets::Workload;
use gps_exec::BatchEvaluator;
use gps_graph::CsrGraph;
use gps_rpq::PathQuery;
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let (graph, _) = figure1_graph();
    let query = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    let csr = CsrGraph::from_graph(&graph);
    c.bench_function("rpq_eval/figure1_motivating_query", |b| {
        b.iter(|| black_box(query.evaluate_csr(&csr)))
    });
}

fn bench_synthetic_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval/synthetic_size");
    group.sample_size(20);
    for nodes in [100usize, 500, 2000] {
        let graph = synthetic::generate(&SyntheticConfig::with_nodes(nodes, 7));
        let query = PathQuery::parse("(a0+a1)*.a2", graph.labels()).unwrap();
        let csr = CsrGraph::from_graph(&graph);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(query.evaluate_csr(&csr)))
        });
    }
    group.finish();
}

fn bench_query_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval/query_size");
    group.sample_size(20);
    let net = transport::generate(&TransportConfig::with_neighborhoods(100, 7));
    let graph = net.graph;
    let csr = CsrGraph::from_graph(&graph);
    let queries = [
        ("1_label", "cinema"),
        ("2_star", "tram*.cinema"),
        ("3_union_star", "(tram+bus)*.cinema"),
        ("4_nested", "(tram+bus)*.(cinema+restaurant)"),
    ];
    for (name, syntax) in queries {
        let query = PathQuery::parse(syntax, graph.labels()).unwrap();
        group.bench_function(name, |b| b.iter(|| black_box(query.evaluate_csr(&csr))));
    }
    group.finish();
}

/// Backend comparison: the same `PathQuery::evaluate` generic entry point on
/// the adjacency-list backend vs. the CSR snapshot, on the transport and
/// scale-free datasets.  CSR is expected to be at parity or faster (the
/// acceptance criterion of the `GraphBackend` redesign).
fn bench_backend_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval/backend");
    group.sample_size(20);

    let net = transport::generate(&TransportConfig::with_neighborhoods(600, 7));
    let transport_graph = net.graph;
    let transport_query = PathQuery::parse("(tram+bus)*.cinema", transport_graph.labels()).unwrap();
    let transport_csr = CsrGraph::from_graph(&transport_graph);
    group.bench_with_input(
        BenchmarkId::new("transport", "adjacency"),
        &transport_graph,
        |b, g| b.iter(|| black_box(transport_query.evaluate(g))),
    );
    group.bench_with_input(
        BenchmarkId::new("transport", "csr"),
        &transport_csr,
        |b, g| b.iter(|| black_box(transport_query.evaluate(g))),
    );

    let sf_graph = scale_free::generate(&ScaleFreeConfig {
        nodes: 2_000,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let sf_syntax = format!(
        "({first}+{second})*.{third}",
        first = sf_graph.labels().name(gps_graph::LabelId::new(0)).unwrap(),
        second = sf_graph.labels().name(gps_graph::LabelId::new(1)).unwrap(),
        third = sf_graph.labels().name(gps_graph::LabelId::new(2)).unwrap(),
    );
    let sf_query = PathQuery::parse(&sf_syntax, sf_graph.labels()).unwrap();
    let sf_csr = CsrGraph::from_graph(&sf_graph);
    group.bench_with_input(
        BenchmarkId::new("scale_free", "adjacency"),
        &sf_graph,
        |b, g| b.iter(|| black_box(sf_query.evaluate(g))),
    );
    group.bench_with_input(BenchmarkId::new("scale_free", "csr"), &sf_csr, |b, g| {
        b.iter(|| black_box(sf_query.evaluate(g)))
    });

    group.finish();
}

/// Eval-mode comparison: the naive node-at-a-time evaluator vs. the
/// `gps-exec` frontier engine on the same CSR snapshot (single query), on
/// the scale-free workload the PR acceptance criterion is measured on.
fn bench_eval_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval/mode");
    group.sample_size(20);
    let sf_graph = scale_free::generate(&ScaleFreeConfig {
        nodes: 2_000,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let sf_syntax = format!(
        "({}+{})*.{}",
        sf_graph.labels().name(gps_graph::LabelId::new(0)).unwrap(),
        sf_graph.labels().name(gps_graph::LabelId::new(1)).unwrap(),
        sf_graph.labels().name(gps_graph::LabelId::new(2)).unwrap(),
    );
    let query = PathQuery::parse(&sf_syntax, sf_graph.labels()).unwrap();
    let csr = CsrGraph::from_graph(&sf_graph);
    let frontier = BatchEvaluator::from_csr(&csr);
    group.bench_function("scale_free/naive", |b| {
        b.iter(|| black_box(query.evaluate_csr(&csr)))
    });
    group.bench_function("scale_free/frontier", |b| {
        b.iter(|| black_box(frontier.evaluate(query.dfa())))
    });
    group.finish();
}

/// Batch workload: a 16-query batch evaluated query-by-query (naive loop)
/// vs. the shared-scratch sequential batch API vs. the scoped-thread
/// parallel executor.
fn bench_batch_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval/batch");
    group.sample_size(10);
    let workload = Workload::scale_free_batch(2_000, 16, 11);
    let csr = CsrGraph::from_graph(&workload.graph);
    let frontier = BatchEvaluator::from_csr(&csr);
    let dfas: Vec<&Dfa> = workload.queries.queries.iter().map(|q| q.dfa()).collect();
    let threads = BatchEvaluator::default_threads();
    group.bench_function("naive_loop", |b| {
        b.iter(|| {
            black_box(
                workload
                    .queries
                    .queries
                    .iter()
                    .map(|q| q.evaluate_csr(&csr))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("frontier_seq", |b| {
        b.iter(|| black_box(frontier.evaluate_many(&dfas)))
    });
    group.bench_function("frontier_parallel", |b| {
        b.iter(|| black_box(frontier.evaluate_many_parallel(&dfas, threads)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure1,
    bench_synthetic_sizes,
    bench_query_complexity,
    bench_backend_comparison,
    bench_eval_modes,
    bench_batch_workload
);
criterion_main!(benches);
