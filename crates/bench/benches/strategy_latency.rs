//! E2 — per-interaction latency of the node-proposal strategies.
//!
//! The paper requires strategies to be time-efficient: "the user does not
//! have to wait too much between two consecutive interactions".  This bench
//! isolates a single `propose` call for each strategy on graphs of
//! increasing size, under a partially-labeled example set (the realistic
//! mid-session state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_datasets::transport::{self, TransportConfig};
use gps_interactive::pruning::PruningState;
use gps_interactive::strategy::{
    DegreeStrategy, InformativePathsStrategy, RandomStrategy, Strategy, StrategyContext,
};
use gps_learner::ExampleSet;
use gps_rpq::NegativeCoverage;
use std::hint::black_box;

fn mid_session_state(
    neighborhoods: usize,
) -> (gps_graph::Graph, ExampleSet, NegativeCoverage, PruningState) {
    let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, 5));
    let graph = net.graph;
    // Label a handful of nodes to simulate a session in progress.
    let mut examples = ExampleSet::new();
    let mut negatives = Vec::new();
    for (i, node) in graph.nodes().enumerate().take(6) {
        if i % 2 == 0 {
            examples.add_positive(node);
        } else {
            examples.add_negative(node);
            negatives.push(node);
        }
    }
    let coverage = NegativeCoverage::from_negatives(&graph, negatives, 3);
    let mut pruning = PruningState::new(3);
    pruning.refresh(&graph, &examples, &coverage);
    (graph, examples, coverage, pruning)
}

fn bench_propose(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_latency/propose");
    group.sample_size(30);
    for neighborhoods in [50usize, 200] {
        let (graph, examples, coverage, pruning) = mid_session_state(neighborhoods);
        let ctx = StrategyContext {
            graph: &graph,
            examples: &examples,
            coverage: &coverage,
            pruning: &pruning,
        };
        group.bench_with_input(
            BenchmarkId::new("informative-paths", neighborhoods),
            &neighborhoods,
            |b, _| {
                let mut strategy = InformativePathsStrategy::default();
                b.iter(|| black_box(strategy.propose(&ctx)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("degree", neighborhoods),
            &neighborhoods,
            |b, _| {
                let mut strategy = DegreeStrategy;
                b.iter(|| black_box(strategy.propose(&ctx)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random", neighborhoods),
            &neighborhoods,
            |b, _| {
                let mut strategy = RandomStrategy::seeded(9);
                b.iter(|| black_box(strategy.propose(&ctx)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_propose);
criterion_main!(benches);
