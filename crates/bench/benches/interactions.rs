//! E1 — interactions to convergence per strategy.
//!
//! The headline claim of the paper is that proposing *informative* nodes
//! minimizes the number of user interactions.  This bench runs the full
//! interactive session (simulated user, goal = the motivating query family)
//! for each strategy on transport networks of increasing size and reports the
//! wall-clock cost of a whole session; the companion `repro` binary prints
//! the interaction *counts* themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_bench::{run_session, strategies};
use gps_datasets::transport::{self, TransportConfig};
use gps_interactive::session::SessionConfig;
use gps_rpq::PathQuery;
use std::hint::black_box;

fn bench_session_per_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("interactions/full_session");
    group.sample_size(10);
    for neighborhoods in [20usize, 50] {
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, 3));
        let goal = PathQuery::parse("(tram+bus)*.cinema", net.graph.labels()).unwrap();
        for (name, _) in strategies(1) {
            group.bench_with_input(
                BenchmarkId::new(name, neighborhoods),
                &neighborhoods,
                |b, _| {
                    b.iter(|| {
                        // Re-create the strategy each iteration so its state
                        // (e.g. the random stream) starts fresh.
                        let mut strategy = strategies(1)
                            .into_iter()
                            .find(|(n, _)| *n == name)
                            .unwrap()
                            .1;
                        black_box(run_session(
                            &net.graph,
                            &goal,
                            strategy.as_mut(),
                            SessionConfig::default(),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_session_per_strategy);
criterion_main!(benches);
