//! E4 — pruning effectiveness and cost.
//!
//! After every interaction GPS prunes the nodes made uninformative by the
//! accumulated negative examples.  This bench measures the cost of a pruning
//! refresh on transport networks of increasing size and with an increasing
//! number of negative examples; the `repro` binary reports the *fraction* of
//! nodes pruned, which is the quantity the paper's narrative emphasizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_datasets::transport::{self, TransportConfig};
use gps_interactive::pruning::PruningState;
use gps_learner::ExampleSet;
use gps_rpq::NegativeCoverage;
use std::hint::black_box;

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/refresh");
    group.sample_size(20);
    for neighborhoods in [50usize, 100, 200] {
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, 11));
        let graph = net.graph;
        // A third of the neighborhoods labeled negative.
        let negatives: Vec<_> = graph.nodes().step_by(3).take(neighborhoods / 3).collect();
        let mut examples = ExampleSet::new();
        for &n in &negatives {
            examples.add_negative(n);
        }
        let coverage = NegativeCoverage::from_negatives(&graph, negatives.iter().copied(), 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(neighborhoods),
            &neighborhoods,
            |b, _| {
                b.iter(|| {
                    let mut pruning = PruningState::new(3);
                    black_box(pruning.refresh(&graph, &examples, &coverage))
                })
            },
        );
    }
    group.finish();
}

fn bench_coverage_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/coverage_build");
    group.sample_size(20);
    let net = transport::generate(&TransportConfig::with_neighborhoods(100, 11));
    let graph = net.graph;
    for negative_count in [5usize, 20, 50] {
        let negatives: Vec<_> = graph.nodes().take(negative_count).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(negative_count),
            &negative_count,
            |b, _| {
                b.iter(|| {
                    black_box(NegativeCoverage::from_negatives(
                        &graph,
                        negatives.iter().copied(),
                        3,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_refresh, bench_coverage_construction);
criterion_main!(benches);
