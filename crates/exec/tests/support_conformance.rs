//! Support-counter conformance — the delete-aware resume's bookkeeping must
//! be indistinguishable from starting over.
//!
//! Property: across chained random mixed insert+delete epochs, the
//! [`EvalResume`] produced by `resume_with_removals` — alive words **and**
//! per-`(state, node)` support counts — equals a from-scratch captured
//! evaluation on the patched graph, and the answer equals a cold evaluation.
//! Checked under both frontier backends ([`FrontierPolicy::Dense`] and
//! [`FrontierPolicy::Sparse`]) with a deterministic xorshift generator (no
//! external RNG dependency).

use gps_automata::{Dfa, Regex};
use gps_exec::frontier::{evaluate_captured, resume_with_removals, Scratch};
use gps_exec::planner::Plan;
use gps_exec::{FrontierPolicy, LabelIndex};
use gps_graph::{CsrGraph, DeltaGraph, Edge, Graph, GraphBackend, LabelId, NodeId};
use std::sync::Arc;

/// xorshift64* — deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

const NODES: usize = 60;
const EDGES: usize = 150;
const EPOCHS: usize = 4;
const REMOVALS_PER_EPOCH: usize = 3;
const ADDS_PER_EPOCH: usize = 3;

fn random_graph(rng: &mut XorShift) -> Graph {
    let mut g = Graph::new();
    for i in 0..NODES {
        g.add_node(format!("n{i}"));
    }
    for _ in 0..EDGES {
        let s = NodeId::from(rng.below(NODES));
        let t = NodeId::from(rng.below(NODES));
        let label = ["a", "b", "c"][rng.below(3)];
        g.add_edge_by_name(s, label, t);
    }
    g
}

fn query_set(g: &Graph) -> Vec<Dfa> {
    let a = Regex::symbol(g.label_id("a").unwrap());
    let b = Regex::symbol(g.label_id("b").unwrap());
    let c = Regex::symbol(g.label_id("c").unwrap());
    [
        a.clone(),
        Regex::concat([a.clone(), b.clone()]),
        Regex::star(a.clone()),
        Regex::concat([Regex::star(a.clone()), b.clone()]),
        Regex::concat([Regex::star(Regex::union([a.clone(), b.clone()])), c.clone()]),
        Regex::concat([c.clone(), Regex::star(Regex::union([a.clone(), b.clone()]))]),
        Regex::concat([a, Regex::concat([b, c])]),
    ]
    .iter()
    .map(Dfa::from_regex)
    .collect()
}

/// Picks `count` distinct existing edges of `snapshot` to remove.
fn pick_removals(snapshot: &CsrGraph, rng: &mut XorShift, count: usize) -> Vec<Edge> {
    let all: Vec<Edge> = snapshot.edges_by_source().map(|(_, edge)| edge).collect();
    let mut picked: Vec<Edge> = Vec::new();
    let mut guard = 0;
    while picked.len() < count && guard < 100 {
        guard += 1;
        let edge = all[rng.below(all.len())];
        if !picked
            .iter()
            .any(|e| e.source == edge.source && e.label == edge.label && e.target == edge.target)
        {
            picked.push(edge);
        }
    }
    picked
}

fn chained_epochs_reproduce_fresh_captures(policy: FrontierPolicy, seed: u64) {
    let mut rng = XorShift(seed);
    let graph = random_graph(&mut rng);
    let queries = query_set(&graph);
    let labels: Vec<LabelId> = ["a", "b", "c"]
        .iter()
        .map(|name| graph.label_id(name).unwrap())
        .collect();

    let mut base = Arc::new(CsrGraph::from_graph(&graph));
    let mut index = LabelIndex::from_backend(&*base);
    let mut scratch = Scratch::with_policy(policy);
    let mut seeds: Vec<_> = queries
        .iter()
        .map(|dfa| {
            let (_, _, resume) = evaluate_captured(&index, dfa, Plan::Bidirectional, &mut scratch);
            resume.expect("capturing evaluations always produce a seed")
        })
        .collect();

    for epoch in 1..=EPOCHS {
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let fresh = delta.add_node(format!("fresh{epoch}"));
        delta.add_edge(fresh, labels[rng.below(labels.len())], {
            NodeId::from(rng.below(base.node_count()))
        });
        for _ in 0..ADDS_PER_EPOCH {
            let s = NodeId::from(rng.below(base.node_count()));
            let t = NodeId::from(rng.below(base.node_count()));
            delta.add_edge(s, labels[rng.below(labels.len())], t);
        }
        for edge in pick_removals(&base, &mut rng, REMOVALS_PER_EPOCH) {
            assert!(delta.remove_edge(edge.source, edge.label, edge.target));
        }
        let summary = delta.delta();
        assert!(!summary.removed_edges.is_empty(), "epoch {epoch} removes");
        let compacted = delta.compact();
        let patched = index.apply_delta(&summary, compacted.node_count(), compacted.label_count());

        for (dfa, seed) in queries.iter().zip(seeds.iter_mut()) {
            // Limit 1.0 never bails: the resume must succeed on every delta.
            let (answer, _, _, next) =
                resume_with_removals(&patched, dfa, seed, &summary, &mut scratch, 1.0)
                    .expect("limit 1.0 never falls back");
            assert_eq!(
                answer,
                gps_rpq::eval::evaluate(&compacted, dfa),
                "{policy:?}, epoch {epoch}: resumed answer diverged from cold"
            );
            // The resumed seed — alive words and support counts — must be
            // byte-identical to capturing from scratch on the patched graph.
            let (_, _, fresh_seed) =
                evaluate_captured(&patched, dfa, Plan::Bidirectional, &mut scratch);
            assert_eq!(
                next,
                fresh_seed.expect("fresh capture"),
                "{policy:?}, epoch {epoch}: resumed supports diverged from a fresh capture"
            );
            *seed = next;
        }

        base = Arc::new(compacted);
        index = patched;
    }
}

#[test]
fn dense_backend_chained_mixed_epochs() {
    chained_epochs_reproduce_fresh_captures(FrontierPolicy::Dense, 0xA11CE);
}

#[test]
fn sparse_backend_chained_mixed_epochs() {
    chained_epochs_reproduce_fresh_captures(FrontierPolicy::Sparse, 0x0B0B_5EED);
}
