//! The batch execution engine — one index, many queries.
//!
//! [`BatchEvaluator`] snapshots a graph into the label-partitioned
//! [`LabelIndex`] once and then serves any number of queries over it:
//! single evaluations, shared-scratch sequential batches
//! ([`evaluate_many`](BatchEvaluator::evaluate_many)), an opt-in scoped
//! `std::thread` parallel batch
//! ([`evaluate_many_parallel`](BatchEvaluator::evaluate_many_parallel)), and
//! direction-aware multi-source membership checks
//! ([`evaluate_sources`](BatchEvaluator::evaluate_sources)).
//!
//! It implements [`DfaEvaluator`], so the `gps-rpq` evaluation cache — and
//! through it the whole `gps-core` engine, sessions, learner and coverage —
//! runs on the frontier engine by flipping the `EvalMode` builder knob.

use crate::bitset::FixedBitSet;
use crate::frontier::{
    evaluate_captured, evaluate_counting, resume_counting, resume_with_removals, selects_from,
    witness_from, FrontierPolicy, Scratch, DEFAULT_OVERDELETE_LIMIT,
};
use crate::index::{Direction, LabelIndex};
use crate::metrics::ExecMetrics;
use crate::planner::{self, Plan, PlanDecision, PlannerConfig};
use gps_automata::Dfa;
use gps_graph::{
    CsrGraph, GraphBackend, GraphDelta, LabelStats, NodeId, Path, PrefixNodeId, PrefixTree, Word,
};
use gps_rpq::{DfaEvaluator, EvalResume, PathQuery, QueryAnswer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Source-count threshold (relative to `node_count`) below which
/// multi-source checks run per-source forward searches instead of one global
/// fixed point.
const FORWARD_SOURCE_FRACTION: usize = 16;

/// How a parallel batch is distributed across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelSplit {
    /// Dynamic work stealing: workers pop the next query off a shared atomic
    /// cursor, so heterogeneous batches (one slow query among many fast
    /// ones) balance across cores.  The default.
    #[default]
    WorkStealing,
    /// Static contiguous chunks (the historical executor) — kept selectable
    /// so the two splits stay differentially testable.
    Chunked,
}

/// A frontier-based batch evaluator bound to one graph snapshot.
///
/// The label-partitioned index is held behind an [`Arc`], so cloning the
/// evaluator — and handing clones to session evaluators, witnesses or future
/// shards — shares one index instead of re-partitioning the snapshot.
#[derive(Debug, Clone)]
pub struct BatchEvaluator {
    index: Arc<LabelIndex>,
    stats: LabelStats,
    planner: PlannerConfig,
    plan_override: Option<Plan>,
    parallelism: Option<usize>,
    split: ParallelSplit,
    frontier_policy: FrontierPolicy,
    overdelete_limit: f64,
    metrics: ExecMetrics,
}

impl BatchEvaluator {
    /// Indexes `graph` (one edge sweep) and builds the evaluator.
    pub fn new<B: GraphBackend>(graph: &B) -> Self {
        Self::from_parts(LabelIndex::from_backend(graph), LabelStats::compute(graph))
    }

    /// Builds the evaluator from a CSR snapshot via its raw packed arrays.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        Self::from_parts(LabelIndex::from_csr(csr), LabelStats::compute(csr))
    }

    /// [`from_csr`](Self::from_csr) with the index's per-(direction, label)
    /// partitions built on up to `shards` scoped threads; the shard count
    /// sticks, so delta patches fan out the same way.
    pub fn from_csr_sharded(csr: &CsrGraph, shards: usize) -> Self {
        Self::from_parts(
            LabelIndex::from_csr_sharded(csr, shards),
            LabelStats::compute(csr),
        )
    }

    /// Builds the evaluator over an already-shared index (no re-partition).
    pub fn from_shared_index(index: Arc<LabelIndex>, stats: LabelStats) -> Self {
        Self {
            index,
            stats,
            planner: PlannerConfig::default(),
            plan_override: None,
            parallelism: None,
            split: ParallelSplit::default(),
            frontier_policy: FrontierPolicy::default(),
            overdelete_limit: DEFAULT_OVERDELETE_LIMIT,
            metrics: ExecMetrics::disabled(),
        }
    }

    /// Builds the next epoch's evaluator after a graph update: the label
    /// index is patched ([`LabelIndex::apply_delta`] — untouched partitions
    /// are shared, not copied) and the planner statistics are derived from
    /// the patched partitions, with every knob carried over.  `csr` is the
    /// compacted snapshot the delta produced.
    pub fn apply_delta(&self, csr: &CsrGraph, delta: &GraphDelta) -> Self {
        let started = std::time::Instant::now();
        let index = self
            .index
            .apply_delta(delta, csr.node_count(), csr.label_count());
        self.metrics
            .record_index_build(started.elapsed(), index.shards());
        let stats = index.patched_stats(&self.stats, &delta.touched_labels());
        Self {
            index: Arc::new(index),
            stats,
            planner: self.planner,
            plan_override: self.plan_override,
            parallelism: self.parallelism,
            split: self.split,
            frontier_policy: self.frontier_policy,
            overdelete_limit: self.overdelete_limit,
            metrics: self.metrics.clone(),
        }
    }

    fn from_parts(index: LabelIndex, stats: LabelStats) -> Self {
        Self::from_shared_index(Arc::new(index), stats)
    }

    /// Forces every query onto `plan` instead of consulting the planner
    /// (used by the differential tests and benchmarks).
    pub fn with_plan(mut self, plan: Plan) -> Self {
        self.plan_override = Some(plan);
        self
    }

    /// Replaces the planner's decision thresholds (defaults:
    /// [`PlannerConfig::default`]).
    pub fn with_planner_config(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }

    /// The planner thresholds in effect.
    pub fn planner_config(&self) -> PlannerConfig {
        self.planner
    }

    /// Enables the parallel executor for batch entry points: batches are
    /// fanned out over up to `threads` scoped worker threads.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = Some(threads.max(1));
        self
    }

    /// Chooses how parallel batches are split across workers (default:
    /// [`ParallelSplit::WorkStealing`]).
    pub fn with_split(mut self, split: ParallelSplit) -> Self {
        self.split = split;
        self
    }

    /// Sets the shard (worker-thread) count future
    /// [`apply_delta`](Self::apply_delta) patches fan out over.  Cheap: the
    /// partitions themselves are `Arc`-shared, only the handle vector is
    /// cloned when the setting changes.
    pub fn with_index_shards(mut self, shards: usize) -> Self {
        if self.index.shards() != shards {
            self.index = Arc::new(LabelIndex::clone(&self.index).with_shards(shards));
        }
        self
    }

    /// Chooses the frontier bitset representation (default:
    /// [`FrontierPolicy::Auto`] — sparse two-level sets on graphs with at
    /// least [`crate::SPARSE_FRONTIER_NODES`] nodes).  Every policy yields
    /// identical answers.
    pub fn with_frontier_policy(mut self, policy: FrontierPolicy) -> Self {
        self.frontier_policy = policy;
        self
    }

    /// The frontier representation policy in effect.
    pub fn frontier_policy(&self) -> FrontierPolicy {
        self.frontier_policy
    }

    /// Caps the delete-aware resume's over-deletion at `limit` (a fraction
    /// of the alive configuration population, clamped to `0.0..=1.0`;
    /// default [`DEFAULT_OVERDELETE_LIMIT`]).  Past the cap a removal-bearing
    /// [`evaluate_dfa_resumed`](DfaEvaluator::evaluate_dfa_resumed) returns
    /// `None` and the caller cold-recomputes — `0.0` disables the delete
    /// path entirely, `1.0` never gives up.  Carried across epochs by
    /// [`apply_delta`](Self::apply_delta).
    pub fn with_overdelete_limit(mut self, limit: f64) -> Self {
        self.overdelete_limit = limit.clamp(0.0, 1.0);
        self
    }

    /// The over-deletion cap in effect.
    pub fn overdelete_limit(&self) -> f64 {
        self.overdelete_limit
    }

    /// A fresh scratch following the configured frontier policy.
    fn scratch(&self) -> Scratch {
        Scratch::with_policy(self.frontier_policy)
    }

    /// The configured batch split.
    pub fn split(&self) -> ParallelSplit {
        self.split
    }

    /// Installs pre-bound telemetry handles (default:
    /// [`ExecMetrics::disabled`] — recording costs one branch).  Carried
    /// across epochs by [`apply_delta`](Self::apply_delta), so a rebuilt
    /// evaluator keeps extending the same registry series.
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The telemetry handles in effect.
    pub fn metrics(&self) -> &ExecMetrics {
        &self.metrics
    }

    /// The label-partitioned index the evaluator sweeps.
    pub fn index(&self) -> &LabelIndex {
        &self.index
    }

    /// A new reference to the shared index (for witnesses, session
    /// evaluators and future shards).
    pub fn shared_index(&self) -> Arc<LabelIndex> {
        Arc::clone(&self.index)
    }

    /// The per-label statistics the planner consults.
    pub fn stats(&self) -> &LabelStats {
        &self.stats
    }

    /// The configured worker-thread count, if the parallel executor is on.
    pub fn parallelism(&self) -> Option<usize> {
        self.parallelism
    }

    /// The plan the evaluator would run `dfa` with, and why.
    pub fn plan_for(&self, dfa: &Dfa) -> PlanDecision {
        let mut decision = planner::plan_with(&self.stats, dfa, self.planner);
        if let Some(plan) = self.plan_override {
            decision.plan = plan;
        }
        decision
    }

    /// Evaluates one compiled DFA (fresh scratch).
    pub fn evaluate(&self, dfa: &Dfa) -> QueryAnswer {
        let mut scratch = self.scratch();
        self.evaluate_scratch(dfa, &mut scratch)
    }

    /// Evaluates one parsed query.
    pub fn evaluate_query(&self, query: &PathQuery) -> QueryAnswer {
        self.evaluate(query.dfa())
    }

    fn evaluate_scratch(&self, dfa: &Dfa, scratch: &mut Scratch) -> QueryAnswer {
        let plan = self.plan_for(dfa).plan;
        self.metrics.record_plan(plan);
        let span = self.metrics.eval_latency.start_timer();
        let (answer, rounds) = evaluate_counting(&self.index, dfa, plan, scratch);
        span.stop();
        self.metrics.evals.inc();
        self.metrics.frontier_rounds.add(rounds);
        answer
    }

    /// [`evaluate_scratch`](Self::evaluate_scratch) that additionally
    /// captures the alive sets when the fixed point completed (see
    /// [`evaluate_captured`]).
    fn evaluate_captured_scratch(
        &self,
        dfa: &Dfa,
        scratch: &mut Scratch,
    ) -> (QueryAnswer, Option<EvalResume>) {
        let plan = self.plan_for(dfa).plan;
        self.metrics.record_plan(plan);
        let span = self.metrics.eval_latency.start_timer();
        let (answer, rounds, resume) = evaluate_captured(&self.index, dfa, plan, scratch);
        span.stop();
        self.metrics.evals.inc();
        self.metrics.frontier_rounds.add(rounds);
        (answer, resume)
    }

    /// Capture-enabled work-stealing batch (same shape as
    /// [`evaluate_many_stealing`](Self::evaluate_many_stealing)).  Like
    /// every parallel entry point, the worker count is clamped to the batch
    /// size and a one-worker request runs inline — no scoped thread is ever
    /// spawned just to drain the whole cursor by itself.
    fn evaluate_many_captured_parallel(
        &self,
        dfas: &[&Dfa],
        threads: usize,
    ) -> Vec<(QueryAnswer, Option<EvalResume>)> {
        let threads = threads.clamp(1, dfas.len().max(1));
        if threads == 1 {
            let mut scratch = self.scratch();
            return dfas
                .iter()
                .map(|dfa| self.evaluate_captured_scratch(dfa, &mut scratch))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<(QueryAnswer, Option<EvalResume>)>> = vec![None; dfas.len()];
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = self.scratch();
                        let mut answered = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= dfas.len() {
                                break;
                            }
                            answered
                                .push((i, self.evaluate_captured_scratch(dfas[i], &mut scratch)));
                        }
                        answered
                    })
                })
                .collect();
            for handle in handles {
                for (i, outcome) in handle.join().expect("batch worker panicked") {
                    results[i] = Some(outcome);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("the cursor visits every query exactly once"))
            .collect()
    }

    /// Evaluates a batch sequentially, sharing one scratch allocation across
    /// all queries (answers in input order).
    pub fn evaluate_many(&self, dfas: &[&Dfa]) -> Vec<QueryAnswer> {
        let mut scratch = self.scratch();
        dfas.iter()
            .map(|dfa| self.evaluate_scratch(dfa, &mut scratch))
            .collect()
    }

    /// Evaluates a batch on up to `threads` scoped worker threads, each with
    /// its own scratch, sharing the read-only index (answers in input
    /// order).  The batch is distributed according to the configured
    /// [`ParallelSplit`].
    pub fn evaluate_many_parallel(&self, dfas: &[&Dfa], threads: usize) -> Vec<QueryAnswer> {
        let threads = threads.clamp(1, dfas.len().max(1));
        if threads == 1 {
            return self.evaluate_many(dfas);
        }
        match self.split {
            ParallelSplit::WorkStealing => self.evaluate_many_stealing(dfas, threads),
            ParallelSplit::Chunked => self.evaluate_many_chunked(dfas, threads),
        }
    }

    /// Work-stealing executor: every worker repeatedly claims the next
    /// unprocessed query via one shared atomic cursor, so a worker that drew
    /// cheap queries keeps pulling work while another grinds through an
    /// expensive one.
    fn evaluate_many_stealing(&self, dfas: &[&Dfa], threads: usize) -> Vec<QueryAnswer> {
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<QueryAnswer>> = vec![None; dfas.len()];
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = self.scratch();
                        let mut answered = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= dfas.len() {
                                break;
                            }
                            answered.push((i, self.evaluate_scratch(dfas[i], &mut scratch)));
                        }
                        answered
                    })
                })
                .collect();
            for handle in handles {
                for (i, answer) in handle.join().expect("batch worker panicked") {
                    results[i] = Some(answer);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("the cursor visits every query exactly once"))
            .collect()
    }

    /// Static contiguous-chunk executor (one chunk per worker).
    pub fn evaluate_many_chunked(&self, dfas: &[&Dfa], threads: usize) -> Vec<QueryAnswer> {
        let threads = threads.clamp(1, dfas.len().max(1));
        if threads == 1 {
            return self.evaluate_many(dfas);
        }
        let chunk = dfas.len().div_ceil(threads);
        let mut results = Vec::with_capacity(dfas.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = dfas
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut scratch = self.scratch();
                        chunk
                            .iter()
                            .map(|dfa| self.evaluate_scratch(dfa, &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("batch worker panicked"));
            }
        });
        results
    }

    /// Default worker-thread count for the parallel executor.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Direction-aware multi-source membership: returns, for each source,
    /// whether it is selected by `dfa`.
    ///
    /// A handful of sources runs as per-source *forward* searches with early
    /// exit; source sets that are a sizable fraction of the graph fall back
    /// to one global (reverse/bidirectional) fixed point answering them all.
    pub fn evaluate_sources(&self, dfa: &Dfa, sources: &[NodeId]) -> Vec<bool> {
        let n = self.index.node_count();
        if sources.len() * FORWARD_SOURCE_FRACTION <= n {
            sources
                .iter()
                .map(|&source| selects_from(&self.index, dfa, source.index()))
                .collect()
        } else {
            let answer = self.evaluate(dfa);
            sources
                .iter()
                .map(|&source| answer.contains(source))
                .collect()
        }
    }

    /// Forward early-exit membership check for one node.
    pub fn selects(&self, dfa: &Dfa, node: NodeId) -> bool {
        selects_from(&self.index, dfa, node.index())
    }

    /// Trie-shaped backward sweep for [`DfaEvaluator::nodes_spelling`]: per
    /// trie node, the set of graph nodes spelling some word of its subtree,
    /// computed bottom-up through the label-partitioned reverse slices.
    fn spell_reach(&self, trie: &PrefixTree, t: PrefixNodeId) -> FixedBitSet {
        let n = self.index.node_count();
        let mut reach = FixedBitSet::new(n);
        if trie.is_terminal(t) {
            // The empty suffix completes a word here: every node qualifies.
            reach.insert_all();
            return reach;
        }
        for (label, child) in trie.children(t) {
            let child_reach = self.spell_reach(trie, child);
            for v in child_reach.ones() {
                for &u in self.index.neighbors(Direction::Reverse, label, v) {
                    reach.insert(u as usize);
                }
            }
        }
        reach
    }

    /// Pre-order sweep of the reversed-word trie for
    /// [`DfaEvaluator::spelling_counts`]: the speller set of each prefix is
    /// narrowed through the label-partitioned reverse slices; every terminal
    /// bumps its spellers' counts.
    fn count_spellers(
        &self,
        trie: &PrefixTree,
        t: PrefixNodeId,
        spellers: &FixedBitSet,
        counts: &mut [u32],
    ) {
        if trie.is_terminal(t) {
            for v in spellers.ones() {
                counts[v] += 1;
            }
        }
        for (label, child) in trie.children(t) {
            let mut next = FixedBitSet::new(counts.len());
            let mut any = false;
            for v in spellers.ones() {
                for &u in self.index.neighbors(Direction::Reverse, label, v) {
                    next.insert(u as usize);
                    any = true;
                }
            }
            if any {
                self.count_spellers(trie, child, &next, counts);
            }
        }
    }
}

impl DfaEvaluator for BatchEvaluator {
    fn evaluate_dfa(&self, dfa: &Dfa) -> QueryAnswer {
        self.evaluate(dfa)
    }

    fn evaluate_dfas(&self, dfas: &[&Dfa]) -> Vec<QueryAnswer> {
        match self.parallelism {
            Some(threads) if dfas.len() > 1 => self.evaluate_many_parallel(dfas, threads),
            _ => self.evaluate_many(dfas),
        }
    }

    fn evaluate_dfa_captured(&self, dfa: &Dfa) -> (QueryAnswer, Option<EvalResume>) {
        let mut scratch = self.scratch();
        self.evaluate_captured_scratch(dfa, &mut scratch)
    }

    fn evaluate_dfas_captured(&self, dfas: &[&Dfa]) -> Vec<(QueryAnswer, Option<EvalResume>)> {
        match self.parallelism {
            Some(threads) if threads > 1 && dfas.len() > 1 => {
                self.evaluate_many_captured_parallel(dfas, threads)
            }
            _ => {
                let mut scratch = self.scratch();
                dfas.iter()
                    .map(|dfa| self.evaluate_captured_scratch(dfa, &mut scratch))
                    .collect()
            }
        }
    }

    fn evaluate_dfa_resumed(
        &self,
        dfa: &Dfa,
        resume: &EvalResume,
        delta: &GraphDelta,
    ) -> Option<(QueryAnswer, EvalResume)> {
        let mut scratch = self.scratch();
        let (answer, rounds, next) = if delta.removed_edges.is_empty() {
            resume_counting(&self.index, dfa, resume, delta, &mut scratch)?
        } else if self.overdelete_limit <= 0.0 {
            // The knob's floor is a kill switch: removals always recompute
            // cold, even ones whose over-delete cone would be empty.
            return None;
        } else {
            let (answer, rounds, overdeleted, next) = resume_with_removals(
                &self.index,
                dfa,
                resume,
                delta,
                &mut scratch,
                self.overdelete_limit,
            )?;
            self.metrics.support_overdeleted.add(overdeleted);
            (answer, rounds, next)
        };
        // Counted as an evaluation (its rounds are the delta-restricted
        // sweeps); latency is attributed by the caller's reseed histogram,
        // not the cold-eval one.
        self.metrics.evals.inc();
        self.metrics.frontier_rounds.add(rounds);
        Some((answer, next))
    }

    fn selects_node(&self, dfa: &Dfa, node: NodeId) -> bool {
        self.selects(dfa, node)
    }

    fn witness(&self, dfa: &Dfa, node: NodeId) -> Option<Path> {
        witness_from(&self.index, dfa, node.index())
    }

    fn nodes_spelling(&self, words: &[Word]) -> Vec<NodeId> {
        if self.index.node_count() == 0 || words.is_empty() {
            return Vec::new();
        }
        let trie = PrefixTree::from_words(words);
        self.spell_reach(&trie, trie.root())
            .ones()
            .map(NodeId::from)
            .collect()
    }

    fn spelling_counts(&self, words: &[Word]) -> Vec<(NodeId, u32)> {
        let n = self.index.node_count();
        if n == 0 || words.is_empty() {
            return Vec::new();
        }
        let reversed: Vec<Word> = words
            .iter()
            .map(|w| w.iter().rev().copied().collect())
            .collect();
        let trie = PrefixTree::from_words(&reversed);
        let mut counts = vec![0u32; n];
        let mut all = FixedBitSet::new(n);
        all.insert_all();
        self.count_spellers(&trie, trie.root(), &all, &mut counts);
        counts
            .into_iter()
            .enumerate()
            .filter(|&(_, count)| count > 0)
            .map(|(index, count)| (NodeId::from(index), count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g
    }

    fn queries(g: &Graph) -> Vec<Dfa> {
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        vec![
            Dfa::from_regex(&Regex::symbol(cinema)),
            Dfa::from_regex(&Regex::concat([
                Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
                Regex::symbol(cinema),
            ])),
            Dfa::from_regex(&Regex::star(Regex::symbol(bus))),
            Dfa::from_regex(&Regex::Empty),
        ]
    }

    #[test]
    fn batch_matches_naive_per_query() {
        let g = sample();
        let evaluator = BatchEvaluator::new(&g);
        let dfas = queries(&g);
        let refs: Vec<&Dfa> = dfas.iter().collect();
        let batch = evaluator.evaluate_many(&refs);
        for (dfa, answer) in dfas.iter().zip(&batch) {
            assert_eq!(*answer, gps_rpq::eval::evaluate(&g, dfa));
        }
    }

    #[test]
    fn parallel_matches_sequential_in_order() {
        let g = sample();
        let dfas = queries(&g);
        let refs: Vec<&Dfa> = dfas.iter().collect();
        let sequential = BatchEvaluator::new(&g).evaluate_many(&refs);
        for split in [ParallelSplit::WorkStealing, ParallelSplit::Chunked] {
            let evaluator = BatchEvaluator::new(&g).with_split(split);
            assert_eq!(evaluator.split(), split);
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    evaluator.evaluate_many_parallel(&refs, threads),
                    sequential,
                    "{split:?} x{threads}"
                );
            }
        }
    }

    #[test]
    fn work_stealing_preserves_order_on_large_heterogeneous_batches() {
        // More queries than threads, duplicated in shuffled positions, so the
        // cursor hands different slices to different workers across runs;
        // output order must always match input order.
        let g = sample();
        let evaluator = BatchEvaluator::new(&g);
        let base = queries(&g);
        let many: Vec<&Dfa> = (0..37).map(|i| &base[i % base.len()]).collect();
        let expected = evaluator.evaluate_many(&many);
        for _ in 0..5 {
            assert_eq!(evaluator.evaluate_many_parallel(&many, 4), expected);
        }
    }

    #[test]
    fn shared_index_is_one_allocation() {
        let g = sample();
        let evaluator = BatchEvaluator::new(&g);
        let clone = evaluator.clone();
        assert!(Arc::ptr_eq(
            &evaluator.shared_index(),
            &clone.shared_index()
        ));
        let rebuilt =
            BatchEvaluator::from_shared_index(evaluator.shared_index(), evaluator.stats().clone());
        let dfas = queries(&g);
        for dfa in &dfas {
            assert_eq!(rebuilt.evaluate(dfa), evaluator.evaluate(dfa));
        }
    }

    #[test]
    fn trait_witness_matches_naive_witness_length() {
        let g = sample();
        let evaluator = BatchEvaluator::new(&g);
        let naive = gps_rpq::NaiveEvaluator::new(&g);
        let query = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        for node in 0..g.node_count() {
            let node = NodeId::from(node);
            let a = DfaEvaluator::witness(&naive, query.dfa(), node);
            let b = DfaEvaluator::witness(&evaluator, query.dfa(), node);
            assert_eq!(
                a.as_ref().map(|p| p.len()),
                b.as_ref().map(|p| p.len()),
                "{node}"
            );
            assert_eq!(
                evaluator.selects_node(query.dfa(), node),
                a.is_some(),
                "{node}"
            );
        }
    }

    #[test]
    fn trait_batch_honors_parallelism_knob() {
        let g = sample();
        let dfas = queries(&g);
        let refs: Vec<&Dfa> = dfas.iter().collect();
        let sequential = BatchEvaluator::new(&g).evaluate_dfas(&refs);
        let parallel = BatchEvaluator::new(&g)
            .with_parallelism(4)
            .evaluate_dfas(&refs);
        assert_eq!(sequential, parallel);
        assert_eq!(
            BatchEvaluator::new(&g).with_parallelism(0).parallelism(),
            Some(1),
            "thread count is clamped to at least one"
        );
    }

    #[test]
    fn evaluate_sources_agrees_with_global_answer() {
        // The 4-node sample is below the forward-path threshold for any
        // source count, so both calls here take the global branch…
        let g = sample();
        let evaluator = BatchEvaluator::new(&g);
        let dfas = queries(&g);
        let all: Vec<NodeId> = (0..g.node_count()).map(NodeId::from).collect();
        for dfa in &dfas {
            let expected = evaluator.evaluate(dfa);
            let few = evaluator.evaluate_sources(dfa, &all[..1]);
            assert_eq!(few[0], expected.contains(all[0]));
            let many = evaluator.evaluate_sources(dfa, &all);
            for (node, selected) in all.iter().zip(many) {
                assert_eq!(selected, expected.contains(*node));
            }
        }

        // …while a chain long enough that 1 source × FORWARD_SOURCE_FRACTION
        // fits within the node count exercises the per-source forward search.
        let mut chain = Graph::new();
        let nodes: Vec<NodeId> = (0..(2 * FORWARD_SOURCE_FRACTION))
            .map(|i| chain.add_node(format!("c{i}")))
            .collect();
        for window in nodes.windows(2) {
            chain.add_edge_by_name(window[0], "step", window[1]);
        }
        let step = chain.label_id("step").unwrap();
        let dfa = Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::symbol(step)),
            Regex::symbol(step),
        ]));
        let evaluator = BatchEvaluator::new(&chain);
        let expected = evaluator.evaluate(&dfa);
        let probes = [nodes[0], *nodes.last().unwrap()];
        assert!(probes.len() * FORWARD_SOURCE_FRACTION <= chain.node_count());
        for (node, selected) in probes.iter().zip(evaluator.evaluate_sources(&dfa, &probes)) {
            assert_eq!(selected, expected.contains(*node), "forward path {node}");
        }
    }

    #[test]
    fn forced_plans_all_agree() {
        let g = sample();
        let dfas = queries(&g);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let evaluator = BatchEvaluator::new(&g).with_plan(plan);
            for dfa in &dfas {
                assert_eq!(
                    evaluator.plan_for(dfa).plan,
                    plan,
                    "override wins over the planner"
                );
                assert_eq!(evaluator.evaluate(dfa), gps_rpq::eval::evaluate(&g, dfa));
            }
        }
    }

    #[test]
    fn evaluate_query_accepts_parsed_queries() {
        let g = sample();
        let evaluator = BatchEvaluator::new(&g);
        let query = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        assert_eq!(evaluator.evaluate_query(&query), query.evaluate(&g));
        assert!(evaluator.selects(query.dfa(), g.node_by_name("N2").unwrap()));
        assert!(!evaluator.selects(query.dfa(), g.node_by_name("C1").unwrap()));
    }

    #[test]
    fn from_csr_matches_from_backend() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let a = BatchEvaluator::new(&g);
        let b = BatchEvaluator::from_csr(&csr);
        for dfa in queries(&g) {
            assert_eq!(a.evaluate(&dfa), b.evaluate(&dfa));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn foreign_label_queries_match_the_naive_evaluator() {
        // A DFA compiled against a different (larger) interner: its label ids
        // are not in this graph's alphabet.  The naive evaluator answers
        // normally (no transition ever fires); all frontier modes must too.
        let g = sample();
        let foreign = gps_graph::LabelId::new(99);
        let dfas = [
            Dfa::from_regex(&Regex::symbol(foreign)),
            Dfa::from_regex(&Regex::star(Regex::symbol(foreign))),
        ];
        for dfa in &dfas {
            let expected = gps_rpq::eval::evaluate(&g, dfa);
            let evaluator = BatchEvaluator::new(&g);
            assert_eq!(evaluator.evaluate(dfa), expected);
            for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
                let forced = BatchEvaluator::new(&g).with_plan(plan);
                assert_eq!(forced.evaluate(dfa), expected, "{plan:?}");
            }
            for node in 0..g.node_count() {
                assert_eq!(
                    evaluator.selects(dfa, NodeId::from(node)),
                    expected.contains(NodeId::from(node))
                );
            }
        }
    }

    #[test]
    fn apply_delta_answers_like_a_fresh_evaluator() {
        use gps_graph::DeltaGraph;

        let g = sample();
        let base = Arc::new(CsrGraph::from_graph(&g));
        let old = BatchEvaluator::from_csr(&base).with_parallelism(2);
        let mut delta = DeltaGraph::new(Arc::clone(&base));
        let n2 = delta.node_by_name("N2").unwrap();
        let c1 = delta.node_by_name("C1").unwrap();
        let bus = delta.labels().get("bus").unwrap();
        let tram = delta.labels().get("tram").unwrap();
        delta.add_edge(c1, bus, n2);
        let n1 = delta.node_by_name("N1").unwrap();
        let n4 = delta.node_by_name("N4").unwrap();
        assert!(delta.remove_edge(n1, tram, n4));
        let summary = delta.delta();
        let compacted = delta.compact();

        let patched = old.apply_delta(&compacted, &summary);
        let fresh = BatchEvaluator::from_csr(&compacted);
        assert_eq!(patched.stats(), fresh.stats());
        assert_eq!(patched.parallelism(), Some(2), "knobs carry over");
        for dfa in queries(&g) {
            assert_eq!(patched.evaluate(&dfa), fresh.evaluate(&dfa));
            assert_eq!(
                patched.plan_for(&dfa).plan,
                fresh.plan_for(&dfa).plan,
                "patched stats drive identical plans"
            );
        }
    }

    #[test]
    fn planner_config_knob_reaches_plan_for() {
        let g = sample();
        let dfa = Dfa::from_regex(&Regex::symbol(g.label_id("bus").unwrap()));
        let default = BatchEvaluator::new(&g);
        assert_eq!(
            default.planner_config(),
            crate::planner::PlannerConfig::default()
        );
        let push_all = BatchEvaluator::new(&g).with_planner_config(crate::planner::PlannerConfig {
            push_coverage: 1.1,
            ..Default::default()
        });
        assert_eq!(push_all.plan_for(&dfa).plan, Plan::Reverse);
        assert_eq!(
            push_all.evaluate(&dfa),
            default.evaluate(&dfa),
            "thresholds change the plan, never the answer"
        );
    }

    #[test]
    fn frontier_policy_and_shard_knobs_preserve_answers() {
        let g = sample();
        let dfas = queries(&g);
        let baseline = BatchEvaluator::new(&g);
        let expected: Vec<_> = dfas.iter().map(|d| baseline.evaluate(d)).collect();
        for policy in [
            FrontierPolicy::Auto,
            FrontierPolicy::Dense,
            FrontierPolicy::Sparse,
        ] {
            let evaluator = BatchEvaluator::new(&g).with_frontier_policy(policy);
            assert_eq!(evaluator.frontier_policy(), policy);
            for (dfa, want) in dfas.iter().zip(&expected) {
                assert_eq!(evaluator.evaluate(dfa), *want, "{policy:?}");
            }
        }
        let csr = CsrGraph::from_graph(&g);
        let sharded = BatchEvaluator::from_csr_sharded(&csr, 4);
        assert_eq!(sharded.index().shards(), 4);
        for (dfa, want) in dfas.iter().zip(&expected) {
            assert_eq!(sharded.evaluate(dfa), *want);
        }
        let re_knobbed = BatchEvaluator::from_csr(&csr).with_index_shards(3);
        assert_eq!(re_knobbed.index().shards(), 3);
    }

    #[test]
    fn captured_batches_agree_across_worker_counts() {
        let g = sample();
        let dfas = queries(&g);
        let refs: Vec<&Dfa> = dfas.iter().collect();
        let sequential = BatchEvaluator::new(&g).evaluate_dfas_captured(&refs);
        // A one-worker request must run inline (no idle scoped thread) and
        // produce the same results; so must genuinely parallel runs.
        for threads in [1usize, 2, 8] {
            let parallel = BatchEvaluator::new(&g)
                .with_parallelism(threads)
                .evaluate_dfas_captured(&refs);
            assert_eq!(parallel.len(), sequential.len());
            for (i, ((a, ar), (b, br))) in sequential.iter().zip(&parallel).enumerate() {
                assert_eq!(a, b, "answer {i} x{threads}");
                assert_eq!(ar.is_some(), br.is_some(), "capture {i} x{threads}");
            }
        }
    }

    #[test]
    fn empty_graph_and_empty_batch() {
        let g = Graph::new();
        let evaluator = BatchEvaluator::new(&g);
        assert!(evaluator.evaluate_many(&[]).is_empty());
        assert!(evaluator.evaluate_many_parallel(&[], 4).is_empty());
        assert!(evaluator
            .evaluate_sources(&Dfa::epsilon_language(), &[])
            .is_empty());
    }
}
