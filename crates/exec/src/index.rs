//! Label-partitioned CSR adjacency — the storage the frontier evaluator
//! sweeps.
//!
//! The product fixed point expands one `(DFA transition, frontier)` pair at a
//! time: *for every node `u` in the frontier of state `q`, follow exactly the
//! edges labeled `a`*.  The general-purpose CSR interleaves all labels in one
//! adjacency stream, so that expansion would scan (and branch on) every
//! incident edge.  [`LabelIndex`] re-partitions both directions by label:
//! `neighbors(direction, label, node)` is a contiguous `&[u32]` slice holding
//! only the matching endpoints, which turns delta expansion into tight
//! slice-and-bitset sweeps.

use crate::bitset::FixedBitSet;
use gps_graph::{CsrGraph, GraphBackend, LabelId, NodeId};

/// Expansion direction through the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges source → target.
    Forward,
    /// Follow edges target → source.
    Reverse,
}

/// Per-direction, per-label CSR: `offsets` has `label_count * (node_count+1)`
/// entries; the neighbors of `(label, node)` live at
/// `neighbors[offsets[label*(n+1)+node] .. offsets[label*(n+1)+node+1]]`.
#[derive(Debug, Clone, Default)]
struct DirIndex {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl DirIndex {
    fn build(node_count: usize, label_count: usize, edges: &[(u32, u32, u32)]) -> Self {
        // edges: (label, from, to) in the direction being built.
        let stride = node_count + 1;
        let mut offsets = vec![0u32; label_count * stride + 1];
        // Count per (label, from) bucket, writing counts one slot ahead so
        // the prefix sum leaves offsets[bucket] = start of the bucket.
        for &(label, from, _) in edges {
            offsets[label as usize * stride + from as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut neighbors = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(label, from, to) in edges {
            let slot = &mut cursor[label as usize * stride + from as usize];
            neighbors[*slot as usize] = to;
            *slot += 1;
        }
        Self { offsets, neighbors }
    }

    #[inline]
    fn neighbors(&self, stride: usize, label: usize, node: usize) -> &[u32] {
        let base = label * stride + node;
        let lo = self.offsets[base] as usize;
        let hi = self.offsets[base + 1] as usize;
        &self.neighbors[lo..hi]
    }
}

/// Label-partitioned forward and reverse adjacency of one graph snapshot.
///
/// Built once per graph and shared across every query of a batch (and across
/// worker threads — the index is immutable after construction).
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    node_count: usize,
    label_count: usize,
    fwd: DirIndex,
    rev: DirIndex,
    label_edge_counts: Vec<usize>,
}

impl LabelIndex {
    /// Builds the index from any backend by one pass over the edge set.
    pub fn from_backend<B: GraphBackend>(graph: &B) -> Self {
        let mut edges = Vec::with_capacity(graph.edge_count());
        for node in graph.nodes() {
            for (label, target) in graph.successors(node) {
                edges.push((label.raw(), node.index() as u32, target.raw()));
            }
        }
        Self::from_edges(graph.node_count(), graph.label_count(), edges)
    }

    /// Builds the index from a CSR snapshot via its raw packed arrays (no
    /// per-node iterator dispatch).
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let offsets = csr.fwd_offsets();
        let entries = csr.fwd_entries();
        let mut edges = Vec::with_capacity(entries.len());
        for node in 0..csr.node_count() {
            let lo = offsets[node] as usize;
            let hi = offsets[node + 1] as usize;
            for entry in &entries[lo..hi] {
                edges.push((entry.label.raw(), node as u32, entry.node.raw()));
            }
        }
        Self::from_edges(csr.node_count(), csr.label_count(), edges)
    }

    fn from_edges(node_count: usize, label_count: usize, edges: Vec<(u32, u32, u32)>) -> Self {
        let mut label_edge_counts = vec![0usize; label_count];
        for &(label, _, _) in &edges {
            label_edge_counts[label as usize] += 1;
        }
        let fwd = DirIndex::build(node_count, label_count, &edges);
        let reversed: Vec<(u32, u32, u32)> = edges
            .into_iter()
            .map(|(label, from, to)| (label, to, from))
            .collect();
        let rev = DirIndex::build(node_count, label_count, &reversed);
        Self {
            node_count,
            label_count,
            fwd,
            rev,
            label_edge_counts,
        }
    }

    /// Number of nodes in the indexed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of labels in the indexed graph's alphabet.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Approximate heap footprint of the index in bytes (the packed offset
    /// and neighbor arrays of both directions).  Multi-session deployments
    /// report this to show N sessions share **one** index allocation rather
    /// than N copies.
    pub fn memory_bytes(&self) -> usize {
        let dir = |d: &DirIndex| (d.offsets.len() + d.neighbors.len()) * std::mem::size_of::<u32>();
        dir(&self.fwd)
            + dir(&self.rev)
            + self.label_edge_counts.len() * std::mem::size_of::<usize>()
    }

    /// Number of edges carrying `label`.
    pub fn label_edge_count(&self, label: LabelId) -> usize {
        self.label_edge_counts
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// The `label`-neighbors of `node` in `direction` as a packed slice.
    ///
    /// Labels outside the indexed alphabet (a query compiled against a
    /// different interner) and out-of-range nodes simply have no neighbors,
    /// mirroring the naive evaluator's "undefined transition rejects"
    /// semantics instead of panicking.
    #[inline]
    pub fn neighbors(&self, direction: Direction, label: LabelId, node: usize) -> &[u32] {
        if label.index() >= self.label_count || node >= self.node_count {
            return &[];
        }
        let stride = self.node_count + 1;
        match direction {
            Direction::Forward => self.fwd.neighbors(stride, label.index(), node),
            Direction::Reverse => self.rev.neighbors(stride, label.index(), node),
        }
    }

    /// Marks in `out` every `label`-neighbor (in `direction`) of every node
    /// of `frontier`, returning how many bits were newly set in `out`.
    pub fn expand_into(
        &self,
        direction: Direction,
        label: LabelId,
        frontier: &FixedBitSet,
        out: &mut FixedBitSet,
    ) -> usize {
        let mut fresh = 0;
        for node in frontier.ones() {
            for &neighbor in self.neighbors(direction, label, node) {
                fresh += out.insert(neighbor as usize) as usize;
            }
        }
        fresh
    }
}

/// Convenience: the `label`-successors of `node` as typed ids (test helper).
pub fn successor_ids(index: &LabelIndex, label: LabelId, node: NodeId) -> Vec<NodeId> {
    index
        .neighbors(Direction::Forward, label, node.index())
        .iter()
        .map(|&n| NodeId::new(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "x", c);
        g.add_edge_by_name(c, "x", a);
        g
    }

    #[test]
    fn forward_partitions_by_label() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            successor_ids(&index, x, a),
            vec![g.node_by_name("b").unwrap()]
        );
        assert_eq!(
            successor_ids(&index, y, a),
            vec![g.node_by_name("c").unwrap()]
        );
        assert_eq!(index.label_edge_count(x), 3);
        assert_eq!(index.label_edge_count(y), 1);
    }

    #[test]
    fn reverse_partitions_by_label() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let c = g.node_by_name("c").unwrap();
        let mut preds: Vec<u32> = index.neighbors(Direction::Reverse, x, c.index()).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![g.node_by_name("b").unwrap().raw()]);
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            index.neighbors(Direction::Reverse, x, a.index()),
            &[c.raw()]
        );
    }

    #[test]
    fn csr_and_backend_builds_agree() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let from_backend = LabelIndex::from_backend(&g);
        let from_csr = LabelIndex::from_csr(&csr);
        for label in g.labels().ids() {
            for node in 0..g.node_count() {
                for direction in [Direction::Forward, Direction::Reverse] {
                    let mut a: Vec<u32> = from_backend.neighbors(direction, label, node).to_vec();
                    let mut b: Vec<u32> = from_csr.neighbors(direction, label, node).to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{direction:?} {label:?} node {node}");
                }
            }
        }
    }

    #[test]
    fn expand_into_marks_neighbors_once() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let mut frontier = FixedBitSet::new(g.node_count());
        frontier.insert_all();
        let mut out = FixedBitSet::new(g.node_count());
        // Every node has exactly one x-successor here: a→b, b→c, c→a.
        let fresh = index.expand_into(Direction::Forward, x, &frontier, &mut out);
        assert_eq!(fresh, 3);
        let again = index.expand_into(Direction::Forward, x, &frontier, &mut out);
        assert_eq!(again, 0, "already marked");
    }

    #[test]
    fn foreign_labels_and_nodes_have_no_neighbors() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        assert!(index
            .neighbors(Direction::Forward, LabelId::new(99), 0)
            .is_empty());
        assert!(index
            .neighbors(Direction::Reverse, LabelId::new(99), 0)
            .is_empty());
        let x = g.label_id("x").unwrap();
        assert!(index.neighbors(Direction::Forward, x, 99).is_empty());
        assert_eq!(index.label_edge_count(LabelId::new(99)), 0);
    }

    #[test]
    fn empty_graph_index() {
        let g = Graph::new();
        let index = LabelIndex::from_backend(&g);
        assert_eq!(index.node_count(), 0);
        assert_eq!(index.label_count(), 0);
    }

    #[test]
    fn memory_bytes_grows_with_the_graph() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        let small = LabelIndex::from_backend(&g).memory_bytes();
        assert!(small > 0);
        let c = g.add_node("C");
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(a, "y", c);
        let larger = LabelIndex::from_backend(&g).memory_bytes();
        assert!(larger > small);
    }
}
