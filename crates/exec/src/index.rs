//! Label-partitioned CSR adjacency — the storage the frontier evaluator
//! sweeps.
//!
//! The product fixed point expands one `(DFA transition, frontier)` pair at a
//! time: *for every node `u` in the frontier of state `q`, follow exactly the
//! edges labeled `a`*.  The general-purpose CSR interleaves all labels in one
//! adjacency stream, so that expansion would scan (and branch on) every
//! incident edge.  [`LabelIndex`] re-partitions both directions by label:
//! `neighbors(direction, label, node)` is a contiguous `&[u32]` slice holding
//! only the matching endpoints, which turns delta expansion into tight
//! slice-and-bitset sweeps.

use crate::bitset::FixedBitSet;
use gps_graph::{CsrGraph, GraphBackend, GraphDelta, LabelId, LabelStat, LabelStats, NodeId};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Expansion direction through the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges source → target.
    Forward,
    /// Follow edges target → source.
    Reverse,
}

/// One label's CSR in one direction: the neighbors of `node` live at
/// `neighbors[offsets[node] .. offsets[node+1]]`.  Nodes beyond
/// `offsets.len() - 1` (inserted after the partition was built) have no
/// neighbors under this label — the bounds check in
/// [`Partition::neighbors_of`] makes stale coverage safe, which is what lets
/// [`LabelIndex::apply_delta`] share untouched partitions across epochs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Partition {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Partition {
    /// Builds one label's partition from its `(from, to)` pairs.
    fn build(node_count: usize, edges: &[(u32, u32)]) -> Self {
        let mut offsets = vec![0u32; node_count + 2];
        // Count one slot ahead so the prefix sum leaves offsets[node] = start.
        for &(from, _) in edges {
            offsets[from as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        offsets.truncate(node_count + 1);
        let mut neighbors = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(from, to) in edges {
            let slot = &mut cursor[from as usize];
            neighbors[*slot as usize] = to;
            *slot += 1;
        }
        Self { offsets, neighbors }
    }

    /// An empty partition covering `node_count` nodes.
    fn empty(node_count: usize) -> Self {
        Self {
            offsets: vec![0u32; node_count + 1],
            neighbors: Vec::new(),
        }
    }

    #[inline]
    fn neighbors_of(&self, node: usize) -> &[u32] {
        if node + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Rebuilds this partition with per-node removals and additions applied
    /// (first-occurrence removal semantics, additions appended in order) —
    /// identical to what a fresh build over the merged adjacency produces.
    fn patched(
        old: Option<&Partition>,
        node_count: usize,
        removals: &HashMap<u32, Vec<u32>>,
        additions: &HashMap<u32, Vec<u32>>,
    ) -> Self {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for node in 0..node_count {
            let base = old.map(|p| p.neighbors_of(node)).unwrap_or(&[]);
            match removals.get(&(node as u32)) {
                Some(removed) => {
                    let mut pending = removed.clone();
                    for &to in base {
                        if let Some(pos) = pending.iter().position(|&r| r == to) {
                            pending.swap_remove(pos);
                        } else {
                            neighbors.push(to);
                        }
                    }
                }
                None => neighbors.extend_from_slice(base),
            }
            if let Some(added) = additions.get(&(node as u32)) {
                neighbors.extend_from_slice(added);
            }
            offsets.push(neighbors.len() as u32);
        }
        Self { offsets, neighbors }
    }

    fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.neighbors.len()) * std::mem::size_of::<u32>()
    }

    fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    fn occupied_nodes(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }
}

/// One direction's partitions, one per label, individually [`Arc`]-shared so
/// an epoch publish clones only the touched labels.
#[derive(Debug, Clone, Default)]
struct DirIndex {
    parts: Vec<Arc<Partition>>,
}

impl DirIndex {
    fn build(node_count: usize, label_count: usize, edges: &[(u32, u32, u32)]) -> Self {
        // edges: (label, from, to) in the direction being built.
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); label_count];
        for &(label, from, to) in edges {
            buckets[label as usize].push((from, to));
        }
        Self {
            parts: buckets
                .into_iter()
                .map(|bucket| Arc::new(Partition::build(node_count, &bucket)))
                .collect(),
        }
    }

    #[inline]
    fn neighbors(&self, label: usize, node: usize) -> &[u32] {
        self.parts[label].neighbors_of(node)
    }
}

/// Label-partitioned forward and reverse adjacency of one graph snapshot.
///
/// Built once per graph and shared across every query of a batch (and across
/// worker threads — the index is immutable after construction).  A live
/// store does not rebuild it per epoch: [`LabelIndex::apply_delta`] patches
/// only the label partitions an update touches and `Arc`-shares the rest
/// with the previous epoch's index.
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    node_count: usize,
    label_count: usize,
    fwd: DirIndex,
    rev: DirIndex,
    label_edge_counts: Vec<usize>,
}

impl LabelIndex {
    /// Builds the index from any backend by one pass over the edge set.
    pub fn from_backend<B: GraphBackend>(graph: &B) -> Self {
        let mut edges = Vec::with_capacity(graph.edge_count());
        for node in graph.nodes() {
            for (label, target) in graph.successors(node) {
                edges.push((label.raw(), node.index() as u32, target.raw()));
            }
        }
        Self::from_edges(graph.node_count(), graph.label_count(), edges)
    }

    /// Builds the index from a CSR snapshot via its raw packed arrays (no
    /// per-node iterator dispatch).
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let offsets = csr.fwd_offsets();
        let entries = csr.fwd_entries();
        let mut edges = Vec::with_capacity(entries.len());
        for node in 0..csr.node_count() {
            let lo = offsets[node] as usize;
            let hi = offsets[node + 1] as usize;
            for entry in &entries[lo..hi] {
                edges.push((entry.label.raw(), node as u32, entry.node.raw()));
            }
        }
        Self::from_edges(csr.node_count(), csr.label_count(), edges)
    }

    fn from_edges(node_count: usize, label_count: usize, edges: Vec<(u32, u32, u32)>) -> Self {
        let mut label_edge_counts = vec![0usize; label_count];
        for &(label, _, _) in &edges {
            label_edge_counts[label as usize] += 1;
        }
        let fwd = DirIndex::build(node_count, label_count, &edges);
        let reversed: Vec<(u32, u32, u32)> = edges
            .into_iter()
            .map(|(label, from, to)| (label, to, from))
            .collect();
        let rev = DirIndex::build(node_count, label_count, &reversed);
        Self {
            node_count,
            label_count,
            fwd,
            rev,
            label_edge_counts,
        }
    }

    /// Number of nodes in the indexed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of labels in the indexed graph's alphabet.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Approximate heap footprint of the index in bytes (the packed offset
    /// and neighbor arrays of both directions).  Multi-session deployments
    /// report this to show N sessions share **one** index allocation rather
    /// than N copies.  Partitions `Arc`-shared with another epoch's index
    /// are counted in full here (the figure is per-index, not per-fleet).
    pub fn memory_bytes(&self) -> usize {
        let dir = |d: &DirIndex| -> usize { d.parts.iter().map(|p| p.memory_bytes()).sum() };
        dir(&self.fwd)
            + dir(&self.rev)
            + self.label_edge_counts.len() * std::mem::size_of::<usize>()
    }

    /// Number of edges carrying `label`.
    pub fn label_edge_count(&self, label: LabelId) -> usize {
        self.label_edge_counts
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// The `label`-neighbors of `node` in `direction` as a packed slice.
    ///
    /// Labels outside the indexed alphabet (a query compiled against a
    /// different interner) and out-of-range nodes simply have no neighbors,
    /// mirroring the naive evaluator's "undefined transition rejects"
    /// semantics instead of panicking.
    #[inline]
    pub fn neighbors(&self, direction: Direction, label: LabelId, node: usize) -> &[u32] {
        if label.index() >= self.label_count || node >= self.node_count {
            return &[];
        }
        match direction {
            Direction::Forward => self.fwd.neighbors(label.index(), node),
            Direction::Reverse => self.rev.neighbors(label.index(), node),
        }
    }

    /// Builds the next epoch's index from this one by patching **only** the
    /// label partitions `delta` touches; untouched labels share their packed
    /// arrays with this index (`Arc` clone, no copy).
    ///
    /// `node_count` / `label_count` are the merged graph's counts (take them
    /// from the compacted snapshot).  The result is identical to
    /// [`from_csr`](Self::from_csr) over that snapshot — the partition's
    /// per-node neighbor order is (surviving base order, then insertion
    /// order), exactly what a fresh build over the merged adjacency yields.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        node_count: usize,
        label_count: usize,
    ) -> LabelIndex {
        let touched = delta.touched_labels();
        // Per touched label and direction: removals and additions bucketed by
        // the partition's "from" endpoint (source forward, target reverse).
        let mut fwd_removals: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        let mut rev_removals: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        let mut fwd_additions: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        let mut rev_additions: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        for edge in &delta.removed_edges {
            fwd_removals
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.source.raw())
                .or_default()
                .push(edge.target.raw());
            rev_removals
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.target.raw())
                .or_default()
                .push(edge.source.raw());
        }
        for edge in &delta.added_edges {
            fwd_additions
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.source.raw())
                .or_default()
                .push(edge.target.raw());
            rev_additions
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.target.raw())
                .or_default()
                .push(edge.source.raw());
        }

        let empty = HashMap::new();
        let mut fwd_parts = Vec::with_capacity(label_count);
        let mut rev_parts = Vec::with_capacity(label_count);
        let mut label_edge_counts = vec![0usize; label_count];
        for (label, slot) in label_edge_counts.iter_mut().enumerate() {
            let known = label < self.label_count;
            if known && !touched.contains(&LabelId::from(label)) {
                fwd_parts.push(Arc::clone(&self.fwd.parts[label]));
                rev_parts.push(Arc::clone(&self.rev.parts[label]));
                *slot = self.label_edge_counts[label];
                continue;
            }
            let old_fwd = known.then(|| self.fwd.parts[label].as_ref());
            let old_rev = known.then(|| self.rev.parts[label].as_ref());
            if !touched.contains(&LabelId::from(label)) {
                // A label interned without edges: nothing to patch.
                fwd_parts.push(Arc::new(Partition::empty(node_count)));
                rev_parts.push(Arc::new(Partition::empty(node_count)));
                continue;
            }
            let raw = label as u32;
            let fwd = Partition::patched(
                old_fwd,
                node_count,
                fwd_removals.get(&raw).unwrap_or(&empty),
                fwd_additions.get(&raw).unwrap_or(&empty),
            );
            let rev = Partition::patched(
                old_rev,
                node_count,
                rev_removals.get(&raw).unwrap_or(&empty),
                rev_additions.get(&raw).unwrap_or(&empty),
            );
            *slot = fwd.neighbors.len();
            fwd_parts.push(Arc::new(fwd));
            rev_parts.push(Arc::new(rev));
        }
        LabelIndex {
            node_count,
            label_count,
            fwd: DirIndex { parts: fwd_parts },
            rev: DirIndex { parts: rev_parts },
            label_edge_counts,
        }
    }

    /// Derives the merged graph's [`LabelStats`] from this (already patched)
    /// index: untouched labels keep their [`LabelStat`] from `old` (only the
    /// frequency denominator is refreshed), touched labels are recomputed
    /// from their partitions — no sweep over the graph's adjacency.
    pub fn patched_stats(&self, old: &LabelStats, touched: &BTreeSet<LabelId>) -> LabelStats {
        let edge_count: usize = self.label_edge_counts.iter().sum();
        let per_label = (0..self.label_count)
            .map(|index| {
                let label = LabelId::from(index);
                let known = old.get(label).filter(|_| !touched.contains(&label));
                let mut stat = match known {
                    Some(stat) => stat.clone(),
                    None => {
                        let fwd = self.fwd.parts[index].as_ref();
                        let rev = self.rev.parts[index].as_ref();
                        LabelStat {
                            label,
                            edge_count: fwd.neighbors.len(),
                            frequency: 0.0,
                            max_out_degree: fwd.max_degree(),
                            max_in_degree: rev.max_degree(),
                            source_count: fwd.occupied_nodes(),
                            target_count: rev.occupied_nodes(),
                        }
                    }
                };
                stat.frequency = if edge_count == 0 {
                    0.0
                } else {
                    stat.edge_count as f64 / edge_count as f64
                };
                stat
            })
            .collect();
        LabelStats {
            per_label,
            node_count: self.node_count,
            edge_count,
        }
    }

    /// Marks in `out` every `label`-neighbor (in `direction`) of every node
    /// of `frontier`, returning how many bits were newly set in `out`.
    pub fn expand_into(
        &self,
        direction: Direction,
        label: LabelId,
        frontier: &FixedBitSet,
        out: &mut FixedBitSet,
    ) -> usize {
        let mut fresh = 0;
        for node in frontier.ones() {
            for &neighbor in self.neighbors(direction, label, node) {
                fresh += out.insert(neighbor as usize) as usize;
            }
        }
        fresh
    }
}

/// Convenience: the `label`-successors of `node` as typed ids (test helper).
pub fn successor_ids(index: &LabelIndex, label: LabelId, node: NodeId) -> Vec<NodeId> {
    index
        .neighbors(Direction::Forward, label, node.index())
        .iter()
        .map(|&n| NodeId::new(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "x", c);
        g.add_edge_by_name(c, "x", a);
        g
    }

    #[test]
    fn forward_partitions_by_label() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            successor_ids(&index, x, a),
            vec![g.node_by_name("b").unwrap()]
        );
        assert_eq!(
            successor_ids(&index, y, a),
            vec![g.node_by_name("c").unwrap()]
        );
        assert_eq!(index.label_edge_count(x), 3);
        assert_eq!(index.label_edge_count(y), 1);
    }

    #[test]
    fn reverse_partitions_by_label() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let c = g.node_by_name("c").unwrap();
        let mut preds: Vec<u32> = index.neighbors(Direction::Reverse, x, c.index()).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![g.node_by_name("b").unwrap().raw()]);
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            index.neighbors(Direction::Reverse, x, a.index()),
            &[c.raw()]
        );
    }

    #[test]
    fn csr_and_backend_builds_agree() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let from_backend = LabelIndex::from_backend(&g);
        let from_csr = LabelIndex::from_csr(&csr);
        for label in g.labels().ids() {
            for node in 0..g.node_count() {
                for direction in [Direction::Forward, Direction::Reverse] {
                    let mut a: Vec<u32> = from_backend.neighbors(direction, label, node).to_vec();
                    let mut b: Vec<u32> = from_csr.neighbors(direction, label, node).to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{direction:?} {label:?} node {node}");
                }
            }
        }
    }

    #[test]
    fn expand_into_marks_neighbors_once() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let mut frontier = FixedBitSet::new(g.node_count());
        frontier.insert_all();
        let mut out = FixedBitSet::new(g.node_count());
        // Every node has exactly one x-successor here: a→b, b→c, c→a.
        let fresh = index.expand_into(Direction::Forward, x, &frontier, &mut out);
        assert_eq!(fresh, 3);
        let again = index.expand_into(Direction::Forward, x, &frontier, &mut out);
        assert_eq!(again, 0, "already marked");
    }

    #[test]
    fn foreign_labels_and_nodes_have_no_neighbors() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        assert!(index
            .neighbors(Direction::Forward, LabelId::new(99), 0)
            .is_empty());
        assert!(index
            .neighbors(Direction::Reverse, LabelId::new(99), 0)
            .is_empty());
        let x = g.label_id("x").unwrap();
        assert!(index.neighbors(Direction::Forward, x, 99).is_empty());
        assert_eq!(index.label_edge_count(LabelId::new(99)), 0);
    }

    #[test]
    fn empty_graph_index() {
        let g = Graph::new();
        let index = LabelIndex::from_backend(&g);
        assert_eq!(index.node_count(), 0);
        assert_eq!(index.label_count(), 0);
    }

    #[test]
    fn apply_delta_matches_a_fresh_build_and_shares_untouched_partitions() {
        use gps_graph::{CsrGraph, DeltaGraph};

        let g = sample();
        let base = std::sync::Arc::new(CsrGraph::from_graph(&g));
        let old = LabelIndex::from_csr(&base);

        // Touch only label `x`: remove a-x->b, add c-x->d and a new node d;
        // also intern a brand-new label `z` with one edge.
        let mut delta = DeltaGraph::new(std::sync::Arc::clone(&base));
        let a = delta.node_by_name("a").unwrap();
        let b = delta.node_by_name("b").unwrap();
        let c = delta.node_by_name("c").unwrap();
        let d = delta.add_node("d");
        let x = delta.labels().get("x").unwrap();
        let z = delta.label("z");
        assert!(delta.remove_edge(a, x, b));
        delta.add_edge(c, x, d);
        delta.add_edge(d, z, a);
        let summary = delta.delta();
        let compacted = delta.compact();

        let patched = old.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        let fresh = LabelIndex::from_csr(&compacted);
        assert_eq!(patched.node_count(), fresh.node_count());
        assert_eq!(patched.label_count(), fresh.label_count());
        for label in 0..fresh.label_count() {
            let label = LabelId::from(label);
            assert_eq!(
                patched.label_edge_count(label),
                fresh.label_edge_count(label),
                "{label:?}"
            );
            for node in 0..fresh.node_count() {
                for direction in [Direction::Forward, Direction::Reverse] {
                    assert_eq!(
                        patched.neighbors(direction, label, node),
                        fresh.neighbors(direction, label, node),
                        "{direction:?} {label:?} node {node}"
                    );
                }
            }
        }
        // The untouched label `y` shares its packed arrays with the old index.
        let y = g.label_id("y").unwrap();
        assert!(std::sync::Arc::ptr_eq(
            &patched.fwd.parts[y.index()],
            &old.fwd.parts[y.index()]
        ));
        assert!(!std::sync::Arc::ptr_eq(
            &patched.fwd.parts[x.index()],
            &old.fwd.parts[x.index()]
        ));

        // Patched statistics agree with a full recompute on the merged graph.
        let old_stats = gps_graph::LabelStats::compute(&g);
        let patched_stats = patched.patched_stats(&old_stats, &summary.touched_labels());
        let fresh_stats = gps_graph::LabelStats::compute(&compacted);
        assert_eq!(patched_stats, fresh_stats);
    }

    #[test]
    fn patched_partitions_handle_parallel_duplicates() {
        use gps_graph::{CsrGraph, DeltaGraph};

        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "x", b);
        let base = std::sync::Arc::new(CsrGraph::from_graph(&g));
        let old = LabelIndex::from_csr(&base);
        let mut delta = DeltaGraph::new(std::sync::Arc::clone(&base));
        let x = delta.labels().get("x").unwrap();
        assert!(delta.remove_edge(a, x, b));
        assert!(delta.remove_edge(a, x, b));
        let summary = delta.delta();
        let compacted = delta.compact();
        let patched = old.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        assert_eq!(
            patched.neighbors(Direction::Forward, x, a.index()),
            &[b.raw()]
        );
        assert_eq!(patched.label_edge_count(x), 1);
    }

    #[test]
    fn memory_bytes_grows_with_the_graph() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        let small = LabelIndex::from_backend(&g).memory_bytes();
        assert!(small > 0);
        let c = g.add_node("C");
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(a, "y", c);
        let larger = LabelIndex::from_backend(&g).memory_bytes();
        assert!(larger > small);
    }
}
