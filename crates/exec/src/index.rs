//! Label-partitioned CSR adjacency — the storage the frontier evaluator
//! sweeps.
//!
//! The product fixed point expands one `(DFA transition, frontier)` pair at a
//! time: *for every node `u` in the frontier of state `q`, follow exactly the
//! edges labeled `a`*.  The general-purpose CSR interleaves all labels in one
//! adjacency stream, so that expansion would scan (and branch on) every
//! incident edge.  [`LabelIndex`] re-partitions both directions by label:
//! `neighbors(direction, label, node)` is a contiguous `&[u32]` slice holding
//! only the matching endpoints, which turns delta expansion into tight
//! slice-and-bitset sweeps.

use crate::bitset::FixedBitSet;
use gps_graph::{CsrGraph, GraphBackend, GraphDelta, LabelId, LabelStat, LabelStats, NodeId};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs `jobs` independent closures across at most `workers` scoped threads
/// and returns the results in job order.
///
/// Work is distributed by an atomic cursor (work-stealing over indices), so
/// a straggler job never idles the other workers.  With `workers <= 1` or a
/// single job this is a plain sequential loop — no thread is ever spawned —
/// which is what keeps the sharded index byte-identical *and*
/// overhead-identical to the historical sequential build on one core.
fn run_jobs<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(jobs);
    if workers <= 1 {
        return (0..jobs).map(&job).collect();
    }
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        if next >= jobs {
                            break;
                        }
                        out.push((next, job(next)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("index shard worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for chunk in per_worker {
        for (index, value) in chunk {
            slots[index] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index below the cursor bound ran"))
        .collect()
}

/// Expansion direction through the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges source → target.
    Forward,
    /// Follow edges target → source.
    Reverse,
}

/// One label's CSR in one direction: the neighbors of `node` live at
/// `neighbors[offsets[node] .. offsets[node+1]]`.  Nodes beyond
/// `offsets.len() - 1` (inserted after the partition was built) have no
/// neighbors under this label — the bounds check in
/// [`Partition::neighbors_of`] makes stale coverage safe, which is what lets
/// [`LabelIndex::apply_delta`] share untouched partitions across epochs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Partition {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Partition {
    /// Builds one label's partition from its `(from, to)` pairs.
    fn build(node_count: usize, edges: &[(u32, u32)]) -> Self {
        Self::build_chunked(node_count, &[edges])
    }

    /// Builds one label's partition from its `(from, to)` pairs split across
    /// consecutive chunks — byte-identical to [`build`](Self::build) over
    /// the chunks' concatenation.
    fn build_chunked(node_count: usize, chunks: &[&[(u32, u32)]]) -> Self {
        let mut offsets = vec![0u32; node_count + 2];
        // Count one slot ahead so the prefix sum leaves offsets[node] = start.
        for chunk in chunks {
            for &(from, _) in *chunk {
                offsets[from as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        offsets.truncate(node_count + 1);
        let total: usize = chunks.iter().map(|chunk| chunk.len()).sum();
        let mut neighbors = vec![0u32; total];
        let mut cursor = offsets.clone();
        for chunk in chunks {
            for &(from, to) in *chunk {
                let slot = &mut cursor[from as usize];
                neighbors[*slot as usize] = to;
                *slot += 1;
            }
        }
        Self { offsets, neighbors }
    }

    /// An empty partition covering `node_count` nodes.
    fn empty(node_count: usize) -> Self {
        Self {
            offsets: vec![0u32; node_count + 1],
            neighbors: Vec::new(),
        }
    }

    #[inline]
    fn neighbors_of(&self, node: usize) -> &[u32] {
        if node + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Rebuilds this partition with per-node removals and additions applied
    /// (first-occurrence removal semantics, additions appended in order) —
    /// identical to what a fresh build over the merged adjacency produces.
    fn patched(
        old: Option<&Partition>,
        node_count: usize,
        removals: &HashMap<u32, Vec<u32>>,
        additions: &HashMap<u32, Vec<u32>>,
    ) -> Self {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for node in 0..node_count {
            let base = old.map(|p| p.neighbors_of(node)).unwrap_or(&[]);
            match removals.get(&(node as u32)) {
                Some(removed) => {
                    let mut pending = removed.clone();
                    for &to in base {
                        if let Some(pos) = pending.iter().position(|&r| r == to) {
                            pending.swap_remove(pos);
                        } else {
                            neighbors.push(to);
                        }
                    }
                }
                None => neighbors.extend_from_slice(base),
            }
            if let Some(added) = additions.get(&(node as u32)) {
                neighbors.extend_from_slice(added);
            }
            offsets.push(neighbors.len() as u32);
        }
        Self { offsets, neighbors }
    }

    fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.neighbors.len()) * std::mem::size_of::<u32>()
    }

    fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    fn occupied_nodes(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }
}

/// One direction's partitions, one per label, individually [`Arc`]-shared so
/// an epoch publish clones only the touched labels.
#[derive(Debug, Clone, Default)]
struct DirIndex {
    parts: Vec<Arc<Partition>>,
}

impl DirIndex {
    #[inline]
    fn neighbors(&self, label: usize, node: usize) -> &[u32] {
        self.parts[label].neighbors_of(node)
    }
}

/// Label-partitioned forward and reverse adjacency of one graph snapshot.
///
/// Built once per graph and shared across every query of a batch (and across
/// worker threads — the index is immutable after construction).  A live
/// store does not rebuild it per epoch: [`LabelIndex::apply_delta`] patches
/// only the label partitions an update touches and `Arc`-shares the rest
/// with the previous epoch's index.
///
/// The per-(direction, label) partitions are independent, so both the fresh
/// build and the delta patch can fan out across **shards**: with
/// [`from_csr_sharded`](Self::from_csr_sharded) or
/// [`with_shards`](Self::with_shards) set to `n > 1`, up to `n` scoped
/// threads pull partition jobs off an atomic cursor.  The result is
/// byte-identical to the sequential build regardless of shard count —
/// every partition's content depends only on its own label's edges, never
/// on scheduling (the differential suites assert exact equality across
/// shard counts).  `shards <= 1` takes the literal sequential code path.
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    node_count: usize,
    label_count: usize,
    fwd: DirIndex,
    rev: DirIndex,
    label_edge_counts: Vec<usize>,
    /// Build/patch parallelism: number of worker threads partition jobs fan
    /// out over (0 and 1 both mean sequential).  Inherited by indexes
    /// derived via [`apply_delta`](Self::apply_delta).
    shards: usize,
}

impl LabelIndex {
    /// Builds the index from any backend by one pass over the edge set.
    pub fn from_backend<B: GraphBackend>(graph: &B) -> Self {
        let mut edges = Vec::with_capacity(graph.edge_count());
        for node in graph.nodes() {
            for (label, target) in graph.successors(node) {
                edges.push((label.raw(), node.index() as u32, target.raw()));
            }
        }
        Self::from_edges(graph.node_count(), graph.label_count(), edges, 1)
    }

    /// Builds the index from a CSR snapshot via its raw packed arrays (no
    /// per-node iterator dispatch).
    pub fn from_csr(csr: &CsrGraph) -> Self {
        Self::from_csr_sharded(csr, 1)
    }

    /// Like [`from_csr`](Self::from_csr), but builds the per-(direction,
    /// label) partitions on up to `shards` scoped threads and remembers the
    /// shard count for [`apply_delta`](Self::apply_delta).  Byte-identical
    /// to the sequential build for every `shards` value.
    pub fn from_csr_sharded(csr: &CsrGraph, shards: usize) -> Self {
        let node_count = csr.node_count();
        let label_count = csr.label_count();
        let offsets = csr.fwd_offsets();
        let entries = csr.fwd_entries();
        // Every worker buckets a *fixed* contiguous node range straight off
        // the packed CSR arrays (no intermediate edge vector).  Range
        // boundaries depend only on the shard count, and concatenating the
        // per-range buckets in range order reproduces exactly what a single
        // pass over the whole snapshot produces — so the build stays
        // byte-identical at every shard count.
        struct BucketChunk {
            fwd: Vec<Vec<(u32, u32)>>,
            rev: Vec<Vec<(u32, u32)>>,
        }
        let workers = shards.max(1).min(node_count.max(1));
        let per_worker = node_count.div_ceil(workers.max(1)).max(1);
        let chunks: Vec<BucketChunk> = run_jobs(workers, workers, |w| {
            let lo = (w * per_worker).min(node_count);
            let hi = ((w + 1) * per_worker).min(node_count);
            let mut fwd: Vec<Vec<(u32, u32)>> = vec![Vec::new(); label_count];
            let mut rev: Vec<Vec<(u32, u32)>> = vec![Vec::new(); label_count];
            for node in lo..hi {
                let span = offsets[node] as usize..offsets[node + 1] as usize;
                for entry in &entries[span] {
                    fwd[entry.label.index()].push((node as u32, entry.node.raw()));
                    rev[entry.label.index()].push((entry.node.raw(), node as u32));
                }
            }
            BucketChunk { fwd, rev }
        });
        let mut label_edge_counts = vec![0usize; label_count];
        for chunk in &chunks {
            for (label, bucket) in chunk.fwd.iter().enumerate() {
                label_edge_counts[label] += bucket.len();
            }
        }
        // One job per (direction, label) partition: jobs [0, label_count)
        // build forward, [label_count, 2*label_count) build reverse.
        let mut parts = run_jobs(shards.max(1), label_count * 2, |job| {
            let slices: Vec<&[(u32, u32)]> = chunks
                .iter()
                .map(|chunk| {
                    if job < label_count {
                        chunk.fwd[job].as_slice()
                    } else {
                        chunk.rev[job - label_count].as_slice()
                    }
                })
                .collect();
            Arc::new(Partition::build_chunked(node_count, &slices))
        });
        let rev_parts = parts.split_off(label_count);
        Self {
            node_count,
            label_count,
            fwd: DirIndex { parts },
            rev: DirIndex { parts: rev_parts },
            label_edge_counts,
            shards,
        }
    }

    /// Returns this index with its shard (worker) count set; subsequent
    /// [`apply_delta`](Self::apply_delta) calls patch touched labels on up
    /// to that many threads.  Does not re-partition anything.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The configured shard (worker) count; `0`/`1` mean sequential.
    pub fn shards(&self) -> usize {
        self.shards
    }

    #[inline]
    fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    fn from_edges(
        node_count: usize,
        label_count: usize,
        edges: Vec<(u32, u32, u32)>,
        shards: usize,
    ) -> Self {
        let mut label_edge_counts = vec![0usize; label_count];
        for &(label, _, _) in &edges {
            label_edge_counts[label as usize] += 1;
        }
        // Bucket both directions per label in one pass over the edge stream;
        // bucket order is edge-stream order, exactly what the historical
        // build-then-reverse sequence produced.
        let mut fwd_buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); label_count];
        let mut rev_buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); label_count];
        for &(label, from, to) in &edges {
            fwd_buckets[label as usize].push((from, to));
            rev_buckets[label as usize].push((to, from));
        }
        drop(edges);
        // One job per (direction, label) partition: jobs [0, label_count)
        // build forward, [label_count, 2*label_count) build reverse.
        let mut parts = run_jobs(shards.max(1), label_count * 2, |job| {
            let bucket = if job < label_count {
                &fwd_buckets[job]
            } else {
                &rev_buckets[job - label_count]
            };
            Arc::new(Partition::build(node_count, bucket))
        });
        let rev_parts = parts.split_off(label_count);
        Self {
            node_count,
            label_count,
            fwd: DirIndex { parts },
            rev: DirIndex { parts: rev_parts },
            label_edge_counts,
            shards,
        }
    }

    /// Number of nodes in the indexed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of labels in the indexed graph's alphabet.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Approximate heap footprint of the index in bytes (the packed offset
    /// and neighbor arrays of both directions).  Multi-session deployments
    /// report this to show N sessions share **one** index allocation rather
    /// than N copies.  Partitions `Arc`-shared with another epoch's index
    /// are counted in full here (the figure is per-index, not per-fleet).
    pub fn memory_bytes(&self) -> usize {
        let dir = |d: &DirIndex| -> usize { d.parts.iter().map(|p| p.memory_bytes()).sum() };
        dir(&self.fwd)
            + dir(&self.rev)
            + self.label_edge_counts.len() * std::mem::size_of::<usize>()
    }

    /// Number of edges carrying `label`.
    pub fn label_edge_count(&self, label: LabelId) -> usize {
        self.label_edge_counts
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// The `label`-neighbors of `node` in `direction` as a packed slice.
    ///
    /// Labels outside the indexed alphabet (a query compiled against a
    /// different interner) and out-of-range nodes simply have no neighbors,
    /// mirroring the naive evaluator's "undefined transition rejects"
    /// semantics instead of panicking.
    #[inline]
    pub fn neighbors(&self, direction: Direction, label: LabelId, node: usize) -> &[u32] {
        if label.index() >= self.label_count || node >= self.node_count {
            return &[];
        }
        match direction {
            Direction::Forward => self.fwd.neighbors(label.index(), node),
            Direction::Reverse => self.rev.neighbors(label.index(), node),
        }
    }

    /// Builds the next epoch's index from this one by patching **only** the
    /// label partitions `delta` touches; untouched labels share their packed
    /// arrays with this index (`Arc` clone, no copy).
    ///
    /// `node_count` / `label_count` are the merged graph's counts (take them
    /// from the compacted snapshot).  The result is identical to
    /// [`from_csr`](Self::from_csr) over that snapshot — the partition's
    /// per-node neighbor order is (surviving base order, then insertion
    /// order), exactly what a fresh build over the merged adjacency yields.
    ///
    /// When this index carries `shards > 1`, the touched labels' patch jobs
    /// (one per direction × label) fan out over that many scoped threads;
    /// each job only reads its own label's removal/addition buckets and old
    /// partition, so the output is byte-identical regardless of shard count.
    /// The returned index inherits the shard setting.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        node_count: usize,
        label_count: usize,
    ) -> LabelIndex {
        let touched = delta.touched_labels();
        // Per touched label and direction: removals and additions bucketed by
        // the partition's "from" endpoint (source forward, target reverse).
        let mut fwd_removals: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        let mut rev_removals: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        let mut fwd_additions: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        let mut rev_additions: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
        for edge in &delta.removed_edges {
            fwd_removals
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.source.raw())
                .or_default()
                .push(edge.target.raw());
            rev_removals
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.target.raw())
                .or_default()
                .push(edge.source.raw());
        }
        for edge in &delta.added_edges {
            fwd_additions
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.source.raw())
                .or_default()
                .push(edge.target.raw());
            rev_additions
                .entry(edge.label.raw())
                .or_default()
                .entry(edge.target.raw())
                .or_default()
                .push(edge.source.raw());
        }

        let empty = HashMap::new();
        // Patch the touched labels first — one job per label (each job
        // rebuilds both directions), fanned over the configured shards.
        // Each job reads only its own label's buckets and old partitions.
        let patch_labels: Vec<usize> = (0..label_count)
            .filter(|&label| touched.contains(&LabelId::from(label)))
            .collect();
        let patched_pairs: Vec<(Partition, Partition)> =
            run_jobs(self.effective_shards(), patch_labels.len(), |job| {
                let label = patch_labels[job];
                let known = label < self.label_count;
                let old_fwd = known.then(|| self.fwd.parts[label].as_ref());
                let old_rev = known.then(|| self.rev.parts[label].as_ref());
                let raw = label as u32;
                let fwd = Partition::patched(
                    old_fwd,
                    node_count,
                    fwd_removals.get(&raw).unwrap_or(&empty),
                    fwd_additions.get(&raw).unwrap_or(&empty),
                );
                let rev = Partition::patched(
                    old_rev,
                    node_count,
                    rev_removals.get(&raw).unwrap_or(&empty),
                    rev_additions.get(&raw).unwrap_or(&empty),
                );
                (fwd, rev)
            });
        let mut patched_by_label: Vec<Option<(Partition, Partition)>> =
            Vec::with_capacity(label_count);
        patched_by_label.resize_with(label_count, || None);
        for (&label, pair) in patch_labels.iter().zip(patched_pairs) {
            patched_by_label[label] = Some(pair);
        }

        let mut fwd_parts = Vec::with_capacity(label_count);
        let mut rev_parts = Vec::with_capacity(label_count);
        let mut label_edge_counts = vec![0usize; label_count];
        for (label, slot) in label_edge_counts.iter_mut().enumerate() {
            if let Some((fwd, rev)) = patched_by_label[label].take() {
                *slot = fwd.neighbors.len();
                fwd_parts.push(Arc::new(fwd));
                rev_parts.push(Arc::new(rev));
            } else if label < self.label_count {
                fwd_parts.push(Arc::clone(&self.fwd.parts[label]));
                rev_parts.push(Arc::clone(&self.rev.parts[label]));
                *slot = self.label_edge_counts[label];
            } else {
                // A label interned without edges: nothing to patch.
                fwd_parts.push(Arc::new(Partition::empty(node_count)));
                rev_parts.push(Arc::new(Partition::empty(node_count)));
            }
        }
        LabelIndex {
            node_count,
            label_count,
            fwd: DirIndex { parts: fwd_parts },
            rev: DirIndex { parts: rev_parts },
            label_edge_counts,
            shards: self.shards,
        }
    }

    /// Derives the merged graph's [`LabelStats`] from this (already patched)
    /// index: untouched labels keep their [`LabelStat`] from `old` (only the
    /// frequency denominator is refreshed), touched labels are recomputed
    /// from their partitions — no sweep over the graph's adjacency.
    pub fn patched_stats(&self, old: &LabelStats, touched: &BTreeSet<LabelId>) -> LabelStats {
        let edge_count: usize = self.label_edge_counts.iter().sum();
        let per_label = (0..self.label_count)
            .map(|index| {
                let label = LabelId::from(index);
                let known = old.get(label).filter(|_| !touched.contains(&label));
                let mut stat = match known {
                    Some(stat) => stat.clone(),
                    None => {
                        let fwd = self.fwd.parts[index].as_ref();
                        let rev = self.rev.parts[index].as_ref();
                        LabelStat {
                            label,
                            edge_count: fwd.neighbors.len(),
                            frequency: 0.0,
                            max_out_degree: fwd.max_degree(),
                            max_in_degree: rev.max_degree(),
                            source_count: fwd.occupied_nodes(),
                            target_count: rev.occupied_nodes(),
                        }
                    }
                };
                stat.frequency = if edge_count == 0 {
                    0.0
                } else {
                    stat.edge_count as f64 / edge_count as f64
                };
                stat
            })
            .collect();
        LabelStats {
            per_label,
            node_count: self.node_count,
            edge_count,
        }
    }

    /// Marks in `out` every `label`-neighbor (in `direction`) of every node
    /// of `frontier`, returning how many bits were newly set in `out`.
    pub fn expand_into(
        &self,
        direction: Direction,
        label: LabelId,
        frontier: &FixedBitSet,
        out: &mut FixedBitSet,
    ) -> usize {
        let mut fresh = 0;
        for node in frontier.ones() {
            for &neighbor in self.neighbors(direction, label, node) {
                fresh += out.insert(neighbor as usize) as usize;
            }
        }
        fresh
    }
}

/// Convenience: the `label`-successors of `node` as typed ids (test helper).
pub fn successor_ids(index: &LabelIndex, label: LabelId, node: NodeId) -> Vec<NodeId> {
    index
        .neighbors(Direction::Forward, label, node.index())
        .iter()
        .map(|&n| NodeId::new(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "x", c);
        g.add_edge_by_name(c, "x", a);
        g
    }

    #[test]
    fn forward_partitions_by_label() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            successor_ids(&index, x, a),
            vec![g.node_by_name("b").unwrap()]
        );
        assert_eq!(
            successor_ids(&index, y, a),
            vec![g.node_by_name("c").unwrap()]
        );
        assert_eq!(index.label_edge_count(x), 3);
        assert_eq!(index.label_edge_count(y), 1);
    }

    #[test]
    fn reverse_partitions_by_label() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let c = g.node_by_name("c").unwrap();
        let mut preds: Vec<u32> = index.neighbors(Direction::Reverse, x, c.index()).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![g.node_by_name("b").unwrap().raw()]);
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            index.neighbors(Direction::Reverse, x, a.index()),
            &[c.raw()]
        );
    }

    #[test]
    fn csr_and_backend_builds_agree() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let from_backend = LabelIndex::from_backend(&g);
        let from_csr = LabelIndex::from_csr(&csr);
        for label in g.labels().ids() {
            for node in 0..g.node_count() {
                for direction in [Direction::Forward, Direction::Reverse] {
                    let mut a: Vec<u32> = from_backend.neighbors(direction, label, node).to_vec();
                    let mut b: Vec<u32> = from_csr.neighbors(direction, label, node).to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{direction:?} {label:?} node {node}");
                }
            }
        }
    }

    #[test]
    fn expand_into_marks_neighbors_once() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        let x = g.label_id("x").unwrap();
        let mut frontier = FixedBitSet::new(g.node_count());
        frontier.insert_all();
        let mut out = FixedBitSet::new(g.node_count());
        // Every node has exactly one x-successor here: a→b, b→c, c→a.
        let fresh = index.expand_into(Direction::Forward, x, &frontier, &mut out);
        assert_eq!(fresh, 3);
        let again = index.expand_into(Direction::Forward, x, &frontier, &mut out);
        assert_eq!(again, 0, "already marked");
    }

    #[test]
    fn foreign_labels_and_nodes_have_no_neighbors() {
        let g = sample();
        let index = LabelIndex::from_backend(&g);
        assert!(index
            .neighbors(Direction::Forward, LabelId::new(99), 0)
            .is_empty());
        assert!(index
            .neighbors(Direction::Reverse, LabelId::new(99), 0)
            .is_empty());
        let x = g.label_id("x").unwrap();
        assert!(index.neighbors(Direction::Forward, x, 99).is_empty());
        assert_eq!(index.label_edge_count(LabelId::new(99)), 0);
    }

    #[test]
    fn empty_graph_index() {
        let g = Graph::new();
        let index = LabelIndex::from_backend(&g);
        assert_eq!(index.node_count(), 0);
        assert_eq!(index.label_count(), 0);
    }

    #[test]
    fn apply_delta_matches_a_fresh_build_and_shares_untouched_partitions() {
        use gps_graph::{CsrGraph, DeltaGraph};

        let g = sample();
        let base = std::sync::Arc::new(CsrGraph::from_graph(&g));
        let old = LabelIndex::from_csr(&base);

        // Touch only label `x`: remove a-x->b, add c-x->d and a new node d;
        // also intern a brand-new label `z` with one edge.
        let mut delta = DeltaGraph::new(std::sync::Arc::clone(&base));
        let a = delta.node_by_name("a").unwrap();
        let b = delta.node_by_name("b").unwrap();
        let c = delta.node_by_name("c").unwrap();
        let d = delta.add_node("d");
        let x = delta.labels().get("x").unwrap();
        let z = delta.label("z");
        assert!(delta.remove_edge(a, x, b));
        delta.add_edge(c, x, d);
        delta.add_edge(d, z, a);
        let summary = delta.delta();
        let compacted = delta.compact();

        let patched = old.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        let fresh = LabelIndex::from_csr(&compacted);
        assert_eq!(patched.node_count(), fresh.node_count());
        assert_eq!(patched.label_count(), fresh.label_count());
        for label in 0..fresh.label_count() {
            let label = LabelId::from(label);
            assert_eq!(
                patched.label_edge_count(label),
                fresh.label_edge_count(label),
                "{label:?}"
            );
            for node in 0..fresh.node_count() {
                for direction in [Direction::Forward, Direction::Reverse] {
                    assert_eq!(
                        patched.neighbors(direction, label, node),
                        fresh.neighbors(direction, label, node),
                        "{direction:?} {label:?} node {node}"
                    );
                }
            }
        }
        // The untouched label `y` shares its packed arrays with the old index.
        let y = g.label_id("y").unwrap();
        assert!(std::sync::Arc::ptr_eq(
            &patched.fwd.parts[y.index()],
            &old.fwd.parts[y.index()]
        ));
        assert!(!std::sync::Arc::ptr_eq(
            &patched.fwd.parts[x.index()],
            &old.fwd.parts[x.index()]
        ));

        // Patched statistics agree with a full recompute on the merged graph.
        let old_stats = gps_graph::LabelStats::compute(&g);
        let patched_stats = patched.patched_stats(&old_stats, &summary.touched_labels());
        let fresh_stats = gps_graph::LabelStats::compute(&compacted);
        assert_eq!(patched_stats, fresh_stats);
    }

    #[test]
    fn patched_partitions_handle_parallel_duplicates() {
        use gps_graph::{CsrGraph, DeltaGraph};

        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "x", b);
        let base = std::sync::Arc::new(CsrGraph::from_graph(&g));
        let old = LabelIndex::from_csr(&base);
        let mut delta = DeltaGraph::new(std::sync::Arc::clone(&base));
        let x = delta.labels().get("x").unwrap();
        assert!(delta.remove_edge(a, x, b));
        assert!(delta.remove_edge(a, x, b));
        let summary = delta.delta();
        let compacted = delta.compact();
        let patched = old.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        assert_eq!(
            patched.neighbors(Direction::Forward, x, a.index()),
            &[b.raw()]
        );
        assert_eq!(patched.label_edge_count(x), 1);
    }

    fn assert_byte_identical(a: &LabelIndex, b: &LabelIndex) {
        assert_eq!(a.node_count, b.node_count);
        assert_eq!(a.label_count, b.label_count);
        assert_eq!(a.label_edge_counts, b.label_edge_counts);
        for label in 0..a.label_count {
            assert_eq!(*a.fwd.parts[label], *b.fwd.parts[label], "fwd {label}");
            assert_eq!(*a.rev.parts[label], *b.rev.parts[label], "rev {label}");
        }
    }

    #[test]
    fn sharded_build_and_patch_are_byte_identical_to_sequential() {
        use gps_graph::{CsrGraph, DeltaGraph};

        let g = sample();
        let base = std::sync::Arc::new(CsrGraph::from_graph(&g));
        let sequential = LabelIndex::from_csr(&base);
        let mut delta = DeltaGraph::new(std::sync::Arc::clone(&base));
        let a = delta.node_by_name("a").unwrap();
        let b = delta.node_by_name("b").unwrap();
        let d = delta.add_node("d");
        let x = delta.labels().get("x").unwrap();
        let z = delta.label("z");
        assert!(delta.remove_edge(a, x, b));
        delta.add_edge(b, x, d);
        delta.add_edge(d, z, a);
        let summary = delta.delta();
        let compacted = delta.compact();
        let seq_patched =
            sequential.apply_delta(&summary, compacted.node_count(), compacted.label_count());

        for shards in [2usize, 3, 7, 64] {
            let sharded = LabelIndex::from_csr_sharded(&base, shards);
            assert_eq!(sharded.shards(), shards);
            assert_byte_identical(&sequential, &sharded);
            let patched =
                sharded.apply_delta(&summary, compacted.node_count(), compacted.label_count());
            assert_eq!(patched.shards(), shards, "patched index inherits shards");
            assert_byte_identical(&seq_patched, &patched);
        }
    }

    #[test]
    fn memory_bytes_grows_with_the_graph() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        let small = LabelIndex::from_backend(&g).memory_bytes();
        assert!(small > 0);
        let c = g.add_node("C");
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(a, "y", c);
        let larger = LabelIndex::from_backend(&g).memory_bytes();
        assert!(larger > small);
    }
}
