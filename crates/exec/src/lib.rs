//! # gps-exec — frontier-based batch/parallel RPQ execution
//!
//! The interactive layers of GPS evaluate the *same graph* against *many*
//! queries: the learner's consistency checks, session pruning and
//! propagation, coverage, witnesses and the benchmark workloads all funnel
//! through RPQ evaluation.  This crate is the set-at-a-time execution engine
//! for that traffic, built on the [`gps_graph::GraphBackend`] seam:
//!
//! * [`bitset::FixedBitSet`] / [`bitset::SparseBitSet`] — dense and
//!   two-level sparse per-state node sets; alive sets are dense, frontiers
//!   switch to sparse on large graphs per [`frontier::FrontierPolicy`];
//! * [`index::LabelIndex`] — label-partitioned forward + reverse CSR built
//!   once per graph (optionally sharded across scoped threads on multi-core
//!   machines) and shared, also across threads, by every query;
//! * [`frontier`] — the semi-naive product-automaton fixed point sweeping
//!   whole frontiers per DFA transition, in push (reverse), pull (forward)
//!   or per-round adaptive mode;
//! * [`planner`] — picks the expansion [`Plan`] per query from the
//!   per-label degree/frequency statistics of [`gps_graph::LabelStats`];
//! * [`batch::BatchEvaluator`] — the public engine: single, batch,
//!   multi-source and scoped-thread parallel evaluation, pluggable into the
//!   `gps-rpq` cache (and thus the whole `gps-core` engine) through the
//!   [`gps_rpq::DfaEvaluator`] trait.
//!
//! Every mode is differentially tested to be answer-identical to the naive
//! node-at-a-time evaluator in `gps_rpq::eval`.
//!
//! ## Example
//!
//! ```
//! use gps_exec::BatchEvaluator;
//! use gps_graph::Graph;
//! use gps_rpq::PathQuery;
//!
//! let mut g = Graph::new();
//! let n1 = g.add_node("N1");
//! let n4 = g.add_node("N4");
//! let c1 = g.add_node("C1");
//! g.add_edge_by_name(n1, "tram", n4);
//! g.add_edge_by_name(n4, "cinema", c1);
//!
//! let engine = BatchEvaluator::new(&g);
//! let q = PathQuery::parse("tram*.cinema", g.labels()).unwrap();
//! let answer = engine.evaluate_query(&q);
//! assert!(answer.contains(n1));
//! assert!(!answer.contains(c1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bitset;
pub mod frontier;
pub mod index;
pub mod metrics;
pub mod planner;

pub use batch::{BatchEvaluator, ParallelSplit};
pub use bitset::{FixedBitSet, SparseBitSet};
pub use frontier::{FrontierPolicy, DEFAULT_OVERDELETE_LIMIT, SPARSE_FRONTIER_NODES};
pub use index::{Direction, LabelIndex};
pub use metrics::ExecMetrics;
pub use planner::{Plan, PlanDecision, PlannerConfig};
