//! Dense fixed-size bitsets — the frontier/visited representation of the
//! batch evaluator.
//!
//! One [`FixedBitSet`] holds one bit per graph node; the evaluator keeps one
//! per DFA state for the alive set and one per state for the current
//! frontier, so the product fixed point runs as word-wide sweeps instead of
//! per-configuration queue traffic.

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` keys below `len`, packed one bit per key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// The universe size (number of addressable bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` when `bit` is set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Sets `bit`; returns `true` when the bit was previously clear.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Sets every bit of the universe.
    pub fn insert_all(&mut self) {
        for word in &mut self.words {
            *word = u64::MAX;
        }
        self.mask_tail();
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        for word in &mut self.words {
            *word = 0;
        }
    }

    /// Resizes the universe to `len` and clears every bit.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// ORs `other` into `self`; returns `true` when any new bit appeared.
    pub fn union_with(&mut self, other: &FixedBitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (word, &incoming) in self.words.iter_mut().zip(&other.words) {
            let merged = *word | incoming;
            changed |= merged != *word;
            *word = merged;
        }
        changed
    }

    /// Iterates the set bits in ascending order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            current: self.words.first().copied().unwrap_or(0),
            word_index: 0,
        }
    }

    /// Iterates the *clear* bits (the complement within the universe) in
    /// ascending order.
    pub fn zeros(&self) -> Zeros<'_> {
        let mut zeros = Zeros {
            set: self,
            current: 0,
            word_index: 0,
        };
        zeros.current = zeros.complemented_word(0);
        zeros
    }

    /// The packed backing words (64 bits each, little-endian within a word)
    /// — the snapshot format resumable evaluation state is exported in.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites the first `words.len()` backing words from a snapshot taken
    /// with [`as_words`](Self::as_words), leaving any later words untouched
    /// and masking bits beyond the universe.  Restores a bitset captured on a
    /// smaller universe into one that has since grown.
    pub fn load_prefix(&mut self, words: &[u64]) {
        let n = words.len().min(self.words.len());
        self.words[..n].copy_from_slice(&words[..n]);
        self.mask_tail();
    }

    /// Clears any bits set beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over the set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    current: u64,
    word_index: usize,
}

impl<'a> Iterator for Ones<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// Iterator over the clear bits of a [`FixedBitSet`].
pub struct Zeros<'a> {
    set: &'a FixedBitSet,
    current: u64,
    word_index: usize,
}

impl<'a> Zeros<'a> {
    /// The complement of word `i`, with bits beyond the universe masked off.
    fn complemented_word(&self, i: usize) -> u64 {
        let Some(&word) = self.set.words.get(i) else {
            return 0;
        };
        let mut complemented = !word;
        let tail = self.set.len % WORD_BITS;
        if tail != 0 && i + 1 == self.set.words.len() {
            complemented &= (1u64 << tail) - 1;
        }
        complemented
    }
}

impl<'a> Iterator for Zeros<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.complemented_word(self.word_index);
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_count() {
        let mut set = FixedBitSet::new(130);
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64), "second insert reports already-present");
        assert!(set.contains(129));
        assert!(!set.contains(1));
        assert_eq!(set.count(), 3);
        assert_eq!(set.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn insert_all_masks_the_tail() {
        let mut set = FixedBitSet::new(70);
        set.insert_all();
        assert_eq!(set.count(), 70);
        assert_eq!(set.ones().last(), Some(69));
        assert_eq!(set.zeros().count(), 0);
    }

    #[test]
    fn zeros_complement_ones() {
        let mut set = FixedBitSet::new(67);
        set.insert(3);
        set.insert(65);
        let zeros: Vec<usize> = set.zeros().collect();
        assert_eq!(zeros.len(), 65);
        assert!(!zeros.contains(&3));
        assert!(!zeros.contains(&65));
        assert!(zeros.contains(&66));
        assert!(zeros.iter().all(|&b| b < 67));
    }

    #[test]
    fn union_with_reports_change() {
        let mut a = FixedBitSet::new(10);
        let mut b = FixedBitSet::new(10);
        b.insert(7);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union adds nothing");
        assert!(a.contains(7));
    }

    #[test]
    fn clear_and_reset() {
        let mut set = FixedBitSet::new(10);
        set.insert(5);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.len(), 10);
        set.reset(200);
        assert_eq!(set.len(), 200);
        assert!(set.is_empty());
        set.insert(199);
        assert!(set.contains(199));
    }

    #[test]
    fn word_snapshots_round_trip_across_universe_growth() {
        let mut small = FixedBitSet::new(70);
        small.insert(3);
        small.insert(69);
        let words = small.as_words().to_vec();

        let mut same = FixedBitSet::new(70);
        same.load_prefix(&words);
        assert_eq!(same, small);

        // Restoring into a larger universe keeps the old bits and leaves the
        // new range clear.
        let mut grown = FixedBitSet::new(200);
        grown.insert(150);
        grown.load_prefix(&words);
        assert!(grown.contains(3));
        assert!(grown.contains(69));
        assert!(grown.contains(150), "words beyond the prefix are untouched");
        assert_eq!(grown.count(), 3);

        // Restoring into a smaller universe masks the tail.
        let mut shrunk = FixedBitSet::new(65);
        shrunk.load_prefix(&words);
        assert!(shrunk.contains(3));
        assert_eq!(shrunk.count(), 1, "bit 69 is outside the universe");
    }

    #[test]
    fn empty_universe() {
        let mut set = FixedBitSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.ones().count(), 0);
        assert_eq!(set.zeros().count(), 0);
        set.insert_all();
        assert_eq!(set.count(), 0);
    }
}
