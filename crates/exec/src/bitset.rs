//! Dense and sparse fixed-size bitsets — the frontier/visited
//! representations of the batch evaluator.
//!
//! One [`FixedBitSet`] holds one bit per graph node; the evaluator keeps one
//! per DFA state for the alive set and one per state for the current
//! frontier, so the product fixed point runs as word-wide sweeps instead of
//! per-configuration queue traffic.
//!
//! [`SparseBitSet`] layers a one-bit-per-chunk summary over the same packed
//! words so that clearing, counting, and iterating cost `O(population)`
//! instead of `O(universe)` — the frontier representation of choice on
//! million-node graphs where a round's frontier touches a few hundred nodes.

const WORD_BITS: usize = 64;

/// Words per summary chunk of a [`SparseBitSet`]: one summary bit covers
/// `CHUNK_WORDS * 64 = 4096` keys, so a 1M-node universe has a 256-bit
/// (4-word) summary.
const CHUNK_WORDS: usize = 64;

/// A fixed-capacity set of `usize` keys below `len`, packed one bit per key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// The universe size (number of addressable bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` when `bit` is set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Sets `bit`; returns `true` when the bit was previously clear.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears `bit`; returns `true` when the bit was previously set.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Sets every bit of the universe.
    pub fn insert_all(&mut self) {
        for word in &mut self.words {
            *word = u64::MAX;
        }
        self.mask_tail();
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        for word in &mut self.words {
            *word = 0;
        }
    }

    /// Resizes the universe to `len` and clears every bit.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// ORs `other` into `self`; returns `true` when any new bit appeared.
    pub fn union_with(&mut self, other: &FixedBitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (word, &incoming) in self.words.iter_mut().zip(&other.words) {
            let merged = *word | incoming;
            changed |= merged != *word;
            *word = merged;
        }
        changed
    }

    /// Iterates the set bits in ascending order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            current: self.words.first().copied().unwrap_or(0),
            word_index: 0,
        }
    }

    /// Iterates the *clear* bits (the complement within the universe) in
    /// ascending order.
    pub fn zeros(&self) -> Zeros<'_> {
        let mut zeros = Zeros {
            set: self,
            current: 0,
            word_index: 0,
        };
        zeros.current = zeros.complemented_word(0);
        zeros
    }

    /// The packed backing words (64 bits each, little-endian within a word)
    /// — the snapshot format resumable evaluation state is exported in.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites the first `words.len()` backing words from a snapshot taken
    /// with [`as_words`](Self::as_words), leaving any later words untouched
    /// and masking bits beyond the universe.  Restores a bitset captured on a
    /// smaller universe into one that has since grown.
    pub fn load_prefix(&mut self, words: &[u64]) {
        let n = words.len().min(self.words.len());
        self.words[..n].copy_from_slice(&words[..n]);
        self.mask_tail();
    }

    /// Clears any bits set beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over the set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    current: u64,
    word_index: usize,
}

impl<'a> Iterator for Ones<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// Iterator over the clear bits of a [`FixedBitSet`].
pub struct Zeros<'a> {
    set: &'a FixedBitSet,
    current: u64,
    word_index: usize,
}

impl<'a> Zeros<'a> {
    /// The complement of word `i`, with bits beyond the universe masked off.
    fn complemented_word(&self, i: usize) -> u64 {
        let Some(&word) = self.set.words.get(i) else {
            return 0;
        };
        let mut complemented = !word;
        let tail = self.set.len % WORD_BITS;
        if tail != 0 && i + 1 == self.set.words.len() {
            complemented &= (1u64 << tail) - 1;
        }
        complemented
    }
}

impl<'a> Iterator for Zeros<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.complemented_word(self.word_index);
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// A two-level sparse bitset over the universe `0..len`: the same packed
/// words as [`FixedBitSet`] plus a summary bitset with one bit per
/// [`CHUNK_WORDS`]-word chunk.
///
/// Every operation that would sweep the whole universe on a dense set —
/// [`clear`](Self::clear), [`count`](Self::count), [`ones`](Self::ones),
/// [`union_into`](Self::union_into) — instead visits only the chunks whose
/// summary bit is set.  On a 1M-node graph a frontier touching a few hundred
/// nodes therefore costs a handful of cache lines per round instead of
/// 125 KB per DFA state.
///
/// Invariant: a chunk containing a set bit always has its summary bit set
/// (inserts set it unconditionally; there is no per-bit removal, so a set
/// summary bit exactly means "chunk is non-empty" after any
/// [`clear`](Self::clear)/insert sequence).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseBitSet {
    words: Vec<u64>,
    summary: Vec<u64>,
    len: usize,
}

impl SparseBitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        let word_count = len.div_ceil(WORD_BITS);
        let chunk_count = word_count.div_ceil(CHUNK_WORDS);
        Self {
            words: vec![0; word_count],
            summary: vec![0; chunk_count.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// The universe size (number of addressable bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.summary.iter().all(|&w| w == 0)
    }

    /// Returns `true` when `bit` is set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Sets `bit`; returns `true` when the bit was previously clear.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.len);
        let word_index = bit / WORD_BITS;
        let word = &mut self.words[word_index];
        let mask = 1 << (bit % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        let chunk = word_index / CHUNK_WORDS;
        self.summary[chunk / WORD_BITS] |= 1 << (chunk % WORD_BITS);
        fresh
    }

    /// Sets every bit of the universe.
    pub fn insert_all(&mut self) {
        for word in &mut self.words {
            *word = u64::MAX;
        }
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        let chunk_count = self.words.len().div_ceil(CHUNK_WORDS);
        for (index, word) in self.summary.iter_mut().enumerate() {
            let covered = chunk_count.saturating_sub(index * WORD_BITS).min(WORD_BITS);
            *word = match covered {
                0 => 0,
                WORD_BITS => u64::MAX,
                bits => (1u64 << bits) - 1,
            };
        }
    }

    /// Clears every bit, keeping the allocation.  Costs `O(population)`:
    /// only chunks whose summary bit is set are zeroed.
    pub fn clear(&mut self) {
        for summary_index in 0..self.summary.len() {
            let mut summary_word = self.summary[summary_index];
            if summary_word == 0 {
                continue;
            }
            while summary_word != 0 {
                let chunk = summary_index * WORD_BITS + summary_word.trailing_zeros() as usize;
                summary_word &= summary_word - 1;
                let start = chunk * CHUNK_WORDS;
                let end = (start + CHUNK_WORDS).min(self.words.len());
                self.words[start..end].fill(0);
            }
            self.summary[summary_index] = 0;
        }
    }

    /// Resizes the universe to `len` and clears every bit.  When the
    /// universe is unchanged this is the `O(population)` [`clear`] — the
    /// common reuse path (one evaluation after another over the same graph)
    /// never rewrites the whole word array.
    ///
    /// [`clear`]: Self::clear
    pub fn reset(&mut self, len: usize) {
        if len == self.len {
            self.clear();
            return;
        }
        let word_count = len.div_ceil(WORD_BITS);
        let chunk_count = word_count.div_ceil(CHUNK_WORDS);
        self.words.clear();
        self.words.resize(word_count, 0);
        self.summary.clear();
        self.summary.resize(chunk_count.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Number of set bits (visits only summarized chunks).
    pub fn count(&self) -> usize {
        let mut total = 0;
        for chunk in SummaryChunks::new(&self.summary) {
            let start = chunk * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(self.words.len());
            total += self.words[start..end]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        }
        total
    }

    /// ORs this set into a dense set over the same universe; returns `true`
    /// when any new bit appeared.  Visits only summarized chunks.
    pub fn union_into(&self, dense: &mut FixedBitSet) -> bool {
        debug_assert_eq!(self.len, dense.len);
        let mut changed = false;
        for chunk in SummaryChunks::new(&self.summary) {
            let start = chunk * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(self.words.len());
            for index in start..end {
                let merged = dense.words[index] | self.words[index];
                changed |= merged != dense.words[index];
                dense.words[index] = merged;
            }
        }
        changed
    }

    /// Iterates the set bits in ascending order (visits only summarized
    /// chunks).
    pub fn ones(&self) -> SparseOnes<'_> {
        SparseOnes {
            set: self,
            chunks: SummaryChunks::new(&self.summary),
            word_index: 0,
            chunk_end: 0,
            current: 0,
        }
    }
}

/// Iterator over the set chunk indices of a summary bitset.
struct SummaryChunks<'a> {
    summary: &'a [u64],
    current: u64,
    word_index: usize,
}

impl<'a> SummaryChunks<'a> {
    fn new(summary: &'a [u64]) -> Self {
        Self {
            summary,
            current: summary.first().copied().unwrap_or(0),
            word_index: 0,
        }
    }
}

impl<'a> Iterator for SummaryChunks<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.summary.len() {
                return None;
            }
            self.current = self.summary[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// Iterator over the set bits of a [`SparseBitSet`].
pub struct SparseOnes<'a> {
    set: &'a SparseBitSet,
    chunks: SummaryChunks<'a>,
    word_index: usize,
    chunk_end: usize,
    current: u64,
}

impl<'a> Iterator for SparseOnes<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            if self.word_index + 1 < self.chunk_end {
                self.word_index += 1;
                self.current = self.set.words[self.word_index];
                continue;
            }
            let chunk = self.chunks.next()?;
            self.word_index = chunk * CHUNK_WORDS;
            self.chunk_end = (self.word_index + CHUNK_WORDS).min(self.set.words.len());
            self.current = self.set.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_count() {
        let mut set = FixedBitSet::new(130);
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64), "second insert reports already-present");
        assert!(set.contains(129));
        assert!(!set.contains(1));
        assert_eq!(set.count(), 3);
        assert_eq!(set.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn insert_all_masks_the_tail() {
        let mut set = FixedBitSet::new(70);
        set.insert_all();
        assert_eq!(set.count(), 70);
        assert_eq!(set.ones().last(), Some(69));
        assert_eq!(set.zeros().count(), 0);
    }

    #[test]
    fn zeros_complement_ones() {
        let mut set = FixedBitSet::new(67);
        set.insert(3);
        set.insert(65);
        let zeros: Vec<usize> = set.zeros().collect();
        assert_eq!(zeros.len(), 65);
        assert!(!zeros.contains(&3));
        assert!(!zeros.contains(&65));
        assert!(zeros.contains(&66));
        assert!(zeros.iter().all(|&b| b < 67));
    }

    #[test]
    fn union_with_reports_change() {
        let mut a = FixedBitSet::new(10);
        let mut b = FixedBitSet::new(10);
        b.insert(7);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union adds nothing");
        assert!(a.contains(7));
    }

    #[test]
    fn clear_and_reset() {
        let mut set = FixedBitSet::new(10);
        set.insert(5);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.len(), 10);
        set.reset(200);
        assert_eq!(set.len(), 200);
        assert!(set.is_empty());
        set.insert(199);
        assert!(set.contains(199));
    }

    #[test]
    fn word_snapshots_round_trip_across_universe_growth() {
        let mut small = FixedBitSet::new(70);
        small.insert(3);
        small.insert(69);
        let words = small.as_words().to_vec();

        let mut same = FixedBitSet::new(70);
        same.load_prefix(&words);
        assert_eq!(same, small);

        // Restoring into a larger universe keeps the old bits and leaves the
        // new range clear.
        let mut grown = FixedBitSet::new(200);
        grown.insert(150);
        grown.load_prefix(&words);
        assert!(grown.contains(3));
        assert!(grown.contains(69));
        assert!(grown.contains(150), "words beyond the prefix are untouched");
        assert_eq!(grown.count(), 3);

        // Restoring into a smaller universe masks the tail.
        let mut shrunk = FixedBitSet::new(65);
        shrunk.load_prefix(&words);
        assert!(shrunk.contains(3));
        assert_eq!(shrunk.count(), 1, "bit 69 is outside the universe");
    }

    #[test]
    fn empty_universe() {
        let mut set = FixedBitSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.ones().count(), 0);
        assert_eq!(set.zeros().count(), 0);
        set.insert_all();
        assert_eq!(set.count(), 0);
    }

    #[test]
    fn sparse_matches_dense_semantics() {
        // Universe straddles several chunks (a chunk is 4096 bits).
        let len = 3 * CHUNK_WORDS * WORD_BITS + 70;
        let mut sparse = SparseBitSet::new(len);
        let mut dense = FixedBitSet::new(len);
        assert!(sparse.is_empty());
        let keys = [0usize, 63, 64, 4095, 4096, 8191, 12345, len - 1];
        for &key in &keys {
            assert_eq!(sparse.insert(key), dense.insert(key), "{key}");
        }
        assert!(
            !sparse.insert(4096),
            "second insert reports already-present"
        );
        assert_eq!(sparse.count(), dense.count());
        assert!(!sparse.is_empty());
        for probe in [0usize, 1, 63, 64, 4095, 4096, 8190, 12345, len - 1] {
            assert_eq!(sparse.contains(probe), dense.contains(probe), "{probe}");
        }
        assert_eq!(
            sparse.ones().collect::<Vec<_>>(),
            dense.ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sparse_union_into_dense_reports_change() {
        let len = 2 * CHUNK_WORDS * WORD_BITS;
        let mut sparse = SparseBitSet::new(len);
        sparse.insert(7);
        sparse.insert(len - 1);
        let mut dense = FixedBitSet::new(len);
        dense.insert(7);
        assert!(sparse.union_into(&mut dense), "len-1 is new");
        assert!(dense.contains(len - 1));
        assert!(!sparse.union_into(&mut dense), "second union adds nothing");
    }

    #[test]
    fn sparse_clear_and_reset() {
        let len = 2 * CHUNK_WORDS * WORD_BITS + 5;
        let mut sparse = SparseBitSet::new(len);
        sparse.insert(3);
        sparse.insert(len - 2);
        sparse.clear();
        assert!(sparse.is_empty());
        assert_eq!(sparse.count(), 0);
        assert_eq!(sparse.ones().count(), 0);
        assert_eq!(sparse.len(), len);
        sparse.insert(4100);
        assert!(sparse.contains(4100), "insert after clear restores summary");
        sparse.reset(100);
        assert_eq!(sparse.len(), 100);
        assert!(sparse.is_empty());
        sparse.insert(99);
        assert!(sparse.contains(99));
    }

    #[test]
    fn sparse_insert_all_masks_tail_and_summary() {
        for len in [0usize, 70, 4096, 4097, 10_000] {
            let mut sparse = SparseBitSet::new(len);
            sparse.insert_all();
            assert_eq!(sparse.count(), len, "len {len}");
            assert_eq!(sparse.ones().count(), len, "len {len}");
            if len > 0 {
                assert_eq!(sparse.ones().last(), Some(len - 1));
            }
            sparse.clear();
            assert!(sparse.is_empty(), "len {len}");
        }
    }
}
