//! Pre-bound telemetry handles for the execution engine.
//!
//! [`ExecMetrics`] is resolved once against a
//! [`MetricsRegistry`](gps_telemetry::MetricsRegistry) (or left disabled)
//! and then carried by value inside [`BatchEvaluator`](crate::BatchEvaluator)
//! — including across epochs through `apply_delta` — so the hot evaluation
//! path records through lock-free handles instead of registry lookups.

use crate::planner::Plan;
use gps_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// The execution-engine metric family (`gps_exec_*`).
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// `gps_exec_evals_total` — fixed-point evaluations run.
    pub evals: Counter,
    /// `gps_exec_eval_latency_ns` — wall time of one fixed-point evaluation.
    pub eval_latency: Histogram,
    /// `gps_exec_frontier_rounds_total` — frontier rounds swept across all
    /// evaluations.
    pub frontier_rounds: Counter,
    /// `gps_exec_plan_reverse_total` — evaluations run with [`Plan::Reverse`].
    pub plan_reverse: Counter,
    /// `gps_exec_plan_forward_total` — evaluations run with [`Plan::Forward`].
    pub plan_forward: Counter,
    /// `gps_exec_plan_bidirectional_total` — evaluations run with
    /// [`Plan::Bidirectional`].
    pub plan_bidirectional: Counter,
    /// `gps_exec_index_build_ns` — wall time of one [`LabelIndex`]
    /// construction or delta patch (fresh builds and `apply_delta` both
    /// record here; the shard gauge says how wide the build fanned out).
    ///
    /// [`LabelIndex`]: crate::LabelIndex
    pub index_build: Histogram,
    /// `gps_exec_index_shards` — the shard (worker-thread) count of the most
    /// recently built or patched [`LabelIndex`] (`1` = sequential).
    ///
    /// [`LabelIndex`]: crate::LabelIndex
    pub index_shards: Gauge,
    /// `gps_exec_support_overdeleted_total` — configurations transitively
    /// over-deleted by delete-aware resumes
    /// ([`resume_with_removals`](crate::frontier::resume_with_removals));
    /// re-derivation revives the still-derivable ones, so this counts the
    /// DRed sweep's working-set size, not lost answers.
    pub support_overdeleted: Counter,
}

impl ExecMetrics {
    /// All-disabled handles: every recording is one branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Binds the `gps_exec_*` family in `registry` (disabled handles when
    /// the registry is disabled).
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            evals: registry.counter("gps_exec_evals_total"),
            eval_latency: registry.histogram("gps_exec_eval_latency_ns"),
            frontier_rounds: registry.counter("gps_exec_frontier_rounds_total"),
            plan_reverse: registry.counter("gps_exec_plan_reverse_total"),
            plan_forward: registry.counter("gps_exec_plan_forward_total"),
            plan_bidirectional: registry.counter("gps_exec_plan_bidirectional_total"),
            index_build: registry.histogram("gps_exec_index_build_ns"),
            index_shards: registry.gauge("gps_exec_index_shards"),
            support_overdeleted: registry.counter("gps_exec_support_overdeleted_total"),
        }
    }

    /// Counts one evaluation under the plan that ran it.
    pub(crate) fn record_plan(&self, plan: Plan) {
        match plan {
            Plan::Reverse => self.plan_reverse.inc(),
            Plan::Forward => self.plan_forward.inc(),
            Plan::Bidirectional => self.plan_bidirectional.inc(),
        }
    }

    /// Records one index build/patch: its wall time and how many shards it
    /// fanned out over (`0` is normalized to `1` = sequential).
    pub fn record_index_build(&self, elapsed: std::time::Duration, shards: usize) {
        self.index_build.record_duration(elapsed);
        self.index_shards.set(shards.max(1) as u64);
    }
}
