//! The frontier evaluator — set-at-a-time product fixed point.
//!
//! Semantics are identical to `gps_rpq::eval::evaluate`: a node `v` is
//! selected iff configuration `(v, start)` can reach an accepting
//! configuration in the product of the graph with the query DFA.  Where the
//! naive evaluator propagates one `(node, state)` configuration at a time
//! through a queue, this evaluator keeps one bitset of nodes per DFA state
//! and advances the whole frontier per DFA transition in label-partitioned
//! slice sweeps (semi-naive/delta evaluation: only configurations discovered
//! in round `k` are expanded in round `k+1`).
//!
//! Each round runs in one of two modes (see [`Plan`]):
//!
//! * **push** — expand the frontier backward through the reverse adjacency;
//! * **pull** — scan still-dead configurations forward for an alive
//!   successor.
//!
//! [`Plan::Bidirectional`] re-picks the cheaper mode every round from the
//! estimated frontier/dead edge volumes, mirroring direction-optimizing BFS.

use crate::bitset::{FixedBitSet, Ones, SparseBitSet, SparseOnes};
use crate::index::{Direction, LabelIndex};
use crate::planner::Plan;
use gps_automata::Dfa;
use gps_graph::{GraphDelta, LabelId, NodeId, Path};
use gps_rpq::{EvalResume, QueryAnswer};

/// Default cap on the delete-aware reseed's over-deletion, as a fraction of
/// the post-insert alive configuration population: when a removal's
/// transitive over-delete cone grows past `limit × alive_total`
/// configurations, [`resume_with_removals`] gives up (`None`) and the caller
/// falls back to a cold recompute — at that point the cold fixed point is in
/// the same cost class as over-delete *plus* re-derive, without the
/// bookkeeping.
pub const DEFAULT_OVERDELETE_LIMIT: f64 = 0.5;

/// Node count at which [`FrontierPolicy::Auto`] switches the frontier/delta
/// bitsets from dense to sparse.  Below this a dense sweep fits comfortably
/// in cache and the summary level is pure overhead; above it, per-round
/// clears and scans of near-empty frontiers dominate and the sparse
/// representation's `O(population)` operations win.
pub const SPARSE_FRONTIER_NODES: usize = 1 << 16;

/// How the evaluator represents the per-round frontier/delta sets.
///
/// The **alive** sets stay dense regardless (they fill monotonically toward
/// the answer and back the [`EvalResume`] word-snapshot format); only the
/// frontier and its staging double are switched.  Every policy produces
/// bit-identical answers — the representation changes constants, not
/// semantics — which `tests/exec_conformance.rs` asserts differentially.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FrontierPolicy {
    /// Sparse when the graph has at least [`SPARSE_FRONTIER_NODES`] nodes,
    /// dense below.
    #[default]
    Auto,
    /// Always dense ([`FixedBitSet`]): one bit per node, `O(nodes)` clears.
    Dense,
    /// Always sparse ([`SparseBitSet`]): summary-word + chunk two-level
    /// sets with `O(population)` clears/scans.
    Sparse,
}

impl FrontierPolicy {
    /// Whether `nodes` resolves to the sparse representation.
    #[inline]
    pub fn is_sparse(self, nodes: usize) -> bool {
        match self {
            FrontierPolicy::Auto => nodes >= SPARSE_FRONTIER_NODES,
            FrontierPolicy::Dense => false,
            FrontierPolicy::Sparse => true,
        }
    }
}

/// One frontier/delta set in whichever representation the policy resolved.
#[derive(Debug, Clone)]
enum FrontierSet {
    Dense(FixedBitSet),
    Sparse(SparseBitSet),
}

impl Default for FrontierSet {
    fn default() -> Self {
        FrontierSet::Dense(FixedBitSet::default())
    }
}

impl FrontierSet {
    /// Resizes to the universe `0..len` in the requested representation and
    /// clears every bit, reusing the allocation when the variant matches.
    fn reset_as(&mut self, len: usize, sparse: bool) {
        match self {
            FrontierSet::Dense(bits) if !sparse => bits.reset(len),
            FrontierSet::Sparse(bits) if sparse => bits.reset(len),
            slot => {
                *slot = if sparse {
                    FrontierSet::Sparse(SparseBitSet::new(len))
                } else {
                    FrontierSet::Dense(FixedBitSet::new(len))
                };
            }
        }
    }

    #[inline]
    fn insert(&mut self, bit: usize) -> bool {
        match self {
            FrontierSet::Dense(bits) => bits.insert(bit),
            FrontierSet::Sparse(bits) => bits.insert(bit),
        }
    }

    fn insert_all(&mut self) {
        match self {
            FrontierSet::Dense(bits) => bits.insert_all(),
            FrontierSet::Sparse(bits) => bits.insert_all(),
        }
    }

    fn clear(&mut self) {
        match self {
            FrontierSet::Dense(bits) => bits.clear(),
            FrontierSet::Sparse(bits) => bits.clear(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            FrontierSet::Dense(bits) => bits.is_empty(),
            FrontierSet::Sparse(bits) => bits.is_empty(),
        }
    }

    fn count(&self) -> usize {
        match self {
            FrontierSet::Dense(bits) => bits.count(),
            FrontierSet::Sparse(bits) => bits.count(),
        }
    }

    fn ones(&self) -> FrontierOnes<'_> {
        match self {
            FrontierSet::Dense(bits) => FrontierOnes::Dense(bits.ones()),
            FrontierSet::Sparse(bits) => FrontierOnes::Sparse(bits.ones()),
        }
    }

    /// ORs this set into `dense`; returns `true` when any new bit appeared.
    fn union_into(&self, dense: &mut FixedBitSet) -> bool {
        match self {
            FrontierSet::Dense(bits) => dense.union_with(bits),
            FrontierSet::Sparse(bits) => bits.union_into(dense),
        }
    }
}

enum FrontierOnes<'a> {
    Dense(Ones<'a>),
    Sparse(SparseOnes<'a>),
}

impl<'a> Iterator for FrontierOnes<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            FrontierOnes::Dense(ones) => ones.next(),
            FrontierOnes::Sparse(ones) => ones.next(),
        }
    }
}

/// Reusable allocation for one evaluation: per-state alive/frontier/delta
/// bitsets.  Batch callers keep one `Scratch` per worker and amortize the
/// allocations across every query of the workload.
///
/// The alive sets are always dense; the frontier/staging sets follow the
/// configured [`FrontierPolicy`] (default [`FrontierPolicy::Auto`]).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    alive: Vec<FixedBitSet>,
    frontier: Vec<FrontierSet>,
    next: Vec<FrontierSet>,
    policy: FrontierPolicy,
}

impl Scratch {
    /// A scratch whose frontier sets follow `policy`.
    pub fn with_policy(policy: FrontierPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The configured frontier representation policy.
    pub fn policy(&self) -> FrontierPolicy {
        self.policy
    }

    /// Resizes for `states` × `nodes` and clears every bit.
    fn prepare(&mut self, states: usize, nodes: usize) {
        self.alive.resize_with(states, FixedBitSet::default);
        for bits in &mut self.alive {
            bits.reset(nodes);
        }
        let sparse = self.policy.is_sparse(nodes);
        for set in [&mut self.frontier, &mut self.next] {
            set.resize_with(states, FrontierSet::default);
            for bits in set.iter_mut() {
                bits.reset_as(nodes, sparse);
            }
        }
    }
}

/// Evaluates `dfa` over `index` with the given expansion plan, reusing
/// `scratch` for the per-state bitsets.
pub fn evaluate_with(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> QueryAnswer {
    evaluate_counting(index, dfa, plan, scratch).0
}

/// [`evaluate_with`], additionally reporting how many frontier rounds the
/// fixed point swept (what `gps_exec_frontier_rounds_total` aggregates).
pub fn evaluate_counting(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> (QueryAnswer, u64) {
    let (answer, rounds, _) = fixed_point(index, dfa, plan, scratch, false);
    (answer, rounds)
}

/// [`evaluate_counting`], additionally capturing the per-state alive sets as
/// an [`EvalResume`] seed for later delta-restricted re-derivation.
///
/// The seed is only sound when the fixed point actually completed, so when
/// the start state saturates early (a query selecting every node) the
/// capturing evaluation keeps deriving the remaining states' closure to the
/// true fixed point instead of early-exiting — the answer is already final,
/// the extra rounds only finish the seed.  Capturing therefore always
/// returns `Some` on non-empty inputs, and uncaptured evaluations keep the
/// early exit (satellite states stay under-derived, which is fine when
/// nothing is recorded).
pub fn evaluate_captured(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> (QueryAnswer, u64, Option<EvalResume>) {
    fixed_point(index, dfa, plan, scratch, true)
}

fn fixed_point(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
    capture: bool,
) -> (QueryAnswer, u64, Option<EvalResume>) {
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 {
        return (QueryAnswer::from_flags(vec![false; n]), 0, None);
    }
    scratch.prepare(s, n);

    // DFA transitions, forward (pull) and reversed (push), plus per-state
    // mean-degree weights for the adaptive cost model.
    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    let mut fwd_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    let mut push_weight = vec![0.0f64; s];
    let mut pull_weight = vec![0.0f64; s];
    let mean_degree = |label: LabelId| index.label_edge_count(label) as f64 / n as f64;
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
            fwd_dfa[state].push((label, target));
            push_weight[target] += mean_degree(label);
            pull_weight[state] += mean_degree(label);
        }
    }

    // Seed: every configuration whose DFA state is accepting.
    for state in 0..s {
        if dfa.is_accepting(state) {
            scratch.alive[state].insert_all();
            scratch.frontier[state].insert_all();
        }
    }

    let start = dfa.start();
    let mut rounds = 0u64;
    let complete = loop {
        // The answer only reads `alive[start]`; once every node is selected
        // no further round can change it.  This exit can leave *other*
        // states under-derived, so a capturing evaluation skips it and runs
        // on to the true fixed point — the seed must cover every state.
        if !capture && scratch.alive[start].count() == n {
            break false;
        }
        rounds += 1;

        let pull = match plan {
            Plan::Reverse => false,
            Plan::Forward => true,
            Plan::Bidirectional => {
                let push_cost: f64 = (0..s)
                    .map(|q| scratch.frontier[q].count() as f64 * push_weight[q])
                    .sum();
                let pull_cost: f64 = (0..s)
                    .map(|p| (n - scratch.alive[p].count()) as f64 * pull_weight[p])
                    .sum();
                pull_cost < push_cost
            }
        };

        let mut progress = false;
        if pull {
            // Jacobi round: read `alive`, stage discoveries in `next`.
            for (p, transitions) in fwd_dfa.iter().enumerate() {
                if transitions.is_empty() {
                    continue;
                }
                'dead: for w in scratch.alive[p].zeros() {
                    for &(label, q) in transitions {
                        for &u in index.neighbors(Direction::Forward, label, w) {
                            if scratch.alive[q].contains(u as usize) {
                                scratch.next[p].insert(w);
                                continue 'dead;
                            }
                        }
                    }
                }
            }
            for p in 0..s {
                progress |= scratch.next[p].union_into(&mut scratch.alive[p]);
            }
        } else {
            // Gauss-Seidel round: mark `alive` immediately, collect the
            // delta in `next`.
            for (q, transitions) in rev_dfa.iter().enumerate() {
                if scratch.frontier[q].is_empty() {
                    continue;
                }
                for &(label, p) in transitions {
                    for u in scratch.frontier[q].ones() {
                        for &w in index.neighbors(Direction::Reverse, label, u) {
                            if scratch.alive[p].insert(w as usize) {
                                scratch.next[p].insert(w as usize);
                                progress = true;
                            }
                        }
                    }
                }
            }
        }
        if !progress {
            // No round mode can derive anything further: a true fixed point.
            break true;
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    };

    let selected = (0..n)
        .map(|node| scratch.alive[start].contains(node))
        .collect();
    let resume = (capture && complete).then(|| {
        EvalResume::new(
            n,
            scratch
                .alive
                .iter()
                .map(|bits| bits.as_words().to_vec())
                .collect(),
            compute_supports(index, dfa, &scratch.alive, n),
        )
    });
    (QueryAnswer::from_flags(selected), rounds, resume)
}

/// Derivation counts of a *completed* fixed point: `supports[p][u]` is the
/// number of `(DFA transition p --a--> q, graph edge u --a--> v)` pairs with
/// `(v, q)` alive, saturated at 255.  A non-accepting configuration is alive
/// iff its support is positive; accepting configurations are alive
/// unconditionally (their support only counts their edge-derivations).
///
/// One full push-shaped sweep over the alive sets — the capture-time
/// post-pass that seeds the delete-aware resume's bookkeeping.  Dead
/// configurations naturally end at 0: a derivation from an alive target
/// would have made them alive.
fn compute_supports(
    index: &LabelIndex,
    dfa: &Dfa,
    alive: &[FixedBitSet],
    nodes: usize,
) -> Vec<Vec<u8>> {
    let mut supports = vec![vec![0u8; nodes]; alive.len()];
    for (state, row) in supports.iter_mut().enumerate() {
        for (label, target) in dfa.transitions_from(state) {
            for v in alive[target].ones() {
                for &u in index.neighbors(Direction::Reverse, label, v) {
                    let slot = &mut row[u as usize];
                    *slot = slot.saturating_add(1);
                }
            }
        }
    }
    supports
}

/// Recomputes one configuration's support from scratch against the *current*
/// alive sets over the patched index — the exact fallback when a saturated
/// (255) counter must be decremented and the true count is unknown.
fn recount_support(
    index: &LabelIndex,
    dfa: &Dfa,
    alive: &[FixedBitSet],
    state: usize,
    node: usize,
) -> u8 {
    let mut count = 0u32;
    for (label, target) in dfa.transitions_from(state) {
        for &v in index.neighbors(Direction::Forward, label, node) {
            if alive[target].contains(v as usize) {
                count += 1;
                if count >= u8::MAX as u32 {
                    return u8::MAX;
                }
            }
        }
    }
    count as u8
}

/// Resumes the product fixed point from a captured [`EvalResume`] after an
/// **insert-only** [`GraphDelta`]: the old alive sets are restored, nodes
/// added since the capture seed the accepting states, the added edges'
/// direct derivations seed the frontier, and push rounds over the patched
/// index expand only what the delta can newly derive.
///
/// The fixed point is monotone in the edge set, so converging from the old
/// answer is exact for insertions; any removal invalidates the seed and the
/// caller must fall back to a cold evaluation — signalled by `None`, as is a
/// seed whose DFA shape does not match.
pub fn resume_counting(
    index: &LabelIndex,
    dfa: &Dfa,
    resume: &EvalResume,
    delta: &GraphDelta,
    scratch: &mut Scratch,
) -> Option<(QueryAnswer, u64, EvalResume)> {
    if !delta.removed_edges.is_empty() {
        return None;
    }
    let mut supports = restore_seed(index.node_count(), dfa, resume, scratch)?;
    let rounds = insert_sweep(index, dfa, resume, delta, scratch, &mut supports)?;
    Some(pack_result(
        index.node_count(),
        dfa,
        scratch,
        supports,
        rounds,
    ))
}

/// Restores a captured seed into `scratch` (alive sets via `load_prefix`)
/// and returns a working copy of its support counters extended to `n` nodes.
/// `None` when the seed's shape does not match the DFA or the index.
fn restore_seed(
    n: usize,
    dfa: &Dfa,
    resume: &EvalResume,
    scratch: &mut Scratch,
) -> Option<Vec<Vec<u8>>> {
    let s = dfa.state_count();
    if n == 0 || s == 0 || resume.state_count() != s || resume.nodes() > n {
        return None;
    }
    scratch.prepare(s, n);
    for state in 0..s {
        scratch.alive[state].load_prefix(resume.state_words(state));
    }
    Some(
        (0..s)
            .map(|state| {
                let mut row = resume.state_supports(state).to_vec();
                row.resize(n, 0);
                row
            })
            .collect(),
    )
}

/// The insert half of a resume: seeds added nodes and added edges into the
/// restored fixed point and pushes to closure over the patched index, keeping
/// `supports` exact along the way (every configuration that turns alive
/// sweeps its reverse dependents exactly once, incrementing their counters;
/// added edges whose target was alive *in the seed* are counted separately —
/// those derivations are the only ones no newly-alive sweep can see).
///
/// Monotone, so after this sweep `supports[p][u]` counts `(u, p)`'s
/// derivations over the patched edge set against the expanded alive sets —
/// the invariant both the insert-only resume and the over-delete phase build
/// on.  Returns the number of push rounds.
fn insert_sweep(
    index: &LabelIndex,
    dfa: &Dfa,
    resume: &EvalResume,
    delta: &GraphDelta,
    scratch: &mut Scratch,
    supports: &mut [Vec<u8>],
) -> Option<u64> {
    let n = index.node_count();
    let s = dfa.state_count();
    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
        }
    }

    // Nodes added since the capture: their accepting configurations are
    // alive by definition and expand like any fresh discovery.
    for state in 0..s {
        if dfa.is_accepting(state) {
            for node in resume.nodes()..n {
                if scratch.alive[state].insert(node) {
                    scratch.frontier[state].insert(node);
                }
            }
        }
    }
    // Direct consequences of the added edges: (u, p) is alive when
    // u --a--> v was inserted, p --a--> q in the DFA and (v, q) is alive.
    // Cascades through *old* edges are handled by the push rounds below —
    // every new discovery enters the frontier and is expanded through the
    // full (patched) reverse index.  Support accounting: a derivation
    // through an added edge whose target was alive in the *seed* is
    // invisible to the newly-alive sweeps (the target never re-enters a
    // frontier), so it is counted here; targets that turn alive later are
    // counted by their own sweep, which enumerates the patched index and so
    // sees the added edge.
    for edge in &delta.added_edges {
        let (u, v) = (edge.source.index(), edge.target.index());
        if u >= n || v >= n {
            return None;
        }
        for (p, row) in supports.iter_mut().enumerate().take(s) {
            if let Some(q) = dfa.step(p, edge.label) {
                if seed_alive(resume, q, v) {
                    row[u] = row[u].saturating_add(1);
                }
                if scratch.alive[q].contains(v) && scratch.alive[p].insert(u) {
                    scratch.frontier[p].insert(u);
                }
            }
        }
    }

    let mut rounds = 0u64;
    loop {
        let mut progress = false;
        for (q, transitions) in rev_dfa.iter().enumerate() {
            if scratch.frontier[q].is_empty() {
                continue;
            }
            for &(label, p) in transitions {
                for u in scratch.frontier[q].ones() {
                    for &w in index.neighbors(Direction::Reverse, label, u) {
                        let slot = &mut supports[p][w as usize];
                        *slot = slot.saturating_add(1);
                        if scratch.alive[p].insert(w as usize) {
                            scratch.next[p].insert(w as usize);
                            progress = true;
                        }
                    }
                }
            }
        }
        if !progress {
            break;
        }
        rounds += 1;
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    }
    Some(rounds)
}

/// Was configuration `(node, state)` alive in the captured seed?  Reads the
/// immutable snapshot words, so it stays answerable after `scratch` has
/// moved on — the old-alive test the delta sweeps need.
#[inline]
fn seed_alive(resume: &EvalResume, state: usize, node: usize) -> bool {
    node < resume.nodes() && resume.state_words(state)[node / 64] & (1u64 << (node % 64)) != 0
}

/// Packs the answer and the next epoch's seed out of a converged `scratch`.
fn pack_result(
    n: usize,
    dfa: &Dfa,
    scratch: &Scratch,
    supports: Vec<Vec<u8>>,
    rounds: u64,
) -> (QueryAnswer, u64, EvalResume) {
    let start = dfa.start();
    let selected = (0..n)
        .map(|node| scratch.alive[start].contains(node))
        .collect();
    let next_resume = EvalResume::new(
        n,
        scratch
            .alive
            .iter()
            .map(|bits| bits.as_words().to_vec())
            .collect(),
        supports,
    );
    (QueryAnswer::from_flags(selected), rounds, next_resume)
}

/// Resumes the product fixed point from a captured [`EvalResume`] after a
/// [`GraphDelta`] that contains **removals** (with or without insertions) —
/// the delete-aware Tier-2 path.  DRed-style, in three phases over the
/// patched index:
///
/// 1. **Insert sweep.** Added nodes and edges are folded in first, exactly
///    like [`resume_counting`], keeping the support counters exact.  Doing
///    inserts first means the later sweeps can enumerate the patched index
///    uniformly: every derivation it contains is counted exactly once.
/// 2. **Over-delete.** Each removed edge decrements the support of its
///    source configurations (only for targets alive *in the seed* — those
///    are the derivations the counters actually contain; the patched index
///    no longer holds the removed edges, so no later sweep counted them).
///    Every alive non-accepting configuration that lost a derivation is
///    *doomed* — unconditionally, regardless of remaining support, because
///    a positive count may rest on a non-well-founded cycle (two
///    configurations supporting only each other survive zero-propagation
///    but must die).  Dooming propagates transitively over the reverse
///    index; each popped configuration leaves the alive set and decrements
///    its dependents.  A decrement hitting a saturated (255) counter is
///    deferred to a post-phase exact recount instead of guessing.  When the
///    doom count passes `overdelete_limit × alive population`, the sweep
///    gives up and returns `None` — the saturation fallback to a cold
///    recompute.
/// 3. **Re-derive.** After the worklist drains, supports count derivations
///    through *surviving* configurations only, so every doomed
///    configuration with a positive count is still derivable from the
///    surviving boundary: those re-enter the alive set and push to closure,
///    re-incrementing supports along the way.  Classic DRed: the survivors
///    under-approximate the new fixed point, and re-derivation from the
///    still-derivable boundary restores it exactly.
///
/// Returns `(answer, push rounds, configurations over-deleted, next seed)`;
/// `None` on a shape mismatch or when the over-delete cone saturates.
pub fn resume_with_removals(
    index: &LabelIndex,
    dfa: &Dfa,
    resume: &EvalResume,
    delta: &GraphDelta,
    scratch: &mut Scratch,
    overdelete_limit: f64,
) -> Option<(QueryAnswer, u64, u64, EvalResume)> {
    let n = index.node_count();
    let s = dfa.state_count();
    let mut supports = restore_seed(n, dfa, resume, scratch)?;
    let mut rounds = insert_sweep(index, dfa, resume, delta, scratch, &mut supports)?;

    // --- Over-delete ------------------------------------------------------
    // Aggregate the removed edges' derivation losses per configuration
    // before touching any counter, so parallel removed edges into the same
    // configuration subtract in one step.
    let mut losses: std::collections::BTreeMap<(usize, usize), u32> =
        std::collections::BTreeMap::new();
    for edge in &delta.removed_edges {
        let (u, v) = (edge.source.index(), edge.target.index());
        if u >= n || v >= n {
            return None;
        }
        for p in 0..s {
            if let Some(q) = dfa.step(p, edge.label) {
                if seed_alive(resume, q, v) {
                    *losses.entry((p, u)).or_insert(0) += 1;
                }
            }
        }
    }

    let alive_total: usize = scratch.alive.iter().map(FixedBitSet::count).sum();
    let budget = overdelete_limit * alive_total as f64;
    // Doomed = over-deleted at least once this sweep; popped configurations
    // leave `alive` only when their propagation runs, so in-flight recounts
    // of "derivations via alive targets" stay consistent.
    let mut doomed: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    // Counters that were saturated when a decrement hit them: their true
    // value is unknown until the exact post-phase recount.
    let mut stale: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut doomed_configs: Vec<(usize, usize)> = Vec::new();
    let mut worklist: std::collections::VecDeque<(usize, usize)> =
        std::collections::VecDeque::new();
    let doom = |p: usize,
                u: usize,
                alive: &[FixedBitSet],
                doomed: &mut [FixedBitSet],
                configs: &mut Vec<(usize, usize)>,
                worklist: &mut std::collections::VecDeque<(usize, usize)>|
     -> bool {
        if !dfa.is_accepting(p) && alive[p].contains(u) && doomed[p].insert(u) {
            configs.push((p, u));
            worklist.push_back((p, u));
            if configs.len() as f64 > budget {
                return false;
            }
        }
        true
    };

    for (&(p, u), &k) in &losses {
        let slot = &mut supports[p][u];
        if *slot == u8::MAX {
            stale[p].insert(u);
        } else {
            *slot = slot.saturating_sub(k.min(u8::MAX as u32) as u8);
        }
        if !doom(
            p,
            u,
            &scratch.alive,
            &mut doomed,
            &mut doomed_configs,
            &mut worklist,
        ) {
            return None;
        }
    }
    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
        }
    }
    while let Some((q, v)) = worklist.pop_front() {
        scratch.alive[q].remove(v);
        for &(label, p) in &rev_dfa[q] {
            for &w in index.neighbors(Direction::Reverse, label, v) {
                let w = w as usize;
                let slot = &mut supports[p][w];
                if *slot == u8::MAX {
                    stale[p].insert(w);
                } else {
                    *slot = slot.saturating_sub(1);
                }
                if !doom(
                    p,
                    w,
                    &scratch.alive,
                    &mut doomed,
                    &mut doomed_configs,
                    &mut worklist,
                ) {
                    return None;
                }
            }
        }
    }
    let overdeleted = doomed_configs.len() as u64;
    // Exact recount for every counter a decrement found saturated, against
    // the post-over-delete alive sets — from here on each counter is either
    // exact or a true 255 again.
    for (p, dirty) in stale.iter().enumerate() {
        for w in dirty.ones() {
            supports[p][w] = recount_support(index, dfa, &scratch.alive, p, w);
        }
    }

    // --- Re-derive --------------------------------------------------------
    // Supports now count derivations through survivors only, so a doomed
    // configuration with a positive count is derivable from the surviving
    // boundary: revive it and push to closure.  Only doomed configurations
    // can revive — everything else alive-eligible survived over-delete.
    for set in scratch.frontier.iter_mut().chain(scratch.next.iter_mut()) {
        set.clear();
    }
    for &(p, u) in &doomed_configs {
        if supports[p][u] > 0 && scratch.alive[p].insert(u) {
            scratch.frontier[p].insert(u);
        }
    }
    loop {
        let mut progress = false;
        for (q, transitions) in rev_dfa.iter().enumerate() {
            if scratch.frontier[q].is_empty() {
                continue;
            }
            for &(label, p) in transitions {
                for v in scratch.frontier[q].ones() {
                    for &w in index.neighbors(Direction::Reverse, label, v) {
                        let w = w as usize;
                        let slot = &mut supports[p][w];
                        *slot = slot.saturating_add(1);
                        if doomed[p].contains(w) && scratch.alive[p].insert(w) {
                            scratch.next[p].insert(w);
                            progress = true;
                        }
                    }
                }
            }
        }
        if !progress {
            break;
        }
        rounds += 1;
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    }

    let (answer, rounds, next_resume) = pack_result(n, dfa, scratch, supports, rounds);
    Some((answer, rounds, overdeleted, next_resume))
}

/// Forward single-source check: does some path from `source` spell an
/// accepted word?  Early-exits on the first accepting configuration, so for
/// selective queries over a handful of sources this beats the global fixed
/// point.
pub fn selects_from(index: &LabelIndex, dfa: &Dfa, source: usize) -> bool {
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 || source >= n {
        return false;
    }
    if dfa.is_accepting(dfa.start()) {
        return true;
    }
    let mut fwd_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for (state, transitions) in fwd_dfa.iter_mut().enumerate() {
        transitions.extend(dfa.transitions_from(state));
    }
    let mut visited: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut queue = std::collections::VecDeque::new();
    visited[dfa.start()].insert(source);
    queue.push_back((source, dfa.start()));
    while let Some((node, state)) = queue.pop_front() {
        for &(label, next_state) in &fwd_dfa[state] {
            for &u in index.neighbors(Direction::Forward, label, node) {
                if visited[next_state].insert(u as usize) {
                    if dfa.is_accepting(next_state) {
                        return true;
                    }
                    queue.push_back((u as usize, next_state));
                }
            }
        }
    }
    false
}

/// Shortest witness extraction over the label index: a BFS over `(node, DFA
/// state)` configurations following the per-label forward slices, with
/// parent links for path reconstruction.
///
/// Returns a path of the same (minimal) length as
/// `gps_rpq::witness::shortest_witness` — the concrete path may differ when
/// several shortest witnesses exist, but the length (what the interactive
/// layer's zooming decision consumes) is unique.
pub fn witness_from(index: &LabelIndex, dfa: &Dfa, source: usize) -> Option<Path> {
    let n = index.node_count();
    let s = dfa.state_count();
    if s == 0 || source >= n {
        return None;
    }
    let start_node = NodeId::from(source);
    if dfa.is_accepting(dfa.start()) {
        return Some(Path::empty(start_node));
    }
    // Parent links: (node, state) -> (parent node, parent state, label).
    let mut parents: std::collections::HashMap<(usize, usize), (usize, usize, LabelId)> =
        std::collections::HashMap::new();
    let mut visited: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut queue = std::collections::VecDeque::new();
    visited[dfa.start()].insert(source);
    queue.push_back((source, dfa.start()));
    while let Some((node, state)) = queue.pop_front() {
        for (label, next_state) in dfa.transitions_from(state) {
            for &u in index.neighbors(Direction::Forward, label, node) {
                let next = (u as usize, next_state);
                if visited[next_state].insert(u as usize) {
                    parents.insert(next, (node, state, label));
                    if dfa.is_accepting(next_state) {
                        // Reconstruct by walking the parent links back.
                        let mut word = Vec::new();
                        let mut nodes = vec![NodeId::from(next.0)];
                        let mut current = next;
                        while let Some(&(pn, ps, label)) = parents.get(&current) {
                            word.push(label);
                            nodes.push(NodeId::from(pn));
                            current = (pn, ps);
                        }
                        word.reverse();
                        nodes.reverse();
                        return Some(Path {
                            start: start_node,
                            word,
                            nodes,
                        });
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::{Graph, GraphBackend};

    fn figure1_like() -> Graph {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g
    }

    fn motivating(g: &Graph) -> Dfa {
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
            Regex::symbol(cinema),
        ]))
    }

    fn eval(g: &Graph, dfa: &Dfa, plan: Plan) -> QueryAnswer {
        let index = LabelIndex::from_backend(g);
        let mut scratch = Scratch::default();
        evaluate_with(&index, dfa, plan, &mut scratch)
    }

    #[test]
    fn all_plans_match_the_naive_evaluator() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            assert_eq!(eval(&g, &dfa, plan), expected, "{plan:?}");
        }
    }

    #[test]
    fn epsilon_selects_everything_and_empty_nothing() {
        let g = figure1_like();
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let eps = eval(&g, &Dfa::from_regex(&Regex::Epsilon), plan);
            assert_eq!(eps.len(), g.node_count(), "{plan:?}");
            let empty = eval(&g, &Dfa::from_regex(&Regex::Empty), plan);
            assert!(empty.is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn scratch_reuse_across_different_shapes() {
        let g = figure1_like();
        let index = LabelIndex::from_backend(&g);
        let mut scratch = Scratch::default();
        let big = motivating(&g);
        let small = Dfa::from_regex(&Regex::symbol(g.label_id("cinema").unwrap()));
        let first = evaluate_with(&index, &big, Plan::Bidirectional, &mut scratch);
        let second = evaluate_with(&index, &small, Plan::Bidirectional, &mut scratch);
        let third = evaluate_with(&index, &big, Plan::Bidirectional, &mut scratch);
        assert_eq!(first, third, "scratch reuse must not leak state");
        assert_eq!(second, gps_rpq::eval::evaluate(&g, &small));
    }

    #[test]
    fn selects_from_agrees_with_global_answer() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let index = LabelIndex::from_backend(&g);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        for node in 0..g.node_count() {
            assert_eq!(
                selects_from(&index, &dfa, node),
                expected.contains(gps_graph::NodeId::from(node)),
                "node {node}"
            );
        }
        assert!(!selects_from(&index, &dfa, 99), "out of range is false");
    }

    #[test]
    fn witness_from_matches_naive_witness_lengths() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let index = LabelIndex::from_backend(&g);
        for node in GraphBackend::nodes(&g) {
            let naive = gps_rpq::witness::shortest_witness(&g, &dfa, node);
            let indexed = witness_from(&index, &dfa, node.index());
            match (naive, indexed) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len(), "node {node}");
                    assert!(dfa.accepts(&b.word), "node {node}");
                    assert_eq!(b.start, node);
                    assert_eq!(b.nodes.len(), b.word.len() + 1);
                }
                (None, None) => {}
                (a, b) => panic!("node {node}: naive {a:?} vs indexed {b:?}"),
            }
        }
        // Nullable query: the empty witness at the node itself.
        let eps = Dfa::from_regex(&Regex::Epsilon);
        let path = witness_from(&index, &eps, 0).unwrap();
        assert!(path.is_empty());
        assert!(witness_from(&index, &eps, 99).is_none(), "out of range");
    }

    #[test]
    fn sparse_and_dense_frontiers_agree() {
        let g = figure1_like();
        let index = LabelIndex::from_backend(&g);
        let dfa = motivating(&g);
        let mut dense = Scratch::with_policy(FrontierPolicy::Dense);
        let mut sparse = Scratch::with_policy(FrontierPolicy::Sparse);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let (a, a_rounds) = evaluate_counting(&index, &dfa, plan, &mut dense);
            let (b, b_rounds) = evaluate_counting(&index, &dfa, plan, &mut sparse);
            assert_eq!(a, b, "{plan:?}");
            assert_eq!(a_rounds, b_rounds, "{plan:?}");
        }
        // Swapping one scratch between policies must not leak state.
        let mut auto = Scratch::with_policy(FrontierPolicy::Sparse);
        let first = evaluate_with(&index, &dfa, Plan::Bidirectional, &mut auto);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        assert_eq!(first, expected);
    }

    #[test]
    fn capture_survives_start_state_saturation() {
        // `x*` from a start state that is accepting: every node is selected
        // in round 0, so the uncaptured path takes the early exit.  The
        // capturing path must keep going and still produce a seed.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", c);
        let x = g.label_id("x").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(x)));
        let index = LabelIndex::from_backend(&g);
        let mut scratch = Scratch::default();
        let (answer, _, resume) =
            evaluate_captured(&index, &dfa, Plan::Bidirectional, &mut scratch);
        assert_eq!(answer.len(), g.node_count(), "saturating query");
        let resume = resume.expect("saturated fixed points now capture a seed");
        assert_eq!(resume.state_count(), dfa.state_count());
        assert_eq!(resume.nodes(), g.node_count());
        // The captured seed must be the *true* fixed point: answers resumed
        // from it after an insert-only delta match a cold evaluation.
        let base = std::sync::Arc::new(gps_graph::CsrGraph::from_graph(&g));
        let mut delta = gps_graph::DeltaGraph::new(std::sync::Arc::clone(&base));
        let d = delta.add_node("d");
        delta.add_edge(c, x, d);
        let summary = delta.delta();
        let compacted = delta.compact();
        let patched = index.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        let (resumed, _, _) =
            resume_counting(&patched, &dfa, &resume, &summary, &mut scratch).expect("insert-only");
        assert_eq!(resumed, gps_rpq::eval::evaluate(&compacted, &dfa));
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", a);
        let x = g.label_id("x").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(x)));
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            assert_eq!(eval(&g, &dfa, plan).len(), 2, "{plan:?}");
        }
    }

    /// Captures a seed on `g`, applies `mutate` on a [`DeltaGraph`] over it,
    /// and returns the delete-aware resumed answer + seed alongside the
    /// patched graph (panicking if the resume bails).
    fn resume_removal_case(
        g: &Graph,
        dfa: &Dfa,
        limit: f64,
        mutate: impl FnOnce(&mut gps_graph::DeltaGraph),
    ) -> Option<(QueryAnswer, EvalResume, gps_graph::CsrGraph, LabelIndex)> {
        let index = LabelIndex::from_backend(g);
        let mut scratch = Scratch::default();
        let (_, _, resume) = evaluate_captured(&index, dfa, Plan::Bidirectional, &mut scratch);
        let resume = resume.expect("base capture");
        let base = std::sync::Arc::new(gps_graph::CsrGraph::from_graph(g));
        let mut delta = gps_graph::DeltaGraph::new(base);
        mutate(&mut delta);
        let summary = delta.delta();
        let compacted = delta.compact();
        let patched = index.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        let (answer, _, _, next) =
            resume_with_removals(&patched, dfa, &resume, &summary, &mut scratch, limit)?;
        Some((answer, next, compacted, patched))
    }

    #[test]
    fn removal_in_a_cycle_kills_non_well_founded_derivations() {
        // a --x--> b --x--> a and b --y--> c, query `x*.y`.  Removing the
        // only `y` edge leaves (s0,a) and (s0,b) supporting each other
        // through the x-cycle; pure count-to-zero propagation would keep
        // both alive.  The DRed over-delete must doom the whole cycle and
        // re-derivation must revive nothing.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", a);
        g.add_edge_by_name(b, "y", c);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        let dfa = Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::symbol(x)),
            Regex::symbol(y),
        ]));
        let (answer, next, compacted, patched) = resume_removal_case(&g, &dfa, 1.0, |delta| {
            assert!(delta.remove_edge(b, y, c));
        })
        .expect("within budget");
        assert!(answer.is_empty(), "the cycle must not keep itself alive");
        assert_eq!(answer, gps_rpq::eval::evaluate(&compacted, &dfa));
        // The produced seed must equal a from-scratch capture on the
        // patched graph — words and support counts both.
        let mut scratch = Scratch::default();
        let (_, _, fresh) = evaluate_captured(&patched, &dfa, Plan::Bidirectional, &mut scratch);
        assert_eq!(next, fresh.expect("fresh capture"));
    }

    #[test]
    fn mixed_delta_matches_cold_evaluation() {
        // Remove one derivation of a multi-supported configuration and add a
        // replacement edge in the same delta: the surviving support must keep
        // N1 selected without re-derivation, and the insert must extend the
        // answer — all byte-identical to a cold evaluation.
        let g = figure1_like();
        let dfa = motivating(&g);
        let n1 = NodeId::from(0usize);
        let n2 = NodeId::from(1usize);
        let n4 = NodeId::from(2usize);
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let (answer, next, compacted, patched) = resume_removal_case(&g, &dfa, 1.0, |delta| {
            let n5 = delta.add_node("N5");
            delta.add_edge(n2, tram, n5);
            delta.add_edge(n5, bus, n4);
            assert!(delta.remove_edge(n2, bus, n1));
        })
        .expect("within budget");
        assert_eq!(answer, gps_rpq::eval::evaluate(&compacted, &dfa));
        assert!(answer.contains(n1), "N1 still reaches the cinema via tram");
        let mut scratch = Scratch::default();
        let (_, _, fresh) = evaluate_captured(&patched, &dfa, Plan::Bidirectional, &mut scratch);
        assert_eq!(next, fresh.expect("fresh capture"));
    }

    #[test]
    fn overdelete_budget_zero_bails_to_cold() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let n1 = NodeId::from(0usize);
        let bus = g.label_id("bus").unwrap();
        // Removing N2's only outgoing edge dooms (at least) one non-accepting
        // configuration, which a zero budget refuses to over-delete.
        let bailed = resume_removal_case(&g, &dfa, 0.0, |delta| {
            assert!(delta.remove_edge(NodeId::from(1usize), bus, n1));
        });
        assert!(bailed.is_none(), "budget 0.0 must force the cold fallback");
    }
}
