//! The frontier evaluator — set-at-a-time product fixed point.
//!
//! Semantics are identical to `gps_rpq::eval::evaluate`: a node `v` is
//! selected iff configuration `(v, start)` can reach an accepting
//! configuration in the product of the graph with the query DFA.  Where the
//! naive evaluator propagates one `(node, state)` configuration at a time
//! through a queue, this evaluator keeps one bitset of nodes per DFA state
//! and advances the whole frontier per DFA transition in label-partitioned
//! slice sweeps (semi-naive/delta evaluation: only configurations discovered
//! in round `k` are expanded in round `k+1`).
//!
//! Each round runs in one of two modes (see [`Plan`]):
//!
//! * **push** — expand the frontier backward through the reverse adjacency;
//! * **pull** — scan still-dead configurations forward for an alive
//!   successor.
//!
//! [`Plan::Bidirectional`] re-picks the cheaper mode every round from the
//! estimated frontier/dead edge volumes, mirroring direction-optimizing BFS.

use crate::bitset::{FixedBitSet, Ones, SparseBitSet, SparseOnes};
use crate::index::{Direction, LabelIndex};
use crate::planner::Plan;
use gps_automata::Dfa;
use gps_graph::{GraphDelta, LabelId, NodeId, Path};
use gps_rpq::{EvalResume, QueryAnswer};

/// Node count at which [`FrontierPolicy::Auto`] switches the frontier/delta
/// bitsets from dense to sparse.  Below this a dense sweep fits comfortably
/// in cache and the summary level is pure overhead; above it, per-round
/// clears and scans of near-empty frontiers dominate and the sparse
/// representation's `O(population)` operations win.
pub const SPARSE_FRONTIER_NODES: usize = 1 << 16;

/// How the evaluator represents the per-round frontier/delta sets.
///
/// The **alive** sets stay dense regardless (they fill monotonically toward
/// the answer and back the [`EvalResume`] word-snapshot format); only the
/// frontier and its staging double are switched.  Every policy produces
/// bit-identical answers — the representation changes constants, not
/// semantics — which `tests/exec_conformance.rs` asserts differentially.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FrontierPolicy {
    /// Sparse when the graph has at least [`SPARSE_FRONTIER_NODES`] nodes,
    /// dense below.
    #[default]
    Auto,
    /// Always dense ([`FixedBitSet`]): one bit per node, `O(nodes)` clears.
    Dense,
    /// Always sparse ([`SparseBitSet`]): summary-word + chunk two-level
    /// sets with `O(population)` clears/scans.
    Sparse,
}

impl FrontierPolicy {
    /// Whether `nodes` resolves to the sparse representation.
    #[inline]
    pub fn is_sparse(self, nodes: usize) -> bool {
        match self {
            FrontierPolicy::Auto => nodes >= SPARSE_FRONTIER_NODES,
            FrontierPolicy::Dense => false,
            FrontierPolicy::Sparse => true,
        }
    }
}

/// One frontier/delta set in whichever representation the policy resolved.
#[derive(Debug, Clone)]
enum FrontierSet {
    Dense(FixedBitSet),
    Sparse(SparseBitSet),
}

impl Default for FrontierSet {
    fn default() -> Self {
        FrontierSet::Dense(FixedBitSet::default())
    }
}

impl FrontierSet {
    /// Resizes to the universe `0..len` in the requested representation and
    /// clears every bit, reusing the allocation when the variant matches.
    fn reset_as(&mut self, len: usize, sparse: bool) {
        match self {
            FrontierSet::Dense(bits) if !sparse => bits.reset(len),
            FrontierSet::Sparse(bits) if sparse => bits.reset(len),
            slot => {
                *slot = if sparse {
                    FrontierSet::Sparse(SparseBitSet::new(len))
                } else {
                    FrontierSet::Dense(FixedBitSet::new(len))
                };
            }
        }
    }

    #[inline]
    fn insert(&mut self, bit: usize) -> bool {
        match self {
            FrontierSet::Dense(bits) => bits.insert(bit),
            FrontierSet::Sparse(bits) => bits.insert(bit),
        }
    }

    fn insert_all(&mut self) {
        match self {
            FrontierSet::Dense(bits) => bits.insert_all(),
            FrontierSet::Sparse(bits) => bits.insert_all(),
        }
    }

    fn clear(&mut self) {
        match self {
            FrontierSet::Dense(bits) => bits.clear(),
            FrontierSet::Sparse(bits) => bits.clear(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            FrontierSet::Dense(bits) => bits.is_empty(),
            FrontierSet::Sparse(bits) => bits.is_empty(),
        }
    }

    fn count(&self) -> usize {
        match self {
            FrontierSet::Dense(bits) => bits.count(),
            FrontierSet::Sparse(bits) => bits.count(),
        }
    }

    fn ones(&self) -> FrontierOnes<'_> {
        match self {
            FrontierSet::Dense(bits) => FrontierOnes::Dense(bits.ones()),
            FrontierSet::Sparse(bits) => FrontierOnes::Sparse(bits.ones()),
        }
    }

    /// ORs this set into `dense`; returns `true` when any new bit appeared.
    fn union_into(&self, dense: &mut FixedBitSet) -> bool {
        match self {
            FrontierSet::Dense(bits) => dense.union_with(bits),
            FrontierSet::Sparse(bits) => bits.union_into(dense),
        }
    }
}

enum FrontierOnes<'a> {
    Dense(Ones<'a>),
    Sparse(SparseOnes<'a>),
}

impl<'a> Iterator for FrontierOnes<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            FrontierOnes::Dense(ones) => ones.next(),
            FrontierOnes::Sparse(ones) => ones.next(),
        }
    }
}

/// Reusable allocation for one evaluation: per-state alive/frontier/delta
/// bitsets.  Batch callers keep one `Scratch` per worker and amortize the
/// allocations across every query of the workload.
///
/// The alive sets are always dense; the frontier/staging sets follow the
/// configured [`FrontierPolicy`] (default [`FrontierPolicy::Auto`]).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    alive: Vec<FixedBitSet>,
    frontier: Vec<FrontierSet>,
    next: Vec<FrontierSet>,
    policy: FrontierPolicy,
}

impl Scratch {
    /// A scratch whose frontier sets follow `policy`.
    pub fn with_policy(policy: FrontierPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The configured frontier representation policy.
    pub fn policy(&self) -> FrontierPolicy {
        self.policy
    }

    /// Resizes for `states` × `nodes` and clears every bit.
    fn prepare(&mut self, states: usize, nodes: usize) {
        self.alive.resize_with(states, FixedBitSet::default);
        for bits in &mut self.alive {
            bits.reset(nodes);
        }
        let sparse = self.policy.is_sparse(nodes);
        for set in [&mut self.frontier, &mut self.next] {
            set.resize_with(states, FrontierSet::default);
            for bits in set.iter_mut() {
                bits.reset_as(nodes, sparse);
            }
        }
    }
}

/// Evaluates `dfa` over `index` with the given expansion plan, reusing
/// `scratch` for the per-state bitsets.
pub fn evaluate_with(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> QueryAnswer {
    evaluate_counting(index, dfa, plan, scratch).0
}

/// [`evaluate_with`], additionally reporting how many frontier rounds the
/// fixed point swept (what `gps_exec_frontier_rounds_total` aggregates).
pub fn evaluate_counting(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> (QueryAnswer, u64) {
    let (answer, rounds, _) = fixed_point(index, dfa, plan, scratch, false);
    (answer, rounds)
}

/// [`evaluate_counting`], additionally capturing the per-state alive sets as
/// an [`EvalResume`] seed for later delta-restricted re-derivation.
///
/// The seed is only sound when the fixed point actually completed, so when
/// the start state saturates early (a query selecting every node) the
/// capturing evaluation keeps deriving the remaining states' closure to the
/// true fixed point instead of early-exiting — the answer is already final,
/// the extra rounds only finish the seed.  Capturing therefore always
/// returns `Some` on non-empty inputs, and uncaptured evaluations keep the
/// early exit (satellite states stay under-derived, which is fine when
/// nothing is recorded).
pub fn evaluate_captured(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> (QueryAnswer, u64, Option<EvalResume>) {
    fixed_point(index, dfa, plan, scratch, true)
}

fn fixed_point(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
    capture: bool,
) -> (QueryAnswer, u64, Option<EvalResume>) {
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 {
        return (QueryAnswer::from_flags(vec![false; n]), 0, None);
    }
    scratch.prepare(s, n);

    // DFA transitions, forward (pull) and reversed (push), plus per-state
    // mean-degree weights for the adaptive cost model.
    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    let mut fwd_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    let mut push_weight = vec![0.0f64; s];
    let mut pull_weight = vec![0.0f64; s];
    let mean_degree = |label: LabelId| index.label_edge_count(label) as f64 / n as f64;
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
            fwd_dfa[state].push((label, target));
            push_weight[target] += mean_degree(label);
            pull_weight[state] += mean_degree(label);
        }
    }

    // Seed: every configuration whose DFA state is accepting.
    for state in 0..s {
        if dfa.is_accepting(state) {
            scratch.alive[state].insert_all();
            scratch.frontier[state].insert_all();
        }
    }

    let start = dfa.start();
    let mut rounds = 0u64;
    let complete = loop {
        // The answer only reads `alive[start]`; once every node is selected
        // no further round can change it.  This exit can leave *other*
        // states under-derived, so a capturing evaluation skips it and runs
        // on to the true fixed point — the seed must cover every state.
        if !capture && scratch.alive[start].count() == n {
            break false;
        }
        rounds += 1;

        let pull = match plan {
            Plan::Reverse => false,
            Plan::Forward => true,
            Plan::Bidirectional => {
                let push_cost: f64 = (0..s)
                    .map(|q| scratch.frontier[q].count() as f64 * push_weight[q])
                    .sum();
                let pull_cost: f64 = (0..s)
                    .map(|p| (n - scratch.alive[p].count()) as f64 * pull_weight[p])
                    .sum();
                pull_cost < push_cost
            }
        };

        let mut progress = false;
        if pull {
            // Jacobi round: read `alive`, stage discoveries in `next`.
            for (p, transitions) in fwd_dfa.iter().enumerate() {
                if transitions.is_empty() {
                    continue;
                }
                'dead: for w in scratch.alive[p].zeros() {
                    for &(label, q) in transitions {
                        for &u in index.neighbors(Direction::Forward, label, w) {
                            if scratch.alive[q].contains(u as usize) {
                                scratch.next[p].insert(w);
                                continue 'dead;
                            }
                        }
                    }
                }
            }
            for p in 0..s {
                progress |= scratch.next[p].union_into(&mut scratch.alive[p]);
            }
        } else {
            // Gauss-Seidel round: mark `alive` immediately, collect the
            // delta in `next`.
            for (q, transitions) in rev_dfa.iter().enumerate() {
                if scratch.frontier[q].is_empty() {
                    continue;
                }
                for &(label, p) in transitions {
                    for u in scratch.frontier[q].ones() {
                        for &w in index.neighbors(Direction::Reverse, label, u) {
                            if scratch.alive[p].insert(w as usize) {
                                scratch.next[p].insert(w as usize);
                                progress = true;
                            }
                        }
                    }
                }
            }
        }
        if !progress {
            // No round mode can derive anything further: a true fixed point.
            break true;
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    };

    let selected = (0..n)
        .map(|node| scratch.alive[start].contains(node))
        .collect();
    let resume = (capture && complete).then(|| {
        EvalResume::new(
            n,
            scratch
                .alive
                .iter()
                .map(|bits| bits.as_words().to_vec())
                .collect(),
        )
    });
    (QueryAnswer::from_flags(selected), rounds, resume)
}

/// Resumes the product fixed point from a captured [`EvalResume`] after an
/// **insert-only** [`GraphDelta`]: the old alive sets are restored, nodes
/// added since the capture seed the accepting states, the added edges'
/// direct derivations seed the frontier, and push rounds over the patched
/// index expand only what the delta can newly derive.
///
/// The fixed point is monotone in the edge set, so converging from the old
/// answer is exact for insertions; any removal invalidates the seed and the
/// caller must fall back to a cold evaluation — signalled by `None`, as is a
/// seed whose DFA shape does not match.
pub fn resume_counting(
    index: &LabelIndex,
    dfa: &Dfa,
    resume: &EvalResume,
    delta: &GraphDelta,
    scratch: &mut Scratch,
) -> Option<(QueryAnswer, u64, EvalResume)> {
    if !delta.removed_edges.is_empty() {
        return None;
    }
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 || resume.state_count() != s || resume.nodes() > n {
        return None;
    }
    scratch.prepare(s, n);

    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
        }
    }

    // Restore the pre-delta fixed point over the node range it covered.
    for state in 0..s {
        scratch.alive[state].load_prefix(resume.state_words(state));
    }
    // Nodes added since the capture: their accepting configurations are
    // alive by definition and expand like any fresh discovery.
    for state in 0..s {
        if dfa.is_accepting(state) {
            for node in resume.nodes()..n {
                if scratch.alive[state].insert(node) {
                    scratch.frontier[state].insert(node);
                }
            }
        }
    }
    // Direct consequences of the added edges: (u, p) is alive when
    // u --a--> v was inserted, p --a--> q in the DFA and (v, q) is alive.
    // Cascades through *old* edges are handled by the push rounds below —
    // every new discovery enters the frontier and is expanded through the
    // full (patched) reverse index.
    for edge in &delta.added_edges {
        let (u, v) = (edge.source.index(), edge.target.index());
        if u >= n || v >= n {
            return None;
        }
        for p in 0..s {
            if let Some(q) = dfa.step(p, edge.label) {
                if scratch.alive[q].contains(v) && scratch.alive[p].insert(u) {
                    scratch.frontier[p].insert(u);
                }
            }
        }
    }

    let mut rounds = 0u64;
    loop {
        let mut progress = false;
        for (q, transitions) in rev_dfa.iter().enumerate() {
            if scratch.frontier[q].is_empty() {
                continue;
            }
            for &(label, p) in transitions {
                for u in scratch.frontier[q].ones() {
                    for &w in index.neighbors(Direction::Reverse, label, u) {
                        if scratch.alive[p].insert(w as usize) {
                            scratch.next[p].insert(w as usize);
                            progress = true;
                        }
                    }
                }
            }
        }
        if !progress {
            break;
        }
        rounds += 1;
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    }

    let start = dfa.start();
    let selected = (0..n)
        .map(|node| scratch.alive[start].contains(node))
        .collect();
    let next_resume = EvalResume::new(
        n,
        scratch
            .alive
            .iter()
            .map(|bits| bits.as_words().to_vec())
            .collect(),
    );
    Some((QueryAnswer::from_flags(selected), rounds, next_resume))
}

/// Forward single-source check: does some path from `source` spell an
/// accepted word?  Early-exits on the first accepting configuration, so for
/// selective queries over a handful of sources this beats the global fixed
/// point.
pub fn selects_from(index: &LabelIndex, dfa: &Dfa, source: usize) -> bool {
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 || source >= n {
        return false;
    }
    if dfa.is_accepting(dfa.start()) {
        return true;
    }
    let mut fwd_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for (state, transitions) in fwd_dfa.iter_mut().enumerate() {
        transitions.extend(dfa.transitions_from(state));
    }
    let mut visited: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut queue = std::collections::VecDeque::new();
    visited[dfa.start()].insert(source);
    queue.push_back((source, dfa.start()));
    while let Some((node, state)) = queue.pop_front() {
        for &(label, next_state) in &fwd_dfa[state] {
            for &u in index.neighbors(Direction::Forward, label, node) {
                if visited[next_state].insert(u as usize) {
                    if dfa.is_accepting(next_state) {
                        return true;
                    }
                    queue.push_back((u as usize, next_state));
                }
            }
        }
    }
    false
}

/// Shortest witness extraction over the label index: a BFS over `(node, DFA
/// state)` configurations following the per-label forward slices, with
/// parent links for path reconstruction.
///
/// Returns a path of the same (minimal) length as
/// `gps_rpq::witness::shortest_witness` — the concrete path may differ when
/// several shortest witnesses exist, but the length (what the interactive
/// layer's zooming decision consumes) is unique.
pub fn witness_from(index: &LabelIndex, dfa: &Dfa, source: usize) -> Option<Path> {
    let n = index.node_count();
    let s = dfa.state_count();
    if s == 0 || source >= n {
        return None;
    }
    let start_node = NodeId::from(source);
    if dfa.is_accepting(dfa.start()) {
        return Some(Path::empty(start_node));
    }
    // Parent links: (node, state) -> (parent node, parent state, label).
    let mut parents: std::collections::HashMap<(usize, usize), (usize, usize, LabelId)> =
        std::collections::HashMap::new();
    let mut visited: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut queue = std::collections::VecDeque::new();
    visited[dfa.start()].insert(source);
    queue.push_back((source, dfa.start()));
    while let Some((node, state)) = queue.pop_front() {
        for (label, next_state) in dfa.transitions_from(state) {
            for &u in index.neighbors(Direction::Forward, label, node) {
                let next = (u as usize, next_state);
                if visited[next_state].insert(u as usize) {
                    parents.insert(next, (node, state, label));
                    if dfa.is_accepting(next_state) {
                        // Reconstruct by walking the parent links back.
                        let mut word = Vec::new();
                        let mut nodes = vec![NodeId::from(next.0)];
                        let mut current = next;
                        while let Some(&(pn, ps, label)) = parents.get(&current) {
                            word.push(label);
                            nodes.push(NodeId::from(pn));
                            current = (pn, ps);
                        }
                        word.reverse();
                        nodes.reverse();
                        return Some(Path {
                            start: start_node,
                            word,
                            nodes,
                        });
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::{Graph, GraphBackend};

    fn figure1_like() -> Graph {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g
    }

    fn motivating(g: &Graph) -> Dfa {
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
            Regex::symbol(cinema),
        ]))
    }

    fn eval(g: &Graph, dfa: &Dfa, plan: Plan) -> QueryAnswer {
        let index = LabelIndex::from_backend(g);
        let mut scratch = Scratch::default();
        evaluate_with(&index, dfa, plan, &mut scratch)
    }

    #[test]
    fn all_plans_match_the_naive_evaluator() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            assert_eq!(eval(&g, &dfa, plan), expected, "{plan:?}");
        }
    }

    #[test]
    fn epsilon_selects_everything_and_empty_nothing() {
        let g = figure1_like();
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let eps = eval(&g, &Dfa::from_regex(&Regex::Epsilon), plan);
            assert_eq!(eps.len(), g.node_count(), "{plan:?}");
            let empty = eval(&g, &Dfa::from_regex(&Regex::Empty), plan);
            assert!(empty.is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn scratch_reuse_across_different_shapes() {
        let g = figure1_like();
        let index = LabelIndex::from_backend(&g);
        let mut scratch = Scratch::default();
        let big = motivating(&g);
        let small = Dfa::from_regex(&Regex::symbol(g.label_id("cinema").unwrap()));
        let first = evaluate_with(&index, &big, Plan::Bidirectional, &mut scratch);
        let second = evaluate_with(&index, &small, Plan::Bidirectional, &mut scratch);
        let third = evaluate_with(&index, &big, Plan::Bidirectional, &mut scratch);
        assert_eq!(first, third, "scratch reuse must not leak state");
        assert_eq!(second, gps_rpq::eval::evaluate(&g, &small));
    }

    #[test]
    fn selects_from_agrees_with_global_answer() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let index = LabelIndex::from_backend(&g);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        for node in 0..g.node_count() {
            assert_eq!(
                selects_from(&index, &dfa, node),
                expected.contains(gps_graph::NodeId::from(node)),
                "node {node}"
            );
        }
        assert!(!selects_from(&index, &dfa, 99), "out of range is false");
    }

    #[test]
    fn witness_from_matches_naive_witness_lengths() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let index = LabelIndex::from_backend(&g);
        for node in GraphBackend::nodes(&g) {
            let naive = gps_rpq::witness::shortest_witness(&g, &dfa, node);
            let indexed = witness_from(&index, &dfa, node.index());
            match (naive, indexed) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len(), "node {node}");
                    assert!(dfa.accepts(&b.word), "node {node}");
                    assert_eq!(b.start, node);
                    assert_eq!(b.nodes.len(), b.word.len() + 1);
                }
                (None, None) => {}
                (a, b) => panic!("node {node}: naive {a:?} vs indexed {b:?}"),
            }
        }
        // Nullable query: the empty witness at the node itself.
        let eps = Dfa::from_regex(&Regex::Epsilon);
        let path = witness_from(&index, &eps, 0).unwrap();
        assert!(path.is_empty());
        assert!(witness_from(&index, &eps, 99).is_none(), "out of range");
    }

    #[test]
    fn sparse_and_dense_frontiers_agree() {
        let g = figure1_like();
        let index = LabelIndex::from_backend(&g);
        let dfa = motivating(&g);
        let mut dense = Scratch::with_policy(FrontierPolicy::Dense);
        let mut sparse = Scratch::with_policy(FrontierPolicy::Sparse);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let (a, a_rounds) = evaluate_counting(&index, &dfa, plan, &mut dense);
            let (b, b_rounds) = evaluate_counting(&index, &dfa, plan, &mut sparse);
            assert_eq!(a, b, "{plan:?}");
            assert_eq!(a_rounds, b_rounds, "{plan:?}");
        }
        // Swapping one scratch between policies must not leak state.
        let mut auto = Scratch::with_policy(FrontierPolicy::Sparse);
        let first = evaluate_with(&index, &dfa, Plan::Bidirectional, &mut auto);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        assert_eq!(first, expected);
    }

    #[test]
    fn capture_survives_start_state_saturation() {
        // `x*` from a start state that is accepting: every node is selected
        // in round 0, so the uncaptured path takes the early exit.  The
        // capturing path must keep going and still produce a seed.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", c);
        let x = g.label_id("x").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(x)));
        let index = LabelIndex::from_backend(&g);
        let mut scratch = Scratch::default();
        let (answer, _, resume) =
            evaluate_captured(&index, &dfa, Plan::Bidirectional, &mut scratch);
        assert_eq!(answer.len(), g.node_count(), "saturating query");
        let resume = resume.expect("saturated fixed points now capture a seed");
        assert_eq!(resume.state_count(), dfa.state_count());
        assert_eq!(resume.nodes(), g.node_count());
        // The captured seed must be the *true* fixed point: answers resumed
        // from it after an insert-only delta match a cold evaluation.
        let base = std::sync::Arc::new(gps_graph::CsrGraph::from_graph(&g));
        let mut delta = gps_graph::DeltaGraph::new(std::sync::Arc::clone(&base));
        let d = delta.add_node("d");
        delta.add_edge(c, x, d);
        let summary = delta.delta();
        let compacted = delta.compact();
        let patched = index.apply_delta(&summary, compacted.node_count(), compacted.label_count());
        let (resumed, _, _) =
            resume_counting(&patched, &dfa, &resume, &summary, &mut scratch).expect("insert-only");
        assert_eq!(resumed, gps_rpq::eval::evaluate(&compacted, &dfa));
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", a);
        let x = g.label_id("x").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(x)));
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            assert_eq!(eval(&g, &dfa, plan).len(), 2, "{plan:?}");
        }
    }
}
