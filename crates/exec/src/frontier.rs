//! The frontier evaluator — set-at-a-time product fixed point.
//!
//! Semantics are identical to `gps_rpq::eval::evaluate`: a node `v` is
//! selected iff configuration `(v, start)` can reach an accepting
//! configuration in the product of the graph with the query DFA.  Where the
//! naive evaluator propagates one `(node, state)` configuration at a time
//! through a queue, this evaluator keeps one bitset of nodes per DFA state
//! and advances the whole frontier per DFA transition in label-partitioned
//! slice sweeps (semi-naive/delta evaluation: only configurations discovered
//! in round `k` are expanded in round `k+1`).
//!
//! Each round runs in one of two modes (see [`Plan`]):
//!
//! * **push** — expand the frontier backward through the reverse adjacency;
//! * **pull** — scan still-dead configurations forward for an alive
//!   successor.
//!
//! [`Plan::Bidirectional`] re-picks the cheaper mode every round from the
//! estimated frontier/dead edge volumes, mirroring direction-optimizing BFS.

use crate::bitset::FixedBitSet;
use crate::index::{Direction, LabelIndex};
use crate::planner::Plan;
use gps_automata::Dfa;
use gps_graph::{GraphDelta, LabelId, NodeId, Path};
use gps_rpq::{EvalResume, QueryAnswer};

/// Reusable allocation for one evaluation: per-state alive/frontier/delta
/// bitsets.  Batch callers keep one `Scratch` per worker and amortize the
/// allocations across every query of the workload.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    alive: Vec<FixedBitSet>,
    frontier: Vec<FixedBitSet>,
    next: Vec<FixedBitSet>,
}

impl Scratch {
    /// Resizes for `states` × `nodes` and clears every bit.
    fn prepare(&mut self, states: usize, nodes: usize) {
        for set in [&mut self.alive, &mut self.frontier, &mut self.next] {
            set.resize_with(states, FixedBitSet::default);
            for bits in set.iter_mut() {
                bits.reset(nodes);
            }
        }
    }
}

/// Evaluates `dfa` over `index` with the given expansion plan, reusing
/// `scratch` for the per-state bitsets.
pub fn evaluate_with(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> QueryAnswer {
    evaluate_counting(index, dfa, plan, scratch).0
}

/// [`evaluate_with`], additionally reporting how many frontier rounds the
/// fixed point swept (what `gps_exec_frontier_rounds_total` aggregates).
pub fn evaluate_counting(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> (QueryAnswer, u64) {
    let (answer, rounds, _) = fixed_point(index, dfa, plan, scratch, false);
    (answer, rounds)
}

/// [`evaluate_counting`], additionally capturing the per-state alive sets as
/// an [`EvalResume`] seed for later delta-restricted re-derivation.
///
/// The seed is only sound when the fixed point actually completed, so the
/// capture is `None` exactly when the evaluation took the early exit (the
/// start state saturated while other states were still under-derived) — which
/// only happens on queries that select every node, the cheapest ones to
/// recompute cold.
pub fn evaluate_captured(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
) -> (QueryAnswer, u64, Option<EvalResume>) {
    fixed_point(index, dfa, plan, scratch, true)
}

fn fixed_point(
    index: &LabelIndex,
    dfa: &Dfa,
    plan: Plan,
    scratch: &mut Scratch,
    capture: bool,
) -> (QueryAnswer, u64, Option<EvalResume>) {
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 {
        return (QueryAnswer::from_flags(vec![false; n]), 0, None);
    }
    scratch.prepare(s, n);

    // DFA transitions, forward (pull) and reversed (push), plus per-state
    // mean-degree weights for the adaptive cost model.
    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    let mut fwd_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    let mut push_weight = vec![0.0f64; s];
    let mut pull_weight = vec![0.0f64; s];
    let mean_degree = |label: LabelId| index.label_edge_count(label) as f64 / n as f64;
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
            fwd_dfa[state].push((label, target));
            push_weight[target] += mean_degree(label);
            pull_weight[state] += mean_degree(label);
        }
    }

    // Seed: every configuration whose DFA state is accepting.
    for state in 0..s {
        if dfa.is_accepting(state) {
            scratch.alive[state].insert_all();
            scratch.frontier[state].insert_all();
        }
    }

    let start = dfa.start();
    let mut rounds = 0u64;
    let complete = loop {
        // The answer only reads `alive[start]`; once every node is selected
        // no further round can change it.  This exit can leave *other*
        // states under-derived, so it does not produce a resumable seed.
        if scratch.alive[start].count() == n {
            break false;
        }
        rounds += 1;

        let pull = match plan {
            Plan::Reverse => false,
            Plan::Forward => true,
            Plan::Bidirectional => {
                let push_cost: f64 = (0..s)
                    .map(|q| scratch.frontier[q].count() as f64 * push_weight[q])
                    .sum();
                let pull_cost: f64 = (0..s)
                    .map(|p| (n - scratch.alive[p].count()) as f64 * pull_weight[p])
                    .sum();
                pull_cost < push_cost
            }
        };

        let mut progress = false;
        if pull {
            // Jacobi round: read `alive`, stage discoveries in `next`.
            for (p, transitions) in fwd_dfa.iter().enumerate() {
                if transitions.is_empty() {
                    continue;
                }
                'dead: for w in scratch.alive[p].zeros() {
                    for &(label, q) in transitions {
                        for &u in index.neighbors(Direction::Forward, label, w) {
                            if scratch.alive[q].contains(u as usize) {
                                scratch.next[p].insert(w);
                                continue 'dead;
                            }
                        }
                    }
                }
            }
            for p in 0..s {
                progress |= scratch.alive[p].union_with(&scratch.next[p]);
            }
        } else {
            // Gauss-Seidel round: mark `alive` immediately, collect the
            // delta in `next`.
            for (q, transitions) in rev_dfa.iter().enumerate() {
                if scratch.frontier[q].is_empty() {
                    continue;
                }
                for &(label, p) in transitions {
                    for u in scratch.frontier[q].ones() {
                        for &w in index.neighbors(Direction::Reverse, label, u) {
                            if scratch.alive[p].insert(w as usize) {
                                scratch.next[p].insert(w as usize);
                                progress = true;
                            }
                        }
                    }
                }
            }
        }
        if !progress {
            // No round mode can derive anything further: a true fixed point.
            break true;
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    };

    let selected = (0..n)
        .map(|node| scratch.alive[start].contains(node))
        .collect();
    let resume = (capture && complete).then(|| {
        EvalResume::new(
            n,
            scratch
                .alive
                .iter()
                .map(|bits| bits.as_words().to_vec())
                .collect(),
        )
    });
    (QueryAnswer::from_flags(selected), rounds, resume)
}

/// Resumes the product fixed point from a captured [`EvalResume`] after an
/// **insert-only** [`GraphDelta`]: the old alive sets are restored, nodes
/// added since the capture seed the accepting states, the added edges'
/// direct derivations seed the frontier, and push rounds over the patched
/// index expand only what the delta can newly derive.
///
/// The fixed point is monotone in the edge set, so converging from the old
/// answer is exact for insertions; any removal invalidates the seed and the
/// caller must fall back to a cold evaluation — signalled by `None`, as is a
/// seed whose DFA shape does not match.
pub fn resume_counting(
    index: &LabelIndex,
    dfa: &Dfa,
    resume: &EvalResume,
    delta: &GraphDelta,
    scratch: &mut Scratch,
) -> Option<(QueryAnswer, u64, EvalResume)> {
    if !delta.removed_edges.is_empty() {
        return None;
    }
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 || resume.state_count() != s || resume.nodes() > n {
        return None;
    }
    scratch.prepare(s, n);

    let mut rev_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for state in 0..s {
        for (label, target) in dfa.transitions_from(state) {
            rev_dfa[target].push((label, state));
        }
    }

    // Restore the pre-delta fixed point over the node range it covered.
    for state in 0..s {
        scratch.alive[state].load_prefix(resume.state_words(state));
    }
    // Nodes added since the capture: their accepting configurations are
    // alive by definition and expand like any fresh discovery.
    for state in 0..s {
        if dfa.is_accepting(state) {
            for node in resume.nodes()..n {
                if scratch.alive[state].insert(node) {
                    scratch.frontier[state].insert(node);
                }
            }
        }
    }
    // Direct consequences of the added edges: (u, p) is alive when
    // u --a--> v was inserted, p --a--> q in the DFA and (v, q) is alive.
    // Cascades through *old* edges are handled by the push rounds below —
    // every new discovery enters the frontier and is expanded through the
    // full (patched) reverse index.
    for edge in &delta.added_edges {
        let (u, v) = (edge.source.index(), edge.target.index());
        if u >= n || v >= n {
            return None;
        }
        for p in 0..s {
            if let Some(q) = dfa.step(p, edge.label) {
                if scratch.alive[q].contains(v) && scratch.alive[p].insert(u) {
                    scratch.frontier[p].insert(u);
                }
            }
        }
    }

    let mut rounds = 0u64;
    loop {
        let mut progress = false;
        for (q, transitions) in rev_dfa.iter().enumerate() {
            if scratch.frontier[q].is_empty() {
                continue;
            }
            for &(label, p) in transitions {
                for u in scratch.frontier[q].ones() {
                    for &w in index.neighbors(Direction::Reverse, label, u) {
                        if scratch.alive[p].insert(w as usize) {
                            scratch.next[p].insert(w as usize);
                            progress = true;
                        }
                    }
                }
            }
        }
        if !progress {
            break;
        }
        rounds += 1;
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        for bits in &mut scratch.next {
            bits.clear();
        }
    }

    let start = dfa.start();
    let selected = (0..n)
        .map(|node| scratch.alive[start].contains(node))
        .collect();
    let next_resume = EvalResume::new(
        n,
        scratch
            .alive
            .iter()
            .map(|bits| bits.as_words().to_vec())
            .collect(),
    );
    Some((QueryAnswer::from_flags(selected), rounds, next_resume))
}

/// Forward single-source check: does some path from `source` spell an
/// accepted word?  Early-exits on the first accepting configuration, so for
/// selective queries over a handful of sources this beats the global fixed
/// point.
pub fn selects_from(index: &LabelIndex, dfa: &Dfa, source: usize) -> bool {
    let n = index.node_count();
    let s = dfa.state_count();
    if n == 0 || s == 0 || source >= n {
        return false;
    }
    if dfa.is_accepting(dfa.start()) {
        return true;
    }
    let mut fwd_dfa: Vec<Vec<(LabelId, usize)>> = vec![Vec::new(); s];
    for (state, transitions) in fwd_dfa.iter_mut().enumerate() {
        transitions.extend(dfa.transitions_from(state));
    }
    let mut visited: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut queue = std::collections::VecDeque::new();
    visited[dfa.start()].insert(source);
    queue.push_back((source, dfa.start()));
    while let Some((node, state)) = queue.pop_front() {
        for &(label, next_state) in &fwd_dfa[state] {
            for &u in index.neighbors(Direction::Forward, label, node) {
                if visited[next_state].insert(u as usize) {
                    if dfa.is_accepting(next_state) {
                        return true;
                    }
                    queue.push_back((u as usize, next_state));
                }
            }
        }
    }
    false
}

/// Shortest witness extraction over the label index: a BFS over `(node, DFA
/// state)` configurations following the per-label forward slices, with
/// parent links for path reconstruction.
///
/// Returns a path of the same (minimal) length as
/// `gps_rpq::witness::shortest_witness` — the concrete path may differ when
/// several shortest witnesses exist, but the length (what the interactive
/// layer's zooming decision consumes) is unique.
pub fn witness_from(index: &LabelIndex, dfa: &Dfa, source: usize) -> Option<Path> {
    let n = index.node_count();
    let s = dfa.state_count();
    if s == 0 || source >= n {
        return None;
    }
    let start_node = NodeId::from(source);
    if dfa.is_accepting(dfa.start()) {
        return Some(Path::empty(start_node));
    }
    // Parent links: (node, state) -> (parent node, parent state, label).
    let mut parents: std::collections::HashMap<(usize, usize), (usize, usize, LabelId)> =
        std::collections::HashMap::new();
    let mut visited: Vec<FixedBitSet> = (0..s).map(|_| FixedBitSet::new(n)).collect();
    let mut queue = std::collections::VecDeque::new();
    visited[dfa.start()].insert(source);
    queue.push_back((source, dfa.start()));
    while let Some((node, state)) = queue.pop_front() {
        for (label, next_state) in dfa.transitions_from(state) {
            for &u in index.neighbors(Direction::Forward, label, node) {
                let next = (u as usize, next_state);
                if visited[next_state].insert(u as usize) {
                    parents.insert(next, (node, state, label));
                    if dfa.is_accepting(next_state) {
                        // Reconstruct by walking the parent links back.
                        let mut word = Vec::new();
                        let mut nodes = vec![NodeId::from(next.0)];
                        let mut current = next;
                        while let Some(&(pn, ps, label)) = parents.get(&current) {
                            word.push(label);
                            nodes.push(NodeId::from(pn));
                            current = (pn, ps);
                        }
                        word.reverse();
                        nodes.reverse();
                        return Some(Path {
                            start: start_node,
                            word,
                            nodes,
                        });
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::{Graph, GraphBackend};

    fn figure1_like() -> Graph {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g
    }

    fn motivating(g: &Graph) -> Dfa {
        let tram = g.label_id("tram").unwrap();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
            Regex::symbol(cinema),
        ]))
    }

    fn eval(g: &Graph, dfa: &Dfa, plan: Plan) -> QueryAnswer {
        let index = LabelIndex::from_backend(g);
        let mut scratch = Scratch::default();
        evaluate_with(&index, dfa, plan, &mut scratch)
    }

    #[test]
    fn all_plans_match_the_naive_evaluator() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            assert_eq!(eval(&g, &dfa, plan), expected, "{plan:?}");
        }
    }

    #[test]
    fn epsilon_selects_everything_and_empty_nothing() {
        let g = figure1_like();
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let eps = eval(&g, &Dfa::from_regex(&Regex::Epsilon), plan);
            assert_eq!(eps.len(), g.node_count(), "{plan:?}");
            let empty = eval(&g, &Dfa::from_regex(&Regex::Empty), plan);
            assert!(empty.is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn scratch_reuse_across_different_shapes() {
        let g = figure1_like();
        let index = LabelIndex::from_backend(&g);
        let mut scratch = Scratch::default();
        let big = motivating(&g);
        let small = Dfa::from_regex(&Regex::symbol(g.label_id("cinema").unwrap()));
        let first = evaluate_with(&index, &big, Plan::Bidirectional, &mut scratch);
        let second = evaluate_with(&index, &small, Plan::Bidirectional, &mut scratch);
        let third = evaluate_with(&index, &big, Plan::Bidirectional, &mut scratch);
        assert_eq!(first, third, "scratch reuse must not leak state");
        assert_eq!(second, gps_rpq::eval::evaluate(&g, &small));
    }

    #[test]
    fn selects_from_agrees_with_global_answer() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let index = LabelIndex::from_backend(&g);
        let expected = gps_rpq::eval::evaluate(&g, &dfa);
        for node in 0..g.node_count() {
            assert_eq!(
                selects_from(&index, &dfa, node),
                expected.contains(gps_graph::NodeId::from(node)),
                "node {node}"
            );
        }
        assert!(!selects_from(&index, &dfa, 99), "out of range is false");
    }

    #[test]
    fn witness_from_matches_naive_witness_lengths() {
        let g = figure1_like();
        let dfa = motivating(&g);
        let index = LabelIndex::from_backend(&g);
        for node in GraphBackend::nodes(&g) {
            let naive = gps_rpq::witness::shortest_witness(&g, &dfa, node);
            let indexed = witness_from(&index, &dfa, node.index());
            match (naive, indexed) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len(), "node {node}");
                    assert!(dfa.accepts(&b.word), "node {node}");
                    assert_eq!(b.start, node);
                    assert_eq!(b.nodes.len(), b.word.len() + 1);
                }
                (None, None) => {}
                (a, b) => panic!("node {node}: naive {a:?} vs indexed {b:?}"),
            }
        }
        // Nullable query: the empty witness at the node itself.
        let eps = Dfa::from_regex(&Regex::Epsilon);
        let path = witness_from(&index, &eps, 0).unwrap();
        assert!(path.is_empty());
        assert!(witness_from(&index, &eps, 99).is_none(), "out of range");
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "x", a);
        let x = g.label_id("x").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(x)));
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            assert_eq!(eval(&g, &dfa, plan).len(), 2, "{plan:?}");
        }
    }
}
