//! Direction-aware query planning.
//!
//! The product fixed point can be driven two ways:
//!
//! * **push** (reverse expansion) — walk the *reverse* adjacency from the
//!   newly-alive frontier; work is proportional to the frontier's in-edges,
//!   which is ideal while the alive set stays sparse;
//! * **pull** (forward expansion) — for every still-dead configuration, scan
//!   its *forward* adjacency for an alive successor; work is proportional to
//!   the dead set, which wins once most configurations are alive (the classic
//!   direction-optimization argument from BFS).
//!
//! [`plan`] picks a [`Plan`] per query from per-label degree/frequency
//! statistics ([`gps_graph::LabelStats`]): queries over rare labels stay in
//! push mode, queries whose labels blanket the graph switch to pull or to the
//! adaptive hybrid that re-decides every round.

use gps_automata::Dfa;
use gps_graph::{LabelId, LabelStats};

/// How the frontier evaluator expands the product fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Always push along reverse adjacency (sparse frontiers).
    Reverse,
    /// Always pull along forward adjacency (dense alive sets).
    Forward,
    /// Re-pick push vs. pull every round from frontier/dead-set sizes.
    Bidirectional,
}

/// The planner's decision together with the statistics that produced it, so
/// callers (CLI, benches, tests) can explain the choice.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// The chosen plan.
    pub plan: Plan,
    /// Fraction of all edges carrying a label the query's DFA uses.
    pub coverage: f64,
    /// Mean per-node edge count over the query's labels.
    pub mean_degree: f64,
    /// The labels the DFA actually uses.
    pub used_labels: Vec<LabelId>,
}

/// The planner's decision thresholds, exposed as configuration so deployments
/// can calibrate them per corpus (the defaults were hand-tuned on the
/// checked-in workloads and sanity-checked against the 20k-node scale-free
/// corpus — see `tests/planner_defaults.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Edge-coverage below which expansion always stays in push mode.
    pub push_coverage: f64,
    /// Edge-coverage above which pull mode is considered.
    pub pull_coverage: f64,
    /// Mean per-node degree (over the query's labels) additionally required
    /// for pull mode to win outright.
    pub pull_mean_degree: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            push_coverage: 0.4,
            pull_coverage: 0.9,
            pull_mean_degree: 4.0,
        }
    }
}

/// Picks the expansion plan for `dfa` over a graph with statistics `stats`,
/// using the default thresholds.
pub fn plan(stats: &LabelStats, dfa: &Dfa) -> PlanDecision {
    plan_with(stats, dfa, PlannerConfig::default())
}

/// Picks the expansion plan for `dfa` under explicit thresholds.
pub fn plan_with(stats: &LabelStats, dfa: &Dfa, config: PlannerConfig) -> PlanDecision {
    let used_labels = dfa.used_alphabet().symbols().to_vec();
    let coverage = stats.coverage(used_labels.iter().copied());
    let mean_degree = stats.mean_degree(used_labels.iter().copied());
    let plan = if coverage < config.push_coverage {
        Plan::Reverse
    } else if coverage > config.pull_coverage && mean_degree >= config.pull_mean_degree {
        Plan::Forward
    } else {
        Plan::Bidirectional
    };
    PlanDecision {
        plan,
        coverage,
        mean_degree,
        used_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::Regex;
    use gps_graph::Graph;

    /// A graph where label `x` dominates and `y` is rare.
    fn skewed() -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..20).map(|i| g.add_node(format!("n{i}"))).collect();
        for window in nodes.windows(2) {
            for _ in 0..5 {
                g.add_edge_by_name(window[0], "x", window[1]);
            }
        }
        g.add_edge_by_name(nodes[0], "y", nodes[10]);
        g
    }

    #[test]
    fn rare_label_queries_stay_in_push_mode() {
        let g = skewed();
        let stats = LabelStats::compute(&g);
        let y = g.label_id("y").unwrap();
        let decision = plan(&stats, &Dfa::from_regex(&Regex::symbol(y)));
        assert_eq!(decision.plan, Plan::Reverse);
        assert!(decision.coverage < 0.05);
    }

    #[test]
    fn blanket_label_queries_pull() {
        let g = skewed();
        let stats = LabelStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let decision = plan(&stats, &Dfa::from_regex(&Regex::star(Regex::symbol(x))));
        assert_eq!(decision.plan, Plan::Forward);
        assert!(decision.coverage > 0.9);
        assert!(decision.mean_degree >= 4.0);
    }

    #[test]
    fn mixed_queries_go_bidirectional() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "y", a);
        let stats = LabelStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let decision = plan(&stats, &Dfa::from_regex(&Regex::symbol(x)));
        // x covers half the edges: neither rare nor blanket.
        assert_eq!(decision.plan, Plan::Bidirectional);
        assert_eq!(decision.used_labels, vec![x]);
    }

    #[test]
    fn empty_query_uses_push() {
        let g = skewed();
        let stats = LabelStats::compute(&g);
        let decision = plan(&stats, &Dfa::from_regex(&Regex::Empty));
        assert_eq!(decision.plan, Plan::Reverse);
        assert_eq!(decision.coverage, 0.0);
    }

    #[test]
    fn custom_thresholds_move_the_boundaries() {
        let g = skewed();
        let stats = LabelStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(x)));
        assert_eq!(plan(&stats, &dfa).plan, Plan::Forward, "defaults");
        // Raising the pull bar beyond x's coverage demotes it to hybrid…
        let strict = PlannerConfig {
            pull_coverage: 0.999,
            ..PlannerConfig::default()
        };
        assert_eq!(plan_with(&stats, &dfa, strict).plan, Plan::Bidirectional);
        // …and raising the push bar above it forces push mode.
        let push_all = PlannerConfig {
            push_coverage: 1.1,
            ..PlannerConfig::default()
        };
        assert_eq!(plan_with(&stats, &dfa, push_all).plan, Plan::Reverse);
    }
}
