//! The error type of the durable store.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file I/O failed (append, fsync, rename, read).
    Io(io::Error),
    /// On-disk state failed validation: a checksum mismatch, a truncated
    /// header, or a structurally impossible record.  Recovery treats a
    /// corrupt *tail* of the WAL as a torn write and discards it silently;
    /// this error is reserved for corruption that makes the store
    /// unusable (bad magic, unreadable checkpoint).
    Corrupt {
        /// Byte offset of the first invalid byte within the file.
        offset: u64,
        /// Human-readable description of the failed validation.
        reason: String,
    },
    /// The store directory is already held open by another store (this
    /// process or another) — two writers interleaving WAL appends would
    /// corrupt the log, so the open is refused.
    Locked {
        /// The lock file that is held.
        path: PathBuf,
    },
}

impl StoreError {
    /// Builds a [`StoreError::Corrupt`] at `offset`.
    pub fn corrupt(offset: u64, reason: impl Into<String>) -> Self {
        StoreError::Corrupt {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt store data at byte {offset}: {reason}")
            }
            StoreError::Locked { path } => {
                write!(
                    f,
                    "store directory already locked by another open store ({})",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } | StoreError::Locked { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
