//! Little-endian encoding helpers and the CRC-32 checksum shared by the WAL
//! and checkpoint formats.
//!
//! Everything here is hand-rolled over `std` — the build environment is
//! offline, so the store vendors no serialization or checksum crates.  The
//! checksum is the IEEE CRC-32 (the polynomial used by gzip/PNG), which
//! guarantees detection of any single-bit error in a record body.

/// IEEE CRC-32 lookup table (reflected polynomial `0xEDB88320`), built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The IEEE CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends a `u32` in little-endian order.
pub(crate) fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub(crate) fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (`u32` byte length + bytes).
pub(crate) fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

/// A bounds-checked reader over a byte slice.  Every method returns `None`
/// instead of panicking when the input is truncated or malformed, so decoders
/// built on it reject corrupt data gracefully.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(slice)
    }

    /// Advances to absolute offset `pos` (forward only).
    pub(crate) fn seek_to(&mut self, pos: usize) -> Option<()> {
        if pos < self.pos || pos > self.bytes.len() {
            return None;
        }
        self.pos = pos;
        Some(())
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("four bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    pub(crate) fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let reference = crc32(data);
        let mut copy = data.to_vec();
        for bit in 0..copy.len() * 8 {
            copy[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&copy), reference, "flip of bit {bit} undetected");
            copy[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn cursor_round_trips_scalars_and_strings() {
        let mut out = Vec::new();
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "ligne α");
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.u32(), Some(0xDEAD_BEEF));
        assert_eq!(cursor.u64(), Some(u64::MAX - 1));
        assert_eq!(cursor.string().as_deref(), Some("ligne α"));
        assert!(cursor.is_empty());
    }

    #[test]
    fn cursor_rejects_truncation_without_panicking() {
        let mut out = Vec::new();
        put_str(&mut out, "hello");
        // Claim more bytes than are present.
        out[0] = 200;
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.string(), None);
        // Invalid UTF-8 payload.
        let bad = [2, 0, 0, 0, 0xFF, 0xFE];
        assert_eq!(Cursor::new(&bad).string(), None);
        // Backward seeks are rejected.
        let mut cursor = Cursor::new(&out);
        cursor.take(3).unwrap();
        assert_eq!(cursor.seek_to(1), None);
        assert_eq!(cursor.seek_to(100), None);
    }
}
