//! `gps-store` — durable persistence for the GPS engine's versioned graph.
//!
//! The crate provides the [`GraphStore`] seam `VersionedStore` publishes
//! through, plus its two implementations:
//!
//! * [`MemoryStore`] — the zero-cost default; nothing is persisted and the
//!   engine behaves exactly as before durability existed.
//! * [`FileStore`] — a write-ahead log of name-addressed [`UpdateOp`]
//!   batches ([`wal`]) plus snapshot checkpoints of compacted CSR epochs
//!   ([`snapshot`]), with replay-on-startup recovery.
//!
//! The durability contract: staged batches are appended without fsync, a
//! single fsync lands on the commit record at publish, and a publish is
//! durable if and only if its commit record reached the device.  Recovery
//! loads the latest checkpoint, replays committed WAL batches in order, and
//! discards torn or uncommitted tails — a crash at any byte offset yields
//! either the pre- or the post-publish graph, never a hybrid.
//!
//! Everything is hand-rolled over `std` (length-prefixed records, CRC-32
//! checksums, little-endian packed arrays); the crate adds no dependencies
//! beyond the workspace's vendored `parking_lot`.
//!
//! [`UpdateOp`]: gps_graph::UpdateOp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod metrics;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::crc32;
pub use error::StoreError;
pub use metrics::StoreMetrics;
pub use snapshot::{decode_snapshot, encode_snapshot, SNAPSHOT_MAGIC};
pub use store::{
    CheckpointReceipt, CommitReceipt, FileStore, GraphStore, MemoryStore, RecoveredState,
    StagedBatch,
};
pub use wal::{CommittedBatch, WalRecord, WalScan, WAL_MAGIC};
