//! The [`GraphStore`] seam and its two implementations.
//!
//! * [`MemoryStore`] — the zero-cost default: nothing is persisted, every
//!   call is a counter bump or a no-op.  A `VersionedStore` over it behaves
//!   exactly like the pre-durability engine.
//! * [`FileStore`] — a directory holding one write-ahead log (`wal.log`,
//!   format in [`crate::wal`]) plus the latest snapshot checkpoint
//!   (`checkpoint-<epoch>.snap`, format in [`crate::snapshot`]), guarded by
//!   an exclusive advisory lock (`LOCK`) so only one store can have the
//!   directory open at a time.
//!
//! ## The durability contract
//!
//! Staged batches are appended to the log *without* fsync; the single fsync
//! per publish lands on the commit record ([`GraphStore::commit`]).  A
//! publish is durable iff its commit record is on disk — recovery resolves
//! each commit against its staged range and discards everything else, so a
//! crash at any byte offset yields either the pre- or the post-publish
//! graph, never a torn hybrid.
//!
//! ## Failure handling
//!
//! A failed append is rolled back by truncating the file to its pre-append
//! length, keeping the record framing intact.  If that rollback — or the
//! commit fsync, whose outcome is unknowable after an error — fails, the
//! store *poisons* itself: every later operation returns an error, and the
//! one recovery path is reopening from disk, which re-derives the truth from
//! what actually reached the device.  The same applies to any failure after
//! a checkpoint has truncated the WAL (re-appending pending staged batches,
//! or the sync that follows): the log no longer matches the engine's staged
//! buffer, so continuing could fsync a commit record recovery cannot
//! resolve — an acknowledged publish that silently vanishes on restart.

use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::wal::{self, CommittedBatch, WalRecord, WAL_MAGIC};
use gps_graph::{CsrGraph, UpdateOp};
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What one [`GraphStore::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitReceipt {
    /// WAL bytes this publish appended (its stage records + commit record).
    pub wal_bytes: u64,
    /// Wall-clock time of the commit-record fsync.
    pub fsync: Duration,
}

/// What one [`GraphStore::checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointReceipt {
    /// Size of the written checkpoint file in bytes.
    pub bytes: u64,
    /// WAL bytes the truncation reclaimed.
    pub truncated_wal_bytes: u64,
    /// Wall-clock time of the whole checkpoint (encode + write + fsync +
    /// WAL truncation).
    pub elapsed: Duration,
}

/// A staged batch paired with the sequence number the store assigned it —
/// what [`GraphStore::checkpoint`] re-appends so staged-but-unpublished work
/// survives the WAL truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedBatch {
    /// The sequence number assigned by [`GraphStore::append_staged`].
    pub seq: u64,
    /// The staged ops, in application order.
    pub ops: Vec<UpdateOp>,
}

/// Everything [`FileStore::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// The latest checkpoint, if one exists.
    pub snapshot: Option<CsrGraph>,
    /// Committed publishes found in the WAL, in commit order (may include
    /// epochs at or below the checkpoint's when a crash interrupted a
    /// checkpoint between the snapshot rename and the WAL truncation —
    /// replay skips those).
    pub batches: Vec<CommittedBatch>,
    /// Bytes of torn or uncommitted WAL tail discarded by the open.
    pub discarded_bytes: u64,
}

/// The persistence seam of `VersionedStore`: where staged batches, commit
/// records and snapshot checkpoints go.
///
/// Implementations must be safe to call from concurrent stagers and one
/// publisher; the engine guarantees that `commit` and `checkpoint` are never
/// called concurrently with each other.
pub trait GraphStore: Send + Sync + std::fmt::Debug {
    /// Appends one staged batch to the log (no fsync), returning the
    /// sequence number assigned to it.
    fn append_staged(&self, ops: &[UpdateOp]) -> Result<u64, StoreError>;

    /// Appends and fsyncs the commit record that makes the publish of
    /// `epoch` durable, covering the staged batches `first_seq..=last_seq`.
    fn commit(
        &self,
        epoch: u64,
        first_seq: u64,
        last_seq: u64,
        ops: u32,
    ) -> Result<CommitReceipt, StoreError>;

    /// Writes `snapshot` as the new checkpoint and truncates the WAL,
    /// re-appending `pending` (batches staged but not yet published) so the
    /// log stays consistent with the engine's staged buffer.
    fn checkpoint(
        &self,
        snapshot: &CsrGraph,
        pending: &[StagedBatch],
    ) -> Result<CheckpointReceipt, StoreError>;

    /// Bytes currently held by the write-ahead log.
    fn wal_bytes(&self) -> u64;

    /// `false` for the in-memory no-op store.
    fn is_durable(&self) -> bool;

    /// Installs pre-bound telemetry handles ([`StoreMetrics`]) the store
    /// records WAL/fsync/checkpoint activity through.  Default: no-op — the
    /// in-memory store has nothing to measure.
    fn set_metrics(&self, _metrics: StoreMetrics) {}
}

/// The zero-cost default store: persists nothing, never fails.
#[derive(Debug, Default)]
pub struct MemoryStore {
    next_seq: AtomicU64,
}

impl MemoryStore {
    /// Creates a fresh in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl GraphStore for MemoryStore {
    fn append_staged(&self, _ops: &[UpdateOp]) -> Result<u64, StoreError> {
        Ok(self.next_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn commit(
        &self,
        _epoch: u64,
        _first_seq: u64,
        _last_seq: u64,
        _ops: u32,
    ) -> Result<CommitReceipt, StoreError> {
        Ok(CommitReceipt::default())
    }

    fn checkpoint(
        &self,
        _snapshot: &CsrGraph,
        _pending: &[StagedBatch],
    ) -> Result<CheckpointReceipt, StoreError> {
        Ok(CheckpointReceipt::default())
    }

    fn wal_bytes(&self) -> u64 {
        0
    }

    fn is_durable(&self) -> bool {
        false
    }
}

#[derive(Debug)]
struct Inner {
    wal: File,
    wal_len: u64,
    next_seq: u64,
    appended_since_commit: u64,
    checkpoint_epoch: Option<u64>,
    poisoned: bool,
    /// Telemetry handles (disabled until [`GraphStore::set_metrics`] binds
    /// them); recorded under this lock, which every I/O path already holds.
    metrics: StoreMetrics,
}

/// A durable store over one directory: `wal.log` plus the latest
/// `checkpoint-<epoch>.snap`.  See the [module docs](self) for the
/// durability contract.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    /// Exclusive advisory lock on the directory (`LOCK`), held for the
    /// store's whole life so a second open — same process or another —
    /// cannot interleave WAL appends with ours.  Released by the OS when
    /// the file closes, so a crashed process never leaves a stale lock.
    _lock: File,
    inner: Mutex<Inner>,
}

fn poisoned() -> StoreError {
    StoreError::Io(std::io::Error::other(
        "store poisoned by an earlier write failure; reopen it from disk",
    ))
}

fn parse_checkpoint_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

impl FileStore {
    /// File name of the write-ahead log inside a store directory.
    pub const WAL_FILE: &'static str = "wal.log";

    /// File name of the advisory lock inside a store directory.
    pub const LOCK_FILE: &'static str = "LOCK";

    /// Path of the WAL inside `dir`.
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join(Self::WAL_FILE)
    }

    /// Path of the checkpoint file for `epoch` inside `dir`.
    pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
        dir.join(format!("checkpoint-{epoch:020}.snap"))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens (creating if needed) the store at `dir` and recovers whatever
    /// it holds: the latest checkpoint, the committed WAL batches in order,
    /// with any torn or uncommitted tail truncated away.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, RecoveredState), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // Take the directory lock before reading anything: a second opener
        // would otherwise race this one's WAL truncation and appends.
        let lock_path = dir.join(Self::LOCK_FILE);
        let lock = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&lock_path)?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Locked { path: lock_path });
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }

        // Sweep leftovers of an interrupted checkpoint write, then find the
        // newest complete checkpoint.
        let mut latest: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            if let Some(epoch) = parse_checkpoint_name(&path) {
                if latest.as_ref().is_none_or(|(e, _)| epoch > *e) {
                    latest = Some((epoch, path));
                }
            }
        }
        let snapshot = match &latest {
            Some((_, path)) => Some(decode_snapshot(&fs::read(path)?)?),
            None => None,
        };

        // Scan the WAL and cut it back to its committed prefix, so appends
        // after recovery extend a well-formed log.
        let wal_path = Self::wal_path(&dir);
        let image = match fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let scan = wal::scan(&image)?;
        // Deliberately not `truncate(true)`: the image was just scanned and
        // the committed prefix is cut back explicitly via `set_len` below.
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&wal_path)?;
        let wal_len = if scan.committed_end == 0 {
            // Fresh log (or a magic write torn by a crash during creation):
            // start over with a clean header.
            wal.set_len(0)?;
            wal.seek(SeekFrom::Start(0))?;
            wal.write_all(WAL_MAGIC)?;
            wal.sync_all()?;
            WAL_MAGIC.len() as u64
        } else {
            if image.len() as u64 > scan.committed_end {
                wal.set_len(scan.committed_end)?;
                wal.sync_all()?;
            }
            scan.committed_end
        };
        wal.seek(SeekFrom::End(0))?;

        let store = Self {
            dir,
            _lock: lock,
            inner: Mutex::new(Inner {
                wal,
                wal_len,
                next_seq: scan.next_seq,
                appended_since_commit: 0,
                checkpoint_epoch: latest.map(|(epoch, _)| epoch),
                poisoned: false,
                metrics: StoreMetrics::disabled(),
            }),
        };
        let recovered = RecoveredState {
            snapshot,
            batches: scan.committed,
            discarded_bytes: (image.len() as u64).saturating_sub(scan.committed_end),
        };
        Ok((store, recovered))
    }

    /// Appends one encoded record, rolling the file back to its pre-append
    /// length on failure so the framing stays intact.
    fn append_record(inner: &mut Inner, record: &WalRecord) -> Result<u64, StoreError> {
        if inner.poisoned {
            return Err(poisoned());
        }
        let bytes = wal::encode_record(record);
        if let Err(e) = inner.wal.write_all(&bytes) {
            if inner.wal.set_len(inner.wal_len).is_err()
                || inner.wal.seek(SeekFrom::End(0)).is_err()
            {
                inner.poisoned = true;
            }
            return Err(e.into());
        }
        inner.wal_len += bytes.len() as u64;
        inner.metrics.wal_bytes.add(bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Re-appends the still-pending staged batches after a checkpoint's WAL
    /// truncation and syncs the rewritten log.  Any failure here leaves the
    /// log out of step with the engine's staged buffer — the caller must
    /// poison the store.
    fn refill_pending(inner: &mut Inner, pending: &[StagedBatch]) -> Result<(), StoreError> {
        for batch in pending {
            let bytes = Self::append_record(
                inner,
                &WalRecord::Stage {
                    seq: batch.seq,
                    ops: batch.ops.clone(),
                },
            )?;
            inner.appended_since_commit += bytes;
        }
        inner.wal.sync_all()?;
        Ok(())
    }
}

impl GraphStore for FileStore {
    fn append_staged(&self, ops: &[UpdateOp]) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        let bytes = Self::append_record(
            &mut inner,
            &WalRecord::Stage {
                seq,
                ops: ops.to_vec(),
            },
        )?;
        inner.next_seq += 1;
        inner.appended_since_commit += bytes;
        Ok(seq)
    }

    fn commit(
        &self,
        epoch: u64,
        first_seq: u64,
        last_seq: u64,
        ops: u32,
    ) -> Result<CommitReceipt, StoreError> {
        let mut inner = self.inner.lock();
        let bytes = Self::append_record(
            &mut inner,
            &WalRecord::Commit {
                epoch,
                first_seq,
                last_seq,
                ops,
            },
        )?;
        inner.appended_since_commit += bytes;
        let started = Instant::now();
        if let Err(e) = inner.wal.sync_all() {
            // Whether the commit record reached the device is unknowable
            // after a failed fsync; only a reopen can re-establish truth.
            inner.poisoned = true;
            return Err(e.into());
        }
        let receipt = CommitReceipt {
            wal_bytes: inner.appended_since_commit,
            fsync: started.elapsed(),
        };
        inner.metrics.fsyncs.inc();
        inner.metrics.fsync_latency.record_duration(receipt.fsync);
        inner.appended_since_commit = 0;
        Ok(receipt)
    }

    fn checkpoint(
        &self,
        snapshot: &CsrGraph,
        pending: &[StagedBatch],
    ) -> Result<CheckpointReceipt, StoreError> {
        let started = Instant::now();
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return Err(poisoned());
        }

        // Write the snapshot to a temp file and rename it into place, so a
        // crash mid-checkpoint never damages the previous checkpoint.
        let encoded = encode_snapshot(snapshot);
        let final_path = Self::checkpoint_path(&self.dir, snapshot.epoch());
        let tmp_path = final_path.with_extension("snap.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&encoded)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all(); // directory fsync: best-effort
        }

        // Everything up to this epoch is superseded: cut the WAL back to its
        // header, then re-append the still-pending staged batches (with
        // their original sequence numbers) so later commits resolve.
        let header = WAL_MAGIC.len() as u64;
        let truncated = inner.wal_len.saturating_sub(header);
        if inner.wal.set_len(header).is_err() || inner.wal.seek(SeekFrom::End(0)).is_err() {
            inner.poisoned = true;
            return Err(poisoned());
        }
        inner.wal_len = header;
        inner.appended_since_commit = 0;
        if let Err(e) = Self::refill_pending(&mut inner, pending) {
            // Past the truncation the log no longer matches the engine's
            // staged buffer: a later commit could fsync a record covering
            // stage records that never made it back, acknowledging a
            // publish recovery cannot resolve.  Only a reopen re-derives
            // truth from disk.
            inner.poisoned = true;
            return Err(e);
        }

        let previous = inner.checkpoint_epoch.replace(snapshot.epoch());
        if let Some(previous) = previous {
            if previous != snapshot.epoch() {
                let _ = fs::remove_file(Self::checkpoint_path(&self.dir, previous));
            }
        }
        let receipt = CheckpointReceipt {
            bytes: encoded.len() as u64,
            truncated_wal_bytes: truncated,
            elapsed: started.elapsed(),
        };
        inner.metrics.checkpoints.inc();
        inner
            .metrics
            .checkpoint_latency
            .record_duration(receipt.elapsed);
        Ok(receipt)
    }

    fn wal_bytes(&self) -> u64 {
        self.inner.lock().wal_len
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn set_metrics(&self, metrics: StoreMetrics) {
        self.inner.lock().metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;
    use std::sync::atomic::AtomicU32;

    static DIRS: AtomicU32 = AtomicU32::new(0);

    fn tmp_dir() -> PathBuf {
        let id = DIRS.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gps-store-test-{}-{id}", std::process::id()))
    }

    fn sample_csr(epoch: u64) -> CsrGraph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "x", b);
        CsrGraph::from_graph(&g).with_epoch(epoch)
    }

    fn add(name: &str) -> Vec<UpdateOp> {
        vec![UpdateOp::AddNode(name.into())]
    }

    #[test]
    fn fresh_store_has_empty_state() {
        let dir = tmp_dir();
        let (store, recovered) = FileStore::open(&dir).unwrap();
        assert!(recovered.snapshot.is_none());
        assert!(recovered.batches.is_empty());
        assert_eq!(recovered.discarded_bytes, 0);
        assert_eq!(store.wal_bytes(), WAL_MAGIC.len() as u64);
        assert!(store.is_durable());
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_batches_survive_reopen_and_uncommitted_do_not() {
        let dir = tmp_dir();
        {
            let (store, _) = FileStore::open(&dir).unwrap();
            let s0 = store.append_staged(&add("X")).unwrap();
            let s1 = store.append_staged(&add("Y")).unwrap();
            store.commit(1, s0, s1, 2).unwrap();
            store.append_staged(&add("LOST")).unwrap(); // never committed
        }
        let (store, recovered) = FileStore::open(&dir).unwrap();
        assert_eq!(recovered.batches.len(), 1);
        assert_eq!(recovered.batches[0].epoch, 1);
        assert_eq!(
            recovered.batches[0].ops,
            vec![UpdateOp::AddNode("X".into()), UpdateOp::AddNode("Y".into())]
        );
        assert!(recovered.discarded_bytes > 0, "the stray stage record");
        // Sequence numbers are not reused after recovery — the scan advances
        // past the discarded record's seq even though its bytes are gone.
        assert_eq!(store.append_staged(&add("Z")).unwrap(), 3);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_preserves_pending_batches() {
        let dir = tmp_dir();
        {
            let (store, _) = FileStore::open(&dir).unwrap();
            let s0 = store.append_staged(&add("X")).unwrap();
            store.commit(1, s0, s0, 1).unwrap();
            let before = store.wal_bytes();
            let pending_seq = store.append_staged(&add("P")).unwrap();
            let receipt = store
                .checkpoint(
                    &sample_csr(1),
                    &[StagedBatch {
                        seq: pending_seq,
                        ops: add("P"),
                    }],
                )
                .unwrap();
            assert!(receipt.truncated_wal_bytes >= before - WAL_MAGIC.len() as u64);
            // The pending record was re-appended and a commit covering it
            // still resolves after reopen.
            store.commit(2, pending_seq, pending_seq, 1).unwrap();
        }
        let (_, recovered) = FileStore::open(&dir).unwrap();
        let snapshot = recovered.snapshot.expect("checkpoint written");
        assert_eq!(snapshot.epoch(), 1);
        assert_eq!(
            recovered.batches.len(),
            1,
            "only the post-checkpoint commit"
        );
        assert_eq!(recovered.batches[0].epoch, 2);
        assert_eq!(recovered.batches[0].ops, add("P"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_checkpoints_replace_older_ones() {
        let dir = tmp_dir();
        {
            let (store, _) = FileStore::open(&dir).unwrap();
            store.checkpoint(&sample_csr(1), &[]).unwrap();
            store.checkpoint(&sample_csr(5), &[]).unwrap();
        }
        assert!(!FileStore::checkpoint_path(&dir, 1).exists());
        assert!(FileStore::checkpoint_path(&dir, 5).exists());
        let (_, recovered) = FileStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap().epoch(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_checkpoint_tmp_files_are_swept() {
        let dir = tmp_dir();
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("checkpoint-00000000000000000003.snap.tmp"),
            b"junk",
        )
        .unwrap();
        let (_, recovered) = FileStore::open(&dir).unwrap();
        assert!(
            recovered.snapshot.is_none(),
            "tmp files are not checkpoints"
        );
        assert!(!dir
            .join("checkpoint-00000000000000000003.snap.tmp")
            .exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_second_open_of_the_same_directory_is_refused() {
        let dir = tmp_dir();
        let (store, _) = FileStore::open(&dir).unwrap();
        match FileStore::open(&dir) {
            Err(StoreError::Locked { path }) => {
                assert_eq!(path, dir.join(FileStore::LOCK_FILE));
            }
            other => panic!("expected StoreError::Locked, got {other:?}"),
        }
        // Dropping the store releases the lock; a reopen succeeds.
        drop(store);
        let (_, recovered) = FileStore::open(&dir).unwrap();
        assert!(recovered.batches.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_store_is_a_no_op() {
        let store = MemoryStore::new();
        assert_eq!(store.append_staged(&add("X")).unwrap(), 0);
        assert_eq!(store.append_staged(&add("Y")).unwrap(), 1);
        assert_eq!(store.commit(1, 0, 1, 2).unwrap(), CommitReceipt::default());
        assert_eq!(
            store.checkpoint(&sample_csr(1), &[]).unwrap(),
            CheckpointReceipt::default()
        );
        assert_eq!(store.wal_bytes(), 0);
        assert!(!store.is_durable());
    }
}
