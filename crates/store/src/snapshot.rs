//! Checkpoint serialization of a compacted [`CsrGraph`] epoch.
//!
//! A checkpoint is one self-contained file:
//!
//! ```text
//! magic "GPSSNAP1" (8)
//! version: u32
//! epoch: u64
//! node_count: u64
//! edge_count: u64
//! label_count: u64
//! arrays_offset: u64            // absolute offset of the packed region
//! node names  (len-prefixed strings, node-id order)
//! label names (len-prefixed strings, label-id order)
//! zero padding to 8-byte alignment
//! fwd_offsets  : (n + 1) × u32  // packed arrays, verbatim CSR layout
//! fwd_entries  : m × (label u32, node u32)
//! fwd_edge_ids : m × u32
//! rev_offsets  : (n + 1) × u32
//! rev_entries  : m × (label u32, node u32)
//! rev_edge_ids : m × u32
//! crc32: u32                    // over everything before it
//! ```
//!
//! The packed region starts 8-byte aligned at a header-recorded offset and is
//! the CSR arrays verbatim (little-endian `u32`s), so a later PR can mmap the
//! region and point the graph at it without a decode pass.  The name→id map
//! and the label interner's reverse index are rebuilt on load (first-bearer
//! semantics, identical to a from-scratch CSR build).
//!
//! Encoding is deterministic — byte-identical snapshots for byte-identical
//! graphs — which is what the crash-injection suite leans on to assert
//! recovered state equals a pre- or post-publish epoch exactly.

use crate::codec::{crc32, put_str, put_u32, put_u64, Cursor};
use crate::error::StoreError;
use gps_graph::csr::CsrEntry;
use gps_graph::{CsrGraph, EdgeId, LabelId, LabelInterner, NodeId};

/// First bytes of every checkpoint file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"GPSSNAP1";

const SNAPSHOT_VERSION: u32 = 1;

/// Serializes a snapshot into the checkpoint format.
pub fn encode_snapshot(csr: &CsrGraph) -> Vec<u8> {
    let n = csr.node_count();
    let m = csr.edge_count();
    let mut out = Vec::with_capacity(64 + n * 16 + m * 24);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, csr.epoch());
    put_u64(&mut out, n as u64);
    put_u64(&mut out, m as u64);
    put_u64(&mut out, csr.label_count() as u64);
    let arrays_offset_pos = out.len();
    put_u64(&mut out, 0); // patched below once the names are written
    for node in csr.nodes() {
        put_str(&mut out, csr.node_name(node));
    }
    for (_, name) in csr.labels().iter() {
        put_str(&mut out, name);
    }
    while out.len() % 8 != 0 {
        out.push(0);
    }
    let arrays_offset = out.len() as u64;
    out[arrays_offset_pos..arrays_offset_pos + 8].copy_from_slice(&arrays_offset.to_le_bytes());
    for &offset in csr.fwd_offsets() {
        put_u32(&mut out, offset);
    }
    for entry in csr.fwd_entries() {
        put_u32(&mut out, entry.label.raw());
        put_u32(&mut out, entry.node.raw());
    }
    for &id in csr.fwd_edge_ids() {
        put_u32(&mut out, id.raw());
    }
    for &offset in csr.rev_offsets() {
        put_u32(&mut out, offset);
    }
    for entry in csr.rev_entries() {
        put_u32(&mut out, entry.label.raw());
        put_u32(&mut out, entry.node.raw());
    }
    for &id in csr.rev_edge_ids() {
        put_u32(&mut out, id.raw());
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn corrupt(cursor: &Cursor<'_>, reason: &str) -> StoreError {
    StoreError::corrupt(cursor.pos() as u64, reason)
}

fn read_offsets(
    cursor: &mut Cursor<'_>,
    n: usize,
    m: usize,
    side: &str,
) -> Result<Vec<u32>, StoreError> {
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(
            cursor
                .u32()
                .ok_or_else(|| corrupt(cursor, &format!("truncated {side} offsets")))?,
        );
    }
    if offsets.first() != Some(&0)
        || offsets.last() != Some(&(m as u32))
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(corrupt(cursor, &format!("inconsistent {side} offsets")));
    }
    Ok(offsets)
}

fn read_entries(
    cursor: &mut Cursor<'_>,
    m: usize,
    n: usize,
    labels: usize,
    side: &str,
) -> Result<Vec<CsrEntry>, StoreError> {
    let mut entries = Vec::with_capacity(m);
    for _ in 0..m {
        let label = cursor
            .u32()
            .ok_or_else(|| corrupt(cursor, &format!("truncated {side} entries")))?;
        let node = cursor
            .u32()
            .ok_or_else(|| corrupt(cursor, &format!("truncated {side} entries")))?;
        if label as usize >= labels || node as usize >= n {
            return Err(corrupt(cursor, &format!("{side} entry out of range")));
        }
        entries.push(CsrEntry {
            label: LabelId::new(label),
            node: NodeId::new(node),
        });
    }
    Ok(entries)
}

fn read_edge_ids(cursor: &mut Cursor<'_>, m: usize, side: &str) -> Result<Vec<EdgeId>, StoreError> {
    let mut ids = Vec::with_capacity(m);
    for _ in 0..m {
        ids.push(EdgeId::new(cursor.u32().ok_or_else(|| {
            corrupt(cursor, &format!("truncated {side} edge ids"))
        })?));
    }
    Ok(ids)
}

/// Deserializes a checkpoint, validating the checksum and the structural
/// invariants of the packed arrays before rebuilding the snapshot.
pub fn decode_snapshot(bytes: &[u8]) -> Result<CsrGraph, StoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::corrupt(0, "bad checkpoint magic"));
    }
    let body_len = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_len..].try_into().expect("four bytes"));
    if crc32(&bytes[..body_len]) != stored_crc {
        return Err(StoreError::corrupt(
            body_len as u64,
            "checkpoint checksum mismatch",
        ));
    }
    let mut cursor = Cursor::new(&bytes[..body_len]);
    cursor.take(SNAPSHOT_MAGIC.len()).expect("checked above");
    let version = cursor
        .u32()
        .ok_or_else(|| corrupt(&cursor, "truncated header"))?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(&cursor, &format!("unsupported version {version}")));
    }
    let epoch = cursor
        .u64()
        .ok_or_else(|| corrupt(&cursor, "truncated header"))?;
    let n = cursor
        .u64()
        .ok_or_else(|| corrupt(&cursor, "truncated header"))? as usize;
    let m = cursor
        .u64()
        .ok_or_else(|| corrupt(&cursor, "truncated header"))? as usize;
    let label_count = cursor
        .u64()
        .ok_or_else(|| corrupt(&cursor, "truncated header"))? as usize;
    let arrays_offset = cursor
        .u64()
        .ok_or_else(|| corrupt(&cursor, "truncated header"))? as usize;
    if n > u32::MAX as usize || m > u32::MAX as usize || label_count > u32::MAX as usize {
        return Err(corrupt(&cursor, "count exceeds the 32-bit id space"));
    }

    let mut node_names = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        node_names.push(
            cursor
                .string()
                .ok_or_else(|| corrupt(&cursor, "truncated node names"))?,
        );
    }
    let mut labels = LabelInterner::new();
    for _ in 0..label_count {
        let name = cursor
            .string()
            .ok_or_else(|| corrupt(&cursor, "truncated label names"))?;
        labels.intern(&name);
    }
    if labels.len() != label_count {
        return Err(corrupt(&cursor, "duplicate label names"));
    }
    cursor
        .seek_to(arrays_offset)
        .ok_or_else(|| corrupt(&cursor, "packed-array offset out of bounds"))?;

    // Validate the packed-region length before any preallocation: `n` and
    // `m` are header-supplied, so a crafted (or CRC-colliding) file could
    // otherwise request multi-gigabyte `with_capacity` calls — an abort,
    // not a typed error — before the element reads ever fail.
    let packed_len = 2 * ((n as u64 + 1) * 4 + m as u64 * 12);
    if cursor.remaining() as u64 != packed_len {
        return Err(corrupt(&cursor, "packed-array region length mismatch"));
    }

    let fwd_offsets = read_offsets(&mut cursor, n, m, "forward")?;
    let fwd_entries = read_entries(&mut cursor, m, n, label_count, "forward")?;
    let fwd_edge_ids = read_edge_ids(&mut cursor, m, "forward")?;
    let rev_offsets = read_offsets(&mut cursor, n, m, "reverse")?;
    let rev_entries = read_entries(&mut cursor, m, n, label_count, "reverse")?;
    let rev_edge_ids = read_edge_ids(&mut cursor, m, "reverse")?;
    if !cursor.is_empty() {
        return Err(corrupt(&cursor, "trailing bytes after the packed arrays"));
    }

    Ok(CsrGraph::from_raw_parts(
        node_names,
        labels,
        fwd_offsets,
        fwd_entries,
        fwd_edge_ids,
        rev_offsets,
        rev_entries,
        rev_edge_ids,
        epoch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::{Graph, GraphBackend};

    fn sample() -> CsrGraph {
        let mut g = Graph::new();
        let a = g.add_node("N1");
        let b = g.add_node("N4");
        let c = g.add_node("C1");
        g.add_edge_by_name(a, "tram", b);
        g.add_edge_by_name(b, "cinema", c);
        g.add_edge_by_name(a, "bus", c);
        CsrGraph::from_graph(&g)
    }

    fn assert_same(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.label_count(), b.label_count());
        for node in a.nodes() {
            assert_eq!(a.node_name(node), b.node_name(node));
            assert_eq!(a.out(node), b.out(node));
            assert_eq!(a.inc(node), b.inc(node));
            let name = a.node_name(node);
            assert_eq!(a.node_by_name(name), b.node_by_name(name));
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let csr = sample();
        let bytes = encode_snapshot(&csr);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_same(&csr, &decoded);
        // Deterministic: re-encoding the decoded snapshot is byte-identical.
        assert_eq!(encode_snapshot(&decoded), bytes);
    }

    #[test]
    fn empty_graph_round_trips() {
        let csr = CsrGraph::from_graph(&Graph::new());
        let decoded = decode_snapshot(&encode_snapshot(&csr)).unwrap();
        assert_eq!(decoded.node_count(), 0);
        assert_eq!(decoded.edge_count(), 0);
    }

    #[test]
    fn epoch_is_preserved() {
        let csr = sample().with_epoch(17);
        let decoded = decode_snapshot(&encode_snapshot(&csr)).unwrap();
        assert_eq!(decoded.epoch(), 17);
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let bytes = encode_snapshot(&sample());
        assert!(matches!(
            decode_snapshot(&bytes[..bytes.len() - 1]),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(decode_snapshot(b"short").is_err());
        let mut flipped = bytes.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&flipped),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn a_huge_declared_edge_count_is_rejected_before_allocating() {
        // Patch the header's edge count to u32::MAX and re-stamp the CRC:
        // the decoder must return Corrupt without attempting the ~48 GB of
        // preallocation the count implies.
        let mut bytes = encode_snapshot(&sample());
        let edge_count_at = SNAPSHOT_MAGIC.len() + 4 + 8 + 8;
        bytes[edge_count_at..edge_count_at + 8].copy_from_slice(&(u32::MAX as u64).to_le_bytes());
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn decoded_snapshot_serves_as_a_backend() {
        let csr = sample();
        let decoded = decode_snapshot(&encode_snapshot(&csr)).unwrap();
        let n1 = decoded.node_by_name("N1").unwrap();
        assert_eq!(GraphBackend::out_degree(&decoded, n1), 2);
        let edges: Vec<_> = GraphBackend::out_edges(&decoded, n1).collect();
        let expected: Vec<_> = GraphBackend::out_edges(&csr, n1).collect();
        assert_eq!(edges, expected, "edge ids survive the round trip");
    }
}
