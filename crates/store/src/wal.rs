//! The write-ahead log format: length-prefixed, checksummed records.
//!
//! A WAL file is the 8-byte magic [`WAL_MAGIC`] followed by a sequence of
//! records, each framed as
//!
//! ```text
//! [body length: u32 LE][body][crc32: u32 LE]
//! ```
//!
//! where the checksum covers the length prefix *and* the body, so a
//! single-bit flip anywhere in a record — including its framing — is
//! detected.  The body is a kind byte plus a kind-specific payload:
//!
//! * **Stage** — one staged batch of name-addressed [`UpdateOp`]s, tagged
//!   with a monotonically increasing *sequence number*.  Stage records are
//!   appended without fsync; they carry no durability on their own.
//! * **Commit** — the durability point of one publish: the epoch it
//!   produced and the inclusive sequence-number range of the stage records
//!   it covers.  A publish is durable iff its commit record is on disk.
//!
//! Recovery ([`scan`]) walks the records in order, holding staged batches in
//! a pending set keyed by sequence number.  A commit record resolves its
//! range against the pending set; stage records never referenced by a commit
//! (a publish that failed validation, or ops staged right before the crash)
//! are simply discarded.  The first torn or checksum-invalid record ends the
//! scan: everything after it is an unreachable tail, truncated on reopen.

use crate::codec::{crc32, put_str, put_u32, put_u64, Cursor};
use crate::error::StoreError;
use gps_graph::UpdateOp;
use std::collections::BTreeMap;

/// First bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"GPSWAL1\n";

const KIND_STAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

const OP_ADD_NODE: u8 = 0;
const OP_ADD_EDGE: u8 = 1;
const OP_REMOVE_EDGE: u8 = 2;

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A staged batch of update ops (appended at stage time, not fsynced).
    Stage {
        /// The batch's sequence number (unique within the log).
        seq: u64,
        /// The staged ops, in application order.
        ops: Vec<UpdateOp>,
    },
    /// The fsynced durability point of one publish.
    Commit {
        /// The epoch the publish produced.
        epoch: u64,
        /// First stage sequence number covered by this publish (inclusive).
        first_seq: u64,
        /// Last stage sequence number covered by this publish (inclusive).
        last_seq: u64,
        /// Total ops across the covered stage records (informational).
        ops: u32,
    },
}

fn encode_op(out: &mut Vec<u8>, op: &UpdateOp) {
    match op {
        UpdateOp::AddNode(name) => {
            out.push(OP_ADD_NODE);
            put_str(out, name);
        }
        UpdateOp::AddEdge {
            source,
            label,
            target,
        } => {
            out.push(OP_ADD_EDGE);
            put_str(out, source);
            put_str(out, label);
            put_str(out, target);
        }
        UpdateOp::RemoveEdge {
            source,
            label,
            target,
        } => {
            out.push(OP_REMOVE_EDGE);
            put_str(out, source);
            put_str(out, label);
            put_str(out, target);
        }
    }
}

fn decode_op(cursor: &mut Cursor<'_>) -> Option<UpdateOp> {
    match cursor.u8()? {
        OP_ADD_NODE => Some(UpdateOp::AddNode(cursor.string()?)),
        OP_ADD_EDGE => Some(UpdateOp::AddEdge {
            source: cursor.string()?,
            label: cursor.string()?,
            target: cursor.string()?,
        }),
        OP_REMOVE_EDGE => Some(UpdateOp::RemoveEdge {
            source: cursor.string()?,
            label: cursor.string()?,
            target: cursor.string()?,
        }),
        _ => None,
    }
}

/// Encodes one record with its length prefix and checksum.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    match record {
        WalRecord::Stage { seq, ops } => {
            body.push(KIND_STAGE);
            put_u64(&mut body, *seq);
            put_u32(&mut body, ops.len() as u32);
            for op in ops {
                encode_op(&mut body, op);
            }
        }
        WalRecord::Commit {
            epoch,
            first_seq,
            last_seq,
            ops,
        } => {
            body.push(KIND_COMMIT);
            put_u64(&mut body, *epoch);
            put_u64(&mut body, *first_seq);
            put_u64(&mut body, *last_seq);
            put_u32(&mut body, *ops);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 8);
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decodes the record starting at `bytes[0]`, returning it and the number of
/// bytes it occupied.  Returns `None` — never panics — when the record is
/// truncated, fails its checksum, or is structurally invalid (treated by the
/// scanner as a torn tail).
pub fn decode_record(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("four bytes")) as usize;
    let total = len.checked_add(8)?;
    if bytes.len() < total {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[total - 4..total].try_into().expect("four bytes"));
    if crc32(&bytes[..total - 4]) != stored_crc {
        return None;
    }
    let mut cursor = Cursor::new(&bytes[4..total - 4]);
    let record = match cursor.u8()? {
        KIND_STAGE => {
            let seq = cursor.u64()?;
            let count = cursor.u32()? as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                ops.push(decode_op(&mut cursor)?);
            }
            WalRecord::Stage { seq, ops }
        }
        KIND_COMMIT => WalRecord::Commit {
            epoch: cursor.u64()?,
            first_seq: cursor.u64()?,
            last_seq: cursor.u64()?,
            ops: cursor.u32()?,
        },
        _ => return None,
    };
    if !cursor.is_empty() {
        return None; // trailing garbage inside the body
    }
    Some((record, total))
}

/// One committed publish recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedBatch {
    /// The epoch the publish produced.
    pub epoch: u64,
    /// Every op of the publish, in application order.
    pub ops: Vec<UpdateOp>,
}

/// What a full scan of a WAL file recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The committed publishes, in commit order.
    pub committed: Vec<CommittedBatch>,
    /// Byte length of the committed prefix (magic through the last commit
    /// record) — the offset the file is truncated to on reopen.
    pub committed_end: u64,
    /// One past the highest stage sequence number observed, so appends after
    /// recovery never reuse a sequence number still present in the file.
    pub next_seq: u64,
}

/// Scans a whole WAL image, resolving commit records against their staged
/// batches.  An empty image — or a strict prefix of the magic, a write torn
/// during log creation — is a fresh log (`committed_end` 0); a mismatched
/// magic is [`StoreError::Corrupt`].  Torn or checksum-invalid records end
/// the scan — they and everything after them are discarded as an
/// unreachable tail.
pub fn scan(bytes: &[u8]) -> Result<WalScan, StoreError> {
    if bytes.len() < WAL_MAGIC.len() {
        if !WAL_MAGIC.starts_with(bytes) {
            return Err(StoreError::corrupt(0, "bad write-ahead log magic"));
        }
        return Ok(WalScan {
            committed: Vec::new(),
            committed_end: 0,
            next_seq: 0,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::corrupt(0, "bad write-ahead log magic"));
    }
    let mut pos = WAL_MAGIC.len();
    let mut committed_end = pos as u64;
    let mut committed = Vec::new();
    let mut pending: BTreeMap<u64, Vec<UpdateOp>> = BTreeMap::new();
    let mut next_seq = 0u64;
    while pos < bytes.len() {
        let Some((record, consumed)) = decode_record(&bytes[pos..]) else {
            break; // torn tail: discard from here
        };
        match record {
            WalRecord::Stage { seq, ops } => {
                next_seq = next_seq.max(seq + 1);
                pending.insert(seq, ops);
            }
            WalRecord::Commit {
                epoch,
                first_seq,
                last_seq,
                ops: _,
            } => {
                if first_seq > last_seq {
                    break; // structurally impossible: treat as torn
                }
                // Checked: a CRC-colliding record claiming the whole u64
                // space (first 0, last u64::MAX) must not overflow-panic.
                let Some(span) = last_seq
                    .checked_sub(first_seq)
                    .and_then(|d| d.checked_add(1))
                else {
                    break;
                };
                let covered: Vec<u64> = pending
                    .range(first_seq..=last_seq)
                    .map(|(&s, _)| s)
                    .collect();
                if covered.len() as u64 != span {
                    // The commit references stage records the log does not
                    // hold — the file is inconsistent from here on.
                    break;
                }
                let mut ops = Vec::new();
                for seq in covered {
                    ops.extend(pending.remove(&seq).expect("just ranged"));
                }
                committed.push(CommittedBatch { epoch, ops });
                committed_end = (pos + consumed) as u64;
            }
        }
        pos += consumed;
    }
    Ok(WalScan {
        committed,
        committed_end,
        next_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(seq: u64, ops: Vec<UpdateOp>) -> Vec<u8> {
        encode_record(&WalRecord::Stage { seq, ops })
    }

    fn commit(epoch: u64, first: u64, last: u64) -> Vec<u8> {
        encode_record(&WalRecord::Commit {
            epoch,
            first_seq: first,
            last_seq: last,
            ops: 0,
        })
    }

    fn ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::AddNode("C9".into()),
            UpdateOp::AddEdge {
                source: "N5".into(),
                label: "cinema".into(),
                target: "C9".into(),
            },
            UpdateOp::RemoveEdge {
                source: "N2".into(),
                label: "restaurant".into(),
                target: "R1".into(),
            },
        ]
    }

    fn log(records: &[Vec<u8>]) -> Vec<u8> {
        let mut out = WAL_MAGIC.to_vec();
        for r in records {
            out.extend_from_slice(r);
        }
        out
    }

    #[test]
    fn record_round_trips() {
        for record in [
            WalRecord::Stage { seq: 7, ops: ops() },
            WalRecord::Stage {
                seq: 0,
                ops: Vec::new(),
            },
            WalRecord::Commit {
                epoch: 3,
                first_seq: 5,
                last_seq: 9,
                ops: 42,
            },
        ] {
            let bytes = encode_record(&record);
            let (decoded, consumed) = decode_record(&bytes).expect("valid record");
            assert_eq!(decoded, record);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn scan_resolves_commits_against_their_stage_range() {
        let image = log(&[
            stage(0, ops()),
            stage(1, vec![UpdateOp::AddNode("X".into())]),
            commit(1, 0, 1),
            stage(2, vec![UpdateOp::AddNode("Y".into())]),
            commit(2, 2, 2),
        ]);
        let scan = scan(&image).unwrap();
        assert_eq!(scan.committed.len(), 2);
        assert_eq!(scan.committed[0].epoch, 1);
        assert_eq!(scan.committed[0].ops.len(), 4);
        assert_eq!(scan.committed[1].epoch, 2);
        assert_eq!(scan.committed_end, image.len() as u64);
        assert_eq!(scan.next_seq, 3);
    }

    #[test]
    fn uncommitted_and_unreferenced_stage_records_are_discarded() {
        // seq 0 belongs to a publish that failed validation (no commit ever
        // references it); seq 2 was staged right before the crash.
        let image = log(&[
            stage(0, ops()),
            stage(1, vec![UpdateOp::AddNode("X".into())]),
            commit(1, 1, 1),
            stage(2, vec![UpdateOp::AddNode("Y".into())]),
        ]);
        let scan = scan(&image).unwrap();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.committed[0].ops, vec![UpdateOp::AddNode("X".into())]);
        let tail = stage(2, vec![UpdateOp::AddNode("Y".into())]);
        assert_eq!(
            scan.committed_end,
            (image.len() - tail.len()) as u64,
            "the uncommitted tail is not part of the committed prefix"
        );
    }

    #[test]
    fn a_commit_with_an_unresolvable_range_ends_the_scan() {
        let image = log(&[stage(0, ops()), commit(1, 0, 1), commit(2, 5, 4)]);
        let scan = scan(&image).unwrap();
        assert!(
            scan.committed.is_empty(),
            "commit(0..=1) covers a missing seq"
        );
    }

    #[test]
    fn a_commit_spanning_the_whole_u64_space_is_torn_not_a_panic() {
        // A valid-CRC record whose range length (u64::MAX - 0 + 1) does not
        // fit in u64: the scan must stop gracefully, never overflow.
        let image = log(&[stage(0, ops()), commit(1, 0, u64::MAX)]);
        let scan = scan(&image).unwrap();
        assert!(scan.committed.is_empty());
        assert_eq!(scan.committed_end, WAL_MAGIC.len() as u64);
    }

    #[test]
    fn torn_tails_are_discarded_at_every_truncation_point() {
        let full = log(&[stage(0, ops()), commit(1, 0, 0)]);
        for cut in WAL_MAGIC.len()..full.len() {
            let scan = scan(&full[..cut]).unwrap();
            assert!(scan.committed.is_empty(), "cut at {cut}");
            assert_eq!(scan.committed_end, WAL_MAGIC.len() as u64);
        }
        assert_eq!(scan(&full).unwrap().committed.len(), 1);
    }

    #[test]
    fn bad_magic_is_corrupt_but_a_torn_magic_is_fresh() {
        assert!(matches!(
            scan(b"NOTAWAL!rest"),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
        assert!(matches!(scan(b"GXS"), Err(StoreError::Corrupt { .. })));
        // A write torn mid-magic (crash during log creation) is a fresh log.
        let fresh = scan(b"GPS").unwrap();
        assert!(fresh.committed.is_empty());
        assert_eq!(fresh.committed_end, 0);
    }
}
