//! Pre-bound telemetry handles for the durability layer.
//!
//! [`StoreMetrics`] is resolved once against a
//! [`MetricsRegistry`](gps_telemetry::MetricsRegistry) and installed into a
//! [`GraphStore`](crate::GraphStore) through
//! [`GraphStore::set_metrics`](crate::GraphStore::set_metrics) (a default
//! no-op — [`MemoryStore`](crate::MemoryStore) ignores it).  A
//! [`FileStore`](crate::FileStore) then records WAL append volume, commit
//! fsyncs and checkpoint durations as they happen, under the same lock its
//! I/O already holds.

use gps_telemetry::{Counter, Histogram, MetricsRegistry};

/// The durability metric family (`gps_store_*`).
#[derive(Debug, Clone, Default)]
pub struct StoreMetrics {
    /// `gps_store_wal_bytes_total` — bytes appended to the write-ahead log
    /// (stage records, commit records and post-checkpoint re-appends alike).
    pub wal_bytes: Counter,
    /// `gps_store_fsyncs_total` — commit-record fsyncs performed.
    pub fsyncs: Counter,
    /// `gps_store_fsync_latency_ns` — wall time of one commit-record fsync.
    pub fsync_latency: Histogram,
    /// `gps_store_checkpoints_total` — snapshot checkpoints completed.
    pub checkpoints: Counter,
    /// `gps_store_checkpoint_latency_ns` — wall time of one whole checkpoint
    /// (encode + write + fsync + rename + WAL truncation + refill).
    pub checkpoint_latency: Histogram,
}

impl StoreMetrics {
    /// All-disabled handles: every recording is one branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Binds the `gps_store_*` family in `registry` (disabled handles when
    /// the registry is disabled).
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            wal_bytes: registry.counter("gps_store_wal_bytes_total"),
            fsyncs: registry.counter("gps_store_fsyncs_total"),
            fsync_latency: registry.histogram("gps_store_fsync_latency_ns"),
            checkpoints: registry.counter("gps_store_checkpoints_total"),
            checkpoint_latency: registry.histogram("gps_store_checkpoint_latency_ns"),
        }
    }
}
