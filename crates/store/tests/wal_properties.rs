//! Property tests for the durable-store codecs.
//!
//! Seeded-random (hence reproducible) checks of the two invariants the
//! crash-recovery contract leans on:
//!
//! * **Round-trip fidelity** — any sequence of [`UpdateOp`]s encoded as WAL
//!   records (stage batches plus the commits that cover them) scans back to
//!   exactly the committed publishes, in order, with orphaned stage batches
//!   discarded;
//! * **Corruption detection** — flipping any single bit of an encoded
//!   record makes [`decode_record`] reject it (return `None`), and never
//!   panic; the same holds for the snapshot codec.

use gps_graph::{CsrGraph, Graph, UpdateOp};
use gps_store::wal::{decode_record, encode_record, scan};
use gps_store::{decode_snapshot, encode_snapshot, WalRecord, WAL_MAGIC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names with empty, ASCII and multi-byte UTF-8 cases.
fn arbitrary_name(rng: &mut StdRng) -> String {
    const ALPHABET: [char; 12] = ['a', 'b', 'Z', '0', '_', ' ', ':', 'é', 'λ', '→', '電', '🚌'];
    let len = rng.gen_range(0..8usize);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

fn arbitrary_op(rng: &mut StdRng) -> UpdateOp {
    match rng.gen_range(0..3u32) {
        0 => UpdateOp::AddNode(arbitrary_name(rng)),
        1 => UpdateOp::AddEdge {
            source: arbitrary_name(rng),
            label: arbitrary_name(rng),
            target: arbitrary_name(rng),
        },
        _ => UpdateOp::RemoveEdge {
            source: arbitrary_name(rng),
            label: arbitrary_name(rng),
            target: arbitrary_name(rng),
        },
    }
}

fn arbitrary_ops(rng: &mut StdRng, max: usize) -> Vec<UpdateOp> {
    (0..rng.gen_range(0..=max))
        .map(|_| arbitrary_op(rng))
        .collect()
}

#[test]
fn records_round_trip_for_arbitrary_op_sequences() {
    let mut rng = StdRng::seed_from_u64(0xD01CE);
    for trial in 0..200 {
        let record = if rng.gen_bool(0.7) {
            WalRecord::Stage {
                seq: rng.gen_range(0..u64::MAX / 2),
                ops: arbitrary_ops(&mut rng, 6),
            }
        } else {
            let first = rng.gen_range(0..1_000_000u64);
            WalRecord::Commit {
                epoch: rng.gen_range(1..u64::MAX / 2),
                first_seq: first,
                last_seq: first + rng.gen_range(0..16u64),
                ops: rng.gen_range(0..64u32),
            }
        };
        let bytes = encode_record(&record);
        let (decoded, consumed) =
            decode_record(&bytes).unwrap_or_else(|| panic!("trial {trial}: undecodable"));
        assert_eq!(consumed, bytes.len(), "trial {trial}");
        assert_eq!(decoded, record, "trial {trial}");
        // A record decodes identically with trailing garbage after it.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 13]);
        let (decoded, consumed) = decode_record(&padded).unwrap();
        assert_eq!(consumed, bytes.len(), "trial {trial}");
        assert_eq!(decoded, record, "trial {trial}");
    }
}

#[test]
fn scans_recover_exactly_the_committed_publishes() {
    let mut rng = StdRng::seed_from_u64(0x5CA4);
    for trial in 0..50 {
        let mut log = WAL_MAGIC.to_vec();
        let mut next_seq = 0u64;
        let mut committed_end = log.len();
        let mut expected: Vec<(u64, Vec<UpdateOp>)> = Vec::new();
        let publishes = rng.gen_range(0..6usize);
        for epoch in 1..=publishes as u64 {
            // A publish is 1..=3 staged batches then one commit covering them.
            let first_seq = next_seq;
            let mut ops_of_publish = Vec::new();
            for _ in 0..rng.gen_range(1..=3usize) {
                let ops = arbitrary_ops(&mut rng, 4);
                ops_of_publish.extend(ops.iter().cloned());
                log.extend_from_slice(&encode_record(&WalRecord::Stage { seq: next_seq, ops }));
                next_seq += 1;
            }
            let last_seq = next_seq - 1;
            expected.push((epoch, ops_of_publish.clone()));
            log.extend_from_slice(&encode_record(&WalRecord::Commit {
                epoch,
                first_seq,
                last_seq,
                ops: ops_of_publish.len() as u32,
            }));
            committed_end = log.len();
            // Sometimes a stale batch from a failed publish follows; the next
            // commit's seq range skips over it (its seq is consumed but its
            // ops never land in a committed publish).
            if rng.gen_bool(0.3) {
                log.extend_from_slice(&encode_record(&WalRecord::Stage {
                    seq: next_seq,
                    ops: arbitrary_ops(&mut rng, 4),
                }));
                next_seq += 1;
            }
        }
        // An orphaned stage batch after the last commit is scanned but
        // discarded (no commit references it).
        if rng.gen_bool(0.5) {
            log.extend_from_slice(&encode_record(&WalRecord::Stage {
                seq: next_seq,
                ops: arbitrary_ops(&mut rng, 4),
            }));
        }
        let scanned = scan(&log).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert_eq!(scanned.committed_end, committed_end as u64, "trial {trial}");
        assert_eq!(scanned.committed.len(), expected.len(), "trial {trial}");
        for (batch, (epoch, ops)) in scanned.committed.iter().zip(&expected) {
            assert_eq!(batch.epoch, *epoch, "trial {trial}");
            if !ops.is_empty() {
                assert_eq!(&batch.ops, ops, "trial {trial}");
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_without_panicking() {
    let mut rng = StdRng::seed_from_u64(0xB17);
    for trial in 0..20 {
        let record = WalRecord::Stage {
            seq: rng.gen_range(0..1_000u64),
            ops: arbitrary_ops(&mut rng, 4),
        };
        let bytes = encode_record(&record);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    decode_record(&flipped).is_none(),
                    "trial {trial}: flip of bit {bit} at byte {byte} went undetected"
                );
            }
        }
    }
}

#[test]
fn snapshots_round_trip_and_reject_bit_flips() {
    let mut rng = StdRng::seed_from_u64(0x5AA7);
    for trial in 0..20 {
        let mut graph = Graph::new();
        let nodes: Vec<_> = (0..rng.gen_range(1..20usize))
            .map(|i| graph.add_node(format!("n{i}")))
            .collect();
        for _ in 0..rng.gen_range(0..40usize) {
            let source = nodes[rng.gen_range(0..nodes.len())];
            let target = nodes[rng.gen_range(0..nodes.len())];
            let label = format!("l{}", rng.gen_range(0..5u32));
            graph.add_edge_by_name(source, &label, target);
        }
        let snapshot = CsrGraph::from_graph(&graph).with_epoch(rng.gen_range(0..1_000u64));
        let bytes = encode_snapshot(&snapshot);
        let decoded = decode_snapshot(&bytes).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert_eq!(
            encode_snapshot(&decoded),
            bytes,
            "trial {trial}: re-encoding must be byte-identical"
        );
        // One random flip per trial (the full cross product is covered for
        // WAL records above; snapshots reuse the same checksum).
        let byte = rng.gen_range(0..bytes.len());
        let mut flipped = bytes.clone();
        flipped[byte] ^= 1 << rng.gen_range(0..8u32);
        assert!(
            decode_snapshot(&flipped).is_err(),
            "trial {trial}: flip at byte {byte} went undetected"
        );
    }
}
