//! Property-based and cross-cutting tests of the dataset generators: seeds
//! are reproducible, sizes are honoured, generated workloads are usable by
//! the query engine, and the structural traits each generator promises
//! (connectivity, hubs, facilities as sinks) hold across the parameter space.

use gps_datasets::biological::{self, BiologicalConfig};
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::synthetic::{self, SyntheticConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_datasets::{queries, Workload};
use gps_graph::stats::GraphStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn transport_generator_honours_size_and_connectivity() {
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..16 {
        let neighborhoods = rng.gen_range(4usize..60);
        let seed = rng.gen_range(0u64..1000);
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, seed));
        assert!(net.neighborhoods.len() >= neighborhoods);
        assert_eq!(
            net.graph.node_count(),
            net.neighborhoods.len() + net.facilities.len()
        );
        let stats = GraphStats::compute(&net.graph);
        assert_eq!(
            stats.weak_component_count, 1,
            "transport networks are connected"
        );
        // Facilities are sinks with exactly one incoming edge.
        for &f in &net.facilities {
            assert_eq!(net.graph.out_degree(f), 0);
            assert_eq!(net.graph.in_degree(f), 1);
        }
    }
}

#[test]
fn synthetic_generator_is_seed_deterministic() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..16 {
        let nodes = rng.gen_range(1usize..80);
        let seed = rng.gen_range(0u64..1000);
        let a = synthetic::generate(&SyntheticConfig::with_nodes(nodes, seed));
        let b = synthetic::generate(&SyntheticConfig::with_nodes(nodes, seed));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(
            a.edges().map(|(_, e)| e).collect::<Vec<_>>(),
            b.edges().map(|(_, e)| e).collect::<Vec<_>>()
        );
    }
}

#[test]
fn scale_free_generator_produces_connected_graphs() {
    let mut rng = StdRng::seed_from_u64(203);
    for _ in 0..16 {
        let nodes = rng.gen_range(2usize..120);
        let seed = rng.gen_range(0u64..1000);
        let graph = scale_free::generate(&ScaleFreeConfig {
            nodes,
            seed,
            ..ScaleFreeConfig::default()
        });
        assert_eq!(graph.node_count(), nodes);
        let stats = GraphStats::compute(&graph);
        assert_eq!(stats.weak_component_count, 1);
    }
}

#[test]
fn biological_generator_keeps_all_interaction_labels() {
    let mut rng = StdRng::seed_from_u64(204);
    for _ in 0..16 {
        let entities = rng.gen_range(5usize..100);
        let seed = rng.gen_range(0u64..1000);
        let graph = biological::generate(&BiologicalConfig::with_entities(entities, seed));
        assert_eq!(graph.node_count(), entities);
        assert_eq!(graph.label_count(), biological::INTERACTION_LABELS.len());
    }
}

#[test]
fn every_workload_query_parses_and_evaluates() {
    for workload in Workload::default_suite(5) {
        for query in &workload.queries.queries {
            // Evaluation must not panic and facility-free answers must stay
            // within the graph.
            let answer = query.evaluate(&workload.graph);
            for node in answer.nodes() {
                assert!(workload.graph.contains_node(node), "{}", workload.name);
            }
        }
    }
}

#[test]
fn standard_workload_queries_have_increasing_size_on_every_family() {
    for workload in [
        Workload::synthetic(60, 2),
        Workload::scale_free(60, 2),
        Workload::biological(60, 2),
    ] {
        let sizes: Vec<usize> = workload
            .queries
            .queries
            .iter()
            .map(|q| q.regex().size())
            .collect();
        for window in sizes.windows(2) {
            assert!(
                window[0] <= window[1],
                "{}: sizes {sizes:?} not monotone",
                workload.name
            );
        }
    }
}

#[test]
fn transport_workload_contains_the_motivating_query() {
    let net = transport::generate(&TransportConfig::default());
    let workload = queries::transport_workload(&net.graph);
    let motivating = workload
        .queries
        .iter()
        .any(|q| q.display(net.graph.labels()) == "(tram+bus)*·cinema");
    assert!(motivating);
}

#[test]
fn size_sweep_workloads_are_strictly_larger() {
    let sweep = Workload::size_sweep(7);
    for window in sweep.windows(2) {
        assert!(window[0].graph.node_count() < window[1].graph.node_count());
        assert!(window[0].graph.edge_count() < window[1].graph.edge_count());
    }
}
