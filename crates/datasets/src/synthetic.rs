//! Uniform random edge-labeled graphs (Erdős–Rényi style).
//!
//! These are the synthetic datasets of the companion research paper's
//! evaluation: `n` nodes, an expected out-degree `d`, and labels drawn
//! uniformly from an alphabet of size `k`.

use gps_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the uniform random graph generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Expected out-degree of every node.
    pub mean_out_degree: f64,
    /// Alphabet size (labels are named `a0`, `a1`, …).
    pub alphabet_size: usize,
    /// Whether self loops are allowed.
    pub allow_self_loops: bool,
    /// Seed for the random choices.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            nodes: 100,
            mean_out_degree: 2.5,
            alphabet_size: 4,
            allow_self_loops: false,
            seed: 11,
        }
    }
}

impl SyntheticConfig {
    /// Convenience constructor for size sweeps.
    pub fn with_nodes(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            seed,
            ..Self::default()
        }
    }
}

/// Generates a uniform random edge-labeled graph.
pub fn generate(config: &SyntheticConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = Graph::with_capacity(
        config.nodes,
        (config.nodes as f64 * config.mean_out_degree) as usize,
    );
    let labels: Vec<_> = (0..config.alphabet_size.max(1))
        .map(|i| graph.label(&format!("a{i}")))
        .collect();
    let nodes = graph.add_nodes("v", config.nodes);
    if config.nodes == 0 {
        return graph;
    }
    let edge_count = (config.nodes as f64 * config.mean_out_degree).round() as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = edge_count * 10 + 100;
    while added < edge_count && attempts < max_attempts {
        attempts += 1;
        let source = nodes[rng.gen_range(0..nodes.len())];
        let target = nodes[rng.gen_range(0..nodes.len())];
        if !config.allow_self_loops && source == target {
            continue;
        }
        let label = labels[rng.gen_range(0..labels.len())];
        graph.add_edge_dedup(source, label, target);
        added += 1;
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::stats::GraphStats;

    #[test]
    fn generates_requested_node_count() {
        let g = generate(&SyntheticConfig::with_nodes(50, 3));
        assert_eq!(g.node_count(), 50);
        assert!(g.edge_count() > 0);
        assert_eq!(g.label_count(), 4);
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate(&SyntheticConfig::with_nodes(40, 5));
        let b = generate(&SyntheticConfig::with_nodes(40, 5));
        assert_eq!(a.edge_count(), b.edge_count());
        let edges_a: Vec<_> = a.edges().map(|(_, e)| e).collect();
        let edges_b: Vec<_> = b.edges().map(|(_, e)| e).collect();
        assert_eq!(edges_a, edges_b);
        let c = generate(&SyntheticConfig::with_nodes(40, 6));
        let edges_c: Vec<_> = c.edges().map(|(_, e)| e).collect();
        assert_ne!(edges_a, edges_c, "different seed, different graph");
    }

    #[test]
    fn mean_out_degree_is_approximated() {
        let config = SyntheticConfig {
            nodes: 200,
            mean_out_degree: 3.0,
            ..SyntheticConfig::default()
        };
        let g = generate(&config);
        let stats = GraphStats::compute(&g);
        assert!(
            (stats.mean_out_degree - 3.0).abs() < 0.5,
            "observed {}",
            stats.mean_out_degree
        );
    }

    #[test]
    fn no_self_loops_by_default() {
        let g = generate(&SyntheticConfig::with_nodes(30, 9));
        for (_, e) in g.edges() {
            assert_ne!(e.source, e.target);
        }
    }

    #[test]
    fn self_loops_can_be_enabled() {
        let config = SyntheticConfig {
            nodes: 10,
            mean_out_degree: 5.0,
            allow_self_loops: true,
            seed: 2,
            ..SyntheticConfig::default()
        };
        let g = generate(&config);
        // With 10 nodes and ~50 edges, a self loop appears with overwhelming
        // probability for this seed; assert only that generation succeeds
        // and the flag is honoured by not panicking.
        assert_eq!(g.node_count(), 10);
    }

    #[test]
    fn empty_graph_edge_case() {
        let g = generate(&SyntheticConfig {
            nodes: 0,
            ..SyntheticConfig::default()
        });
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn alphabet_size_is_respected() {
        let g = generate(&SyntheticConfig {
            nodes: 30,
            alphabet_size: 2,
            seed: 4,
            ..SyntheticConfig::default()
        });
        assert_eq!(g.label_count(), 2);
        let g1 = generate(&SyntheticConfig {
            nodes: 30,
            alphabet_size: 0,
            seed: 4,
            ..SyntheticConfig::default()
        });
        assert_eq!(g1.label_count(), 1, "alphabet is clamped to at least 1");
    }
}
