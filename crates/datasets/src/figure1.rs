//! The motivating example of the paper (Figure 1): a geographical graph of
//! six neighborhoods, two cinemas and two restaurants, connected by tram and
//! bus lines.
//!
//! The published figure is only available as an image; the edge set below is
//! reconstructed so that **every fact the paper states about it holds**:
//!
//! * `q = (tram+bus)*·cinema` selects exactly the neighborhoods N1, N2, N4
//!   and N6 (and no facility node);
//! * the witness paths listed in the paper exist:
//!   `N1 —tram→ N4 —cinema→ C1`, `N2 —bus→ N1 —tram→ N4 —cinema→ C1`,
//!   `N4 —cinema→ C1`, `N6 —cinema→ C2`;
//! * one can travel by bus from N2 to N3, N4 hosts cinema C1, N6 hosts
//!   cinema C2, N2 hosts restaurant R1, N5 hosts restaurant R2;
//! * no path starting at N5 (or N3) reaches a cinema, so labeling N5
//!   negative is consistent with the goal query;
//! * the query `bus` selects N2 and N6 but not N5 (the paper's example of a
//!   consistent-but-wrong query learned without path validation);
//! * the neighborhood of N2 at distance 2 contains no cinema, while the
//!   neighborhood at distance 3 does (Figure 3(a) vs 3(b)), and N2 has the
//!   length-3 path `bus·bus·cinema` highlighted in Figure 3(c).

use gps_graph::{Graph, NodeId};

/// Handles to the named nodes of the Figure 1 graph.
#[derive(Debug, Clone, Copy)]
pub struct Figure1 {
    /// Neighborhood N1.
    pub n1: NodeId,
    /// Neighborhood N2.
    pub n2: NodeId,
    /// Neighborhood N3.
    pub n3: NodeId,
    /// Neighborhood N4.
    pub n4: NodeId,
    /// Neighborhood N5.
    pub n5: NodeId,
    /// Neighborhood N6.
    pub n6: NodeId,
    /// Cinema C1 (in N4).
    pub c1: NodeId,
    /// Cinema C2 (in N6).
    pub c2: NodeId,
    /// Restaurant R1 (in N2).
    pub r1: NodeId,
    /// Restaurant R2 (in N5).
    pub r2: NodeId,
}

/// Builds the Figure 1 graph and returns it together with its node handles.
pub fn figure1_graph() -> (Graph, Figure1) {
    let mut g = Graph::new();
    let n1 = g.add_node("N1");
    let n2 = g.add_node("N2");
    let n3 = g.add_node("N3");
    let n4 = g.add_node("N4");
    let n5 = g.add_node("N5");
    let n6 = g.add_node("N6");
    let c1 = g.add_node("C1");
    let c2 = g.add_node("C2");
    let r1 = g.add_node("R1");
    let r2 = g.add_node("R2");

    let tram = g.label("tram");
    let bus = g.label("bus");
    let cinema = g.label("cinema");
    let restaurant = g.label("restaurant");

    // Transport edges.
    g.add_edge(n1, tram, n4);
    g.add_edge(n1, bus, n4);
    g.add_edge(n2, bus, n1);
    g.add_edge(n2, bus, n3);
    g.add_edge(n3, bus, n5);
    g.add_edge(n4, bus, n5);
    g.add_edge(n5, tram, n3);
    g.add_edge(n6, bus, n5);
    // Facility edges.
    g.add_edge(n4, cinema, c1);
    g.add_edge(n6, cinema, c2);
    g.add_edge(n2, restaurant, r1);
    g.add_edge(n5, restaurant, r2);

    (
        g,
        Figure1 {
            n1,
            n2,
            n3,
            n4,
            n5,
            n6,
            c1,
            c2,
            r1,
            r2,
        },
    )
}

/// The concrete syntax of the paper's motivating query.
pub const MOTIVATING_QUERY: &str = "(tram+bus)*.cinema";

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::{Neighborhood, PathEnumerator};
    use gps_rpq::PathQuery;

    #[test]
    fn graph_has_the_papers_shape() {
        let (g, ids) = figure1_graph();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.label_count(), 4);
        assert_eq!(g.node_name(ids.n1), "N1");
        assert_eq!(g.node_name(ids.c2), "C2");
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        assert!(g.has_edge(ids.n2, bus, ids.n3), "bus travel from N2 to N3");
        assert!(g.has_edge(ids.n4, cinema, ids.c1), "cinema C1 in N4");
        assert!(g.has_edge(ids.n6, cinema, ids.c2), "cinema C2 in N6");
    }

    #[test]
    fn motivating_query_selects_exactly_the_papers_answer() {
        let (g, _) = figure1_graph();
        let q = PathQuery::parse(MOTIVATING_QUERY, g.labels()).unwrap();
        let answer = q.evaluate(&g);
        assert_eq!(answer.node_names(&g), vec!["N1", "N2", "N4", "N6"]);
    }

    #[test]
    fn paper_witness_paths_exist() {
        let (g, ids) = figure1_graph();
        let q = PathQuery::parse(MOTIVATING_QUERY, g.labels()).unwrap();
        let w1 = q.witness(&g, ids.n1).unwrap();
        assert_eq!(w1.render_word(&g), "tram·cinema");
        let w4 = q.witness(&g, ids.n4).unwrap();
        assert_eq!(w4.render_word(&g), "cinema");
        let w6 = q.witness(&g, ids.n6).unwrap();
        assert_eq!(w6.render_word(&g), "cinema");
        let w2 = q.witness(&g, ids.n2).unwrap();
        assert_eq!(w2.render_word(&g), "bus·tram·cinema");
        assert_eq!(w2.nodes, vec![ids.n2, ids.n1, ids.n4, ids.c1]);
    }

    #[test]
    fn n5_and_n3_cannot_reach_a_cinema() {
        let (g, ids) = figure1_graph();
        let q = PathQuery::parse(MOTIVATING_QUERY, g.labels()).unwrap();
        let answer = q.evaluate(&g);
        assert!(!answer.contains(ids.n5));
        assert!(!answer.contains(ids.n3));
        // Even the unconstrained "some path ends with cinema" query misses
        // them.
        let any = PathQuery::parse("(tram+bus+restaurant)*.cinema", g.labels()).unwrap();
        let any_answer = any.evaluate(&g);
        assert!(!any_answer.contains(ids.n5));
        assert!(!any_answer.contains(ids.n3));
    }

    #[test]
    fn bus_query_matches_the_papers_counterexample() {
        // Scenario 2 of the demo: with examples +N2, +N6, −N5, the query
        // `bus` is consistent (selects both positives, not the negative) but
        // is not the goal query.
        let (g, ids) = figure1_graph();
        let q = PathQuery::parse("bus", g.labels()).unwrap();
        let answer = q.evaluate(&g);
        assert!(answer.contains(ids.n2));
        assert!(answer.contains(ids.n6));
        assert!(!answer.contains(ids.n5));
    }

    #[test]
    fn figure3_neighborhood_radii() {
        let (g, ids) = figure1_graph();
        // Distance ≤ 2 around N2: no cinema visible.
        let hood2 = Neighborhood::extract(&g, ids.n2, 2);
        assert!(!hood2.contains(ids.c1));
        assert!(!hood2.contains(ids.c2));
        // Distance ≤ 3: a cinema appears (C1 via N1→N4).
        let hood3 = Neighborhood::extract(&g, ids.n2, 3);
        assert!(hood3.contains(ids.c1));
    }

    #[test]
    fn figure3c_candidate_path_exists() {
        let (g, ids) = figure1_graph();
        let bus = g.label_id("bus").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let words = PathEnumerator::new(3).words_from(&g, ids.n2);
        assert!(
            words.contains(&vec![bus, bus, cinema]),
            "bus·bus·cinema is a length-3 path of N2"
        );
    }
}
