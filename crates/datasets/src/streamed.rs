//! Streamed scale-free corpus builder — million-node graphs without the
//! intermediate [`Graph`](gps_graph::Graph).
//!
//! [`scale_free::generate`](crate::scale_free::generate) materializes a
//! mutable `Graph` (per-edge `Edge` records, two `Vec<Vec<EdgeId>>`
//! adjacency tables, a name B-tree) and then compacts it into a
//! [`CsrGraph`].  At 1M nodes / multi-M edges that intermediate costs
//! several times the final snapshot's footprint and a full copy at the end.
//!
//! [`generate_csr`] produces the **byte-identical** `CsrGraph` (same node
//! names, label ids, packed offset/entry/edge-id arrays and epoch — asserted
//! differentially in the test suite) by replaying the exact same seeded RNG
//! stream twice and emitting edges straight into `CsrGraph::from_raw_parts`
//! packed arrays:
//!
//! * **pass 1** counts per-source and per-target degrees (prefix-summed
//!   into the forward/reverse offset arrays);
//! * **pass 2** streams the forward arrays directly — the generator emits
//!   all of a node's out-edges consecutively in source order, which *is*
//!   CSR order — and scatters the reverse arrays through a cursor.
//!
//! Peak auxiliary memory beyond the final snapshot is the preferential-
//! attachment endpoint pool (one `u32` per edge endpoint), the offset/cursor
//! arrays, and a per-node dedup scratch of at most `edges_per_node` entries
//! — all small multiples of `4 bytes × (nodes + edges)`, versus the
//! `Graph`'s per-edge records plus two nested adjacency tables plus a second
//! name table.  The `scale-free-1m` group of `rpq_baseline` measures both
//! paths with a counting allocator.

use crate::scale_free::{pick_label, ScaleFreeConfig};
use gps_graph::{CsrEntry, CsrGraph, EdgeId, LabelId, LabelInterner, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replays the preferential-attachment edge stream for `config`, invoking
/// `emit(source, label, target)` for every edge that survives dedup, in the
/// exact order [`crate::scale_free::generate`] inserts them.
///
/// The RNG consumption mirrors `generate` draw for draw: one range draw per
/// attachment attempt, plus one label draw unless the attempt self-looped.
/// Dedup only ever has to consider the *current* node's accepted edges,
/// because the generator never adds an edge whose source is an older node.
fn replay<F: FnMut(u32, LabelId, u32)>(config: &ScaleFreeConfig, labels: &[LabelId], mut emit: F) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    if config.nodes == 0 {
        return;
    }
    // One entry per edge endpoint: uniform sampling from this pool is
    // preferential attachment.  `u32` per entry — the only O(edges) aux
    // structure of the build.
    let mut attachment: Vec<u32> = Vec::new();
    attachment.push(0);
    let mut seen: Vec<(LabelId, u32)> = Vec::new();
    for i in 1..config.nodes {
        let node = i as u32;
        seen.clear();
        let m = config.edges_per_node.max(1).min(i);
        for _ in 0..m {
            let target = attachment[rng.gen_range(0..attachment.len())];
            if target == node {
                continue;
            }
            let label = pick_label(&mut rng, labels, config.skewed_labels);
            if !seen.contains(&(label, target)) {
                seen.push((label, target));
                emit(node, label, target);
            }
            attachment.push(target);
        }
        attachment.push(node);
    }
}

/// Generates the scale-free corpus for `config` directly as a [`CsrGraph`],
/// byte-identical to `CsrGraph::from_graph(&scale_free::generate(config))`
/// but without ever materializing the mutable `Graph`.
pub fn generate_csr(config: &ScaleFreeConfig) -> CsrGraph {
    let mut labels = LabelInterner::new();
    let label_ids: Vec<LabelId> = (0..config.alphabet_size.max(1))
        .map(|i| labels.intern(&format!("a{i}")))
        .collect();
    let n = config.nodes;

    // Pass 1: degree counting, one slot ahead so the prefix sums leave
    // offsets[node] = start of its slice.
    let mut fwd_offsets = vec![0u32; n + 1];
    let mut rev_offsets = vec![0u32; n + 1];
    let mut edge_total = 0usize;
    replay(config, &label_ids, |source, _, target| {
        fwd_offsets[source as usize + 1] += 1;
        rev_offsets[target as usize + 1] += 1;
        edge_total += 1;
    });
    for i in 1..=n {
        fwd_offsets[i] += fwd_offsets[i - 1];
        rev_offsets[i] += rev_offsets[i - 1];
    }

    // Pass 2: forward arrays stream in emission order (the generator emits
    // all of node i's out-edges consecutively and nodes in id order, which
    // is exactly CSR layout); reverse arrays scatter through a cursor.
    // Edge ids are sequential in insertion order, as in a fresh `Graph`.
    let mut fwd_entries = Vec::with_capacity(edge_total);
    let mut fwd_edge_ids = Vec::with_capacity(edge_total);
    let mut rev_entries = vec![
        CsrEntry {
            label: LabelId::from(0usize),
            node: NodeId::from(0usize),
        };
        edge_total
    ];
    let mut rev_edge_ids = vec![EdgeId::from(0usize); edge_total];
    let mut rev_cursor = rev_offsets.clone();
    replay(config, &label_ids, |source, label, target| {
        let id = EdgeId::from(fwd_entries.len());
        fwd_entries.push(CsrEntry {
            label,
            node: NodeId::from(target as usize),
        });
        fwd_edge_ids.push(id);
        let slot = &mut rev_cursor[target as usize];
        rev_entries[*slot as usize] = CsrEntry {
            label,
            node: NodeId::from(source as usize),
        };
        rev_edge_ids[*slot as usize] = id;
        *slot += 1;
    });
    debug_assert_eq!(fwd_entries.len(), edge_total);

    let node_names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    CsrGraph::from_raw_parts(
        node_names,
        labels,
        fwd_offsets,
        fwd_entries,
        fwd_edge_ids,
        rev_offsets,
        rev_entries,
        rev_edge_ids,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale_free;

    fn assert_snapshots_identical(streamed: &CsrGraph, reference: &CsrGraph) {
        assert_eq!(streamed.node_count(), reference.node_count());
        assert_eq!(streamed.edge_count(), reference.edge_count());
        assert_eq!(streamed.labels(), reference.labels());
        assert_eq!(streamed.epoch(), reference.epoch());
        for node in reference.nodes() {
            assert_eq!(streamed.node_name(node), reference.node_name(node));
        }
        assert_eq!(streamed.fwd_offsets(), reference.fwd_offsets());
        assert_eq!(streamed.fwd_entries(), reference.fwd_entries());
        assert_eq!(streamed.fwd_edge_ids(), reference.fwd_edge_ids());
        assert_eq!(streamed.rev_offsets(), reference.rev_offsets());
        assert_eq!(streamed.rev_entries(), reference.rev_entries());
        assert_eq!(streamed.rev_edge_ids(), reference.rev_edge_ids());
    }

    #[test]
    fn streamed_build_is_byte_identical_to_graph_then_compact() {
        for config in [
            ScaleFreeConfig::default(),
            ScaleFreeConfig {
                nodes: 1,
                ..ScaleFreeConfig::default()
            },
            ScaleFreeConfig {
                nodes: 777,
                edges_per_node: 3,
                alphabet_size: 6,
                skewed_labels: false,
                seed: 99,
            },
            ScaleFreeConfig {
                nodes: 500,
                edges_per_node: 5,
                alphabet_size: 2,
                skewed_labels: true,
                seed: 7,
            },
        ] {
            let reference = CsrGraph::from_graph(&scale_free::generate(&config));
            let streamed = generate_csr(&config);
            assert_snapshots_identical(&streamed, &reference);
        }
    }

    #[test]
    fn empty_configuration_keeps_the_interned_alphabet() {
        let config = ScaleFreeConfig {
            nodes: 0,
            ..ScaleFreeConfig::default()
        };
        let reference = CsrGraph::from_graph(&scale_free::generate(&config));
        let streamed = generate_csr(&config);
        assert_snapshots_identical(&streamed, &reference);
        assert_eq!(streamed.label_count(), 4, "alphabet interned up front");
    }

    #[test]
    fn determinism_per_seed() {
        let config = ScaleFreeConfig::default();
        let a = generate_csr(&config);
        let b = generate_csr(&config);
        assert_snapshots_identical(&a, &b);
    }

    #[test]
    fn name_lookups_work_on_the_streamed_snapshot() {
        let streamed = generate_csr(&ScaleFreeConfig::default());
        assert_eq!(
            streamed.node_by_name("v0"),
            Some(gps_graph::NodeId::from(0usize))
        );
        assert_eq!(
            streamed.node_by_name("v99"),
            Some(gps_graph::NodeId::from(99usize))
        );
        assert_eq!(streamed.node_by_name("v100"), None);
    }
}
