//! Streamed insert/delete update workloads — the write-side companion to the
//! query workloads.
//!
//! A live served graph changes while sessions are in flight.  This module
//! generates deterministic streams of name-addressed
//! [`UpdateOp`]s against a base graph: edge insertions between existing
//! nodes (preferential-attachment flavored, so hubs keep growing the way
//! scale-free graphs do), occasional fresh nodes attached by their first
//! edge, and deletions of randomly chosen *currently existing* edges (the
//! generator tracks the evolving edge multiset, so a removal never targets
//! an edge a previous op already deleted).
//!
//! Feed chunks of the stream into `gps_core::GraphUpdate::from_ops` /
//! `GpsService::update` to drive a publish workload; the benchmark harness
//! records publish latency and sessions-during-updates throughput over
//! exactly these streams.

use crate::scale_free::{self, ScaleFreeConfig};
use gps_graph::{Graph, UpdateOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of [`update_stream`].
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Number of ops to generate ([`UpdateOp::AddNode`] ops ride along with
    /// the insertion that introduces them and are not counted separately).
    pub operations: usize,
    /// Fraction of ops that are insertions (the rest are deletions; a
    /// deletion drawn when no edge is left becomes an insertion).
    pub insert_ratio: f64,
    /// Fraction of insertions that introduce a fresh node (named `u0`,
    /// `u1`, …) as the edge's source.
    pub new_node_ratio: f64,
    /// Seed for the random choices.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        Self {
            operations: 100,
            insert_ratio: 0.5,
            new_node_ratio: 0.1,
            seed: 17,
        }
    }
}

/// Generates a deterministic update stream against `graph`.
///
/// Every [`UpdateOp::RemoveEdge`] in the stream targets an edge that exists
/// at that point of the replay (base edges plus earlier insertions, minus
/// earlier deletions), so applying the stream in order through a
/// `DeltaGraph`/`VersionedStore` never fails.  With `insert_ratio` at 0.5
/// the graph's edge count stays near the base's — the shape wanted for
/// benchmarking sessions *during* updates without drifting the workload.
pub fn update_stream(graph: &Graph, config: &UpdateStreamConfig) -> Vec<UpdateOp> {
    assert!(
        graph.node_count() > 0,
        "update streams need at least one node to attach to"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let labels: Vec<String> = graph
        .labels()
        .iter()
        .map(|(_, name)| name.to_string())
        .collect();
    assert!(!labels.is_empty(), "update streams need an alphabet");

    // The evolving shadow state: node names (targets are drawn per edge
    // endpoint, approximating preferential attachment) and the live edge
    // multiset.
    let mut node_names: Vec<String> = graph
        .nodes()
        .map(|node| graph.node_name(node).to_string())
        .collect();
    let mut attachment: Vec<usize> = Vec::with_capacity(graph.edge_count() * 2);
    let mut edges: Vec<(String, String, String)> = Vec::with_capacity(graph.edge_count());
    for (_, edge) in graph.edges() {
        attachment.push(edge.source.index());
        attachment.push(edge.target.index());
        // Ops address nodes by name, and name lookup resolves to the *first*
        // bearer — so a base edge incident to a later duplicate-named node
        // cannot be targeted by a by-name removal.  Keep such edges out of
        // the removal pool (edges *inserted* by this stream always connect
        // first bearers, so they stay removable).
        let source = graph.node_name(edge.source);
        let target = graph.node_name(edge.target);
        if graph.node_by_name(source) == Some(edge.source)
            && graph.node_by_name(target) == Some(edge.target)
        {
            edges.push((
                source.to_string(),
                labels[edge.label.index()].clone(),
                target.to_string(),
            ));
        }
    }
    if attachment.is_empty() {
        attachment.extend(0..node_names.len());
    }

    let mut ops = Vec::with_capacity(config.operations);
    let mut fresh = 0usize;
    for _ in 0..config.operations {
        let insert = rng.gen_range(0.0..1.0) < config.insert_ratio || edges.is_empty();
        if insert {
            let target_index = attachment[rng.gen_range(0..attachment.len())];
            let target = node_names[target_index].clone();
            let label = labels[rng.gen_range(0..labels.len())].clone();
            let source = if rng.gen_range(0.0..1.0) < config.new_node_ratio {
                let name = format!("u{fresh}");
                fresh += 1;
                ops.push(UpdateOp::AddNode(name.clone()));
                node_names.push(name.clone());
                name
            } else {
                let index = rng.gen_range(0..node_names.len());
                attachment.push(index);
                node_names[index].clone()
            };
            attachment.push(target_index);
            ops.push(UpdateOp::AddEdge {
                source: source.clone(),
                label: label.clone(),
                target: target.clone(),
            });
            edges.push((source, label, target));
        } else {
            let index = rng.gen_range(0..edges.len());
            let (source, label, target) = edges.swap_remove(index);
            ops.push(UpdateOp::RemoveEdge {
                source,
                label,
                target,
            });
        }
    }
    ops
}

/// A query workload bundled with an update stream against its graph — the
/// live-serving experiment input: sessions run over the queries while the
/// stream is published in chunks.
#[derive(Debug, Clone)]
pub struct UpdateWorkload {
    /// The base workload (graph + goal queries).
    pub base: crate::workload::Workload,
    /// The update stream against the base graph.
    pub ops: Vec<UpdateOp>,
}

impl UpdateWorkload {
    /// A scale-free live workload: the standard scale-free query workload
    /// plus a balanced insert/delete stream of `operations` ops.
    pub fn scale_free(nodes: usize, operations: usize, seed: u64) -> Self {
        let base = crate::workload::Workload::scale_free(nodes, seed);
        let ops = update_stream(
            &base.graph,
            &UpdateStreamConfig {
                operations,
                seed: seed.wrapping_add(1),
                ..UpdateStreamConfig::default()
            },
        );
        Self { base, ops }
    }

    /// The stream split into publish-sized chunks.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = &[UpdateOp]> {
        self.ops.chunks(chunk.max(1))
    }
}

/// Convenience for tests: a small scale-free graph plus a stream over it.
pub fn sample_stream(nodes: usize, operations: usize, seed: u64) -> (Graph, Vec<UpdateOp>) {
    let graph = scale_free::generate(&ScaleFreeConfig {
        nodes,
        seed,
        ..ScaleFreeConfig::default()
    });
    let ops = update_stream(
        &graph,
        &UpdateStreamConfig {
            operations,
            seed: seed.wrapping_add(1),
            ..UpdateStreamConfig::default()
        },
    );
    (graph, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::{CsrGraph, DeltaGraph, GraphBackend};
    use std::sync::Arc;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let (_, a) = sample_stream(60, 40, 3);
        let (_, b) = sample_stream(60, 40, 3);
        assert_eq!(a, b);
        let (_, c) = sample_stream(60, 40, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn every_removal_targets_a_live_edge() {
        // The strongest validity check: the full stream applies cleanly
        // through a DeltaGraph, in order, chunk by chunk with compaction in
        // between (the way a versioned store consumes it).
        let (graph, ops) = sample_stream(80, 120, 11);
        let mut snapshot = Arc::new(CsrGraph::from_graph(&graph));
        for chunk in ops.chunks(17) {
            let mut delta = DeltaGraph::new(Arc::clone(&snapshot));
            delta.apply_all(chunk).expect("stream ops always apply");
            snapshot = Arc::new(delta.compact());
        }
        assert!(snapshot.epoch() > 0);
    }

    #[test]
    fn balanced_streams_keep_the_edge_count_near_the_base() {
        let (graph, ops) = sample_stream(100, 200, 5);
        let mut delta = DeltaGraph::new(Arc::new(CsrGraph::from_graph(&graph)));
        delta.apply_all(&ops).unwrap();
        let before = graph.edge_count() as f64;
        let after = delta.edge_count() as f64;
        assert!(
            (after - before).abs() / before < 0.5,
            "edge count drifted: {before} -> {after}"
        );
        let inserts = ops
            .iter()
            .filter(|op| matches!(op, UpdateOp::AddEdge { .. }))
            .count();
        let removes = ops
            .iter()
            .filter(|op| matches!(op, UpdateOp::RemoveEdge { .. }))
            .count();
        assert!(inserts > 0 && removes > 0, "both kinds present");
    }

    #[test]
    fn update_workload_bundles_queries_and_ops() {
        let live = UpdateWorkload::scale_free(60, 30, 7);
        assert!(!live.base.queries.is_empty());
        assert_eq!(
            live.ops
                .iter()
                .filter(|op| !matches!(op, UpdateOp::AddNode(_)))
                .count(),
            30
        );
        assert_eq!(live.chunks(8).count(), live.ops.len().div_ceil(8));
    }
}
