//! Transpole-like public-transport network generator.
//!
//! The demo runs on real geographical data combining a public-transport
//! network (the Transpole network of Lille) with facilities in the spirit of
//! the motivating example.  That dataset is not redistributable, so this
//! generator produces networks with the same shape: a grid of neighborhoods
//! connected by tram and bus lines (trams run along rows, buses along columns
//! plus random shortcuts), with a configurable fraction of neighborhoods
//! hosting cinemas, restaurants, museums and parks.

use gps_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the transport-network generator.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Number of grid rows of neighborhoods.
    pub rows: usize,
    /// Number of grid columns of neighborhoods.
    pub cols: usize,
    /// Probability that a neighborhood hosts a cinema.
    pub cinema_density: f64,
    /// Probability that a neighborhood hosts a restaurant.
    pub restaurant_density: f64,
    /// Probability that a neighborhood hosts a museum.
    pub museum_density: f64,
    /// Number of extra random bus shortcuts between neighborhoods.
    pub extra_bus_links: usize,
    /// Whether tram lines run in both directions.
    pub bidirectional_tram: bool,
    /// Seed for the random choices.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            rows: 4,
            cols: 5,
            cinema_density: 0.25,
            restaurant_density: 0.35,
            museum_density: 0.15,
            extra_bus_links: 4,
            bidirectional_tram: true,
            seed: 7,
        }
    }
}

impl TransportConfig {
    /// A configuration producing roughly `neighborhoods` neighborhood nodes
    /// (the grid is made as square as possible).
    pub fn with_neighborhoods(neighborhoods: usize, seed: u64) -> Self {
        let rows = (neighborhoods as f64).sqrt().ceil() as usize;
        let cols = neighborhoods.div_ceil(rows.max(1)).max(1);
        Self {
            rows: rows.max(1),
            cols,
            extra_bus_links: neighborhoods / 5,
            seed,
            ..Self::default()
        }
    }
}

/// The generated network together with the neighborhood node handles.
#[derive(Debug, Clone)]
pub struct TransportNetwork {
    /// The generated graph.
    pub graph: Graph,
    /// Neighborhood nodes, row-major.
    pub neighborhoods: Vec<NodeId>,
    /// Facility nodes (cinemas, restaurants, museums), in creation order.
    pub facilities: Vec<NodeId>,
}

/// Generates a transport network from `config`.
pub fn generate(config: &TransportConfig) -> TransportNetwork {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph =
        Graph::with_capacity(config.rows * config.cols * 2, config.rows * config.cols * 4);
    let tram = graph.label("tram");
    let bus = graph.label("bus");
    let cinema = graph.label("cinema");
    let restaurant = graph.label("restaurant");
    let museum = graph.label("museum");

    // Neighborhood grid.
    let mut neighborhoods = Vec::with_capacity(config.rows * config.cols);
    for row in 0..config.rows {
        for col in 0..config.cols {
            neighborhoods.push(graph.add_node(format!("N{}_{}", row, col)));
        }
    }
    let at = |row: usize, col: usize| neighborhoods[row * config.cols + col];

    // Tram lines along rows.
    for row in 0..config.rows {
        for col in 0..config.cols.saturating_sub(1) {
            graph.add_edge(at(row, col), tram, at(row, col + 1));
            if config.bidirectional_tram {
                graph.add_edge(at(row, col + 1), tram, at(row, col));
            }
        }
    }
    // Bus lines along columns (one direction, like one-way loops).
    for col in 0..config.cols {
        for row in 0..config.rows.saturating_sub(1) {
            graph.add_edge(at(row, col), bus, at(row + 1, col));
        }
        // Close the loop back to the top of the column.
        if config.rows > 1 {
            graph.add_edge(at(config.rows - 1, col), bus, at(0, col));
        }
    }
    // Extra random bus shortcuts.
    for _ in 0..config.extra_bus_links {
        let a = neighborhoods[rng.gen_range(0..neighborhoods.len())];
        let b = neighborhoods[rng.gen_range(0..neighborhoods.len())];
        if a != b {
            graph.add_edge_dedup(a, bus, b);
        }
    }

    // Facilities.
    let mut facilities = Vec::new();
    let mut cinema_count = 0usize;
    let mut restaurant_count = 0usize;
    let mut museum_count = 0usize;
    for &nb in &neighborhoods {
        if rng.gen_bool(config.cinema_density) {
            let c = graph.add_node(format!("C{}", cinema_count));
            cinema_count += 1;
            graph.add_edge(nb, cinema, c);
            facilities.push(c);
        }
        if rng.gen_bool(config.restaurant_density) {
            let r = graph.add_node(format!("R{}", restaurant_count));
            restaurant_count += 1;
            graph.add_edge(nb, restaurant, r);
            facilities.push(r);
        }
        if rng.gen_bool(config.museum_density) {
            let m = graph.add_node(format!("M{}", museum_count));
            museum_count += 1;
            graph.add_edge(nb, museum, m);
            facilities.push(m);
        }
    }
    // Guarantee at least one cinema so the motivating query family is never
    // trivially empty.
    if cinema_count == 0 {
        let c = graph.add_node("C0");
        let nb = neighborhoods[rng.gen_range(0..neighborhoods.len())];
        graph.add_edge(nb, cinema, c);
        facilities.push(c);
    }

    TransportNetwork {
        graph,
        neighborhoods,
        facilities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::stats::GraphStats;
    use gps_rpq::PathQuery;

    #[test]
    fn default_network_has_expected_size() {
        let net = generate(&TransportConfig::default());
        assert_eq!(net.neighborhoods.len(), 20);
        assert!(net.graph.node_count() >= 20);
        assert!(net.graph.edge_count() > 40, "grid edges plus facilities");
        assert!(net.graph.label_count() >= 4);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&TransportConfig::default());
        let b = generate(&TransportConfig::default());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let c = generate(&TransportConfig {
            seed: 99,
            ..TransportConfig::default()
        });
        // Different seed may change facility placement (node count differs or
        // at least the structure — compare edge lists lengths loosely).
        assert_eq!(c.neighborhoods.len(), a.neighborhoods.len());
    }

    #[test]
    fn with_neighborhoods_scales_the_grid() {
        let small = generate(&TransportConfig::with_neighborhoods(10, 1));
        let large = generate(&TransportConfig::with_neighborhoods(100, 1));
        assert!(small.neighborhoods.len() >= 10);
        assert!(large.neighborhoods.len() >= 100);
        assert!(large.graph.edge_count() > small.graph.edge_count());
    }

    #[test]
    fn motivating_query_family_is_satisfiable() {
        let net = generate(&TransportConfig::default());
        let q = PathQuery::parse("(tram+bus)*.cinema", net.graph.labels()).unwrap();
        let answer = q.evaluate(&net.graph);
        assert!(
            !answer.is_empty(),
            "some neighborhood can always reach a cinema"
        );
        // Facilities are never selected: they have no outgoing edges.
        for &f in &net.facilities {
            assert!(!answer.contains(f));
        }
    }

    #[test]
    fn facility_nodes_are_sinks() {
        let net = generate(&TransportConfig::default());
        for &f in &net.facilities {
            assert_eq!(net.graph.out_degree(f), 0);
            assert_eq!(net.graph.in_degree(f), 1);
        }
    }

    #[test]
    fn network_is_weakly_connected() {
        let net = generate(&TransportConfig::default());
        let stats = GraphStats::compute(&net.graph);
        assert_eq!(stats.weak_component_count, 1);
    }

    #[test]
    fn always_at_least_one_cinema() {
        let net = generate(&TransportConfig {
            cinema_density: 0.0,
            restaurant_density: 0.0,
            museum_density: 0.0,
            ..TransportConfig::default()
        });
        assert!(net.graph.label_id("cinema").is_some());
        let q = PathQuery::parse("cinema", net.graph.labels()).unwrap();
        assert!(!q.evaluate(&net.graph).is_empty());
    }
}
