//! Goal-query workloads.
//!
//! The experiments sweep over goal queries of increasing structural
//! complexity (single label, concatenations, unions under a star — the shape
//! of the motivating query, and nested combinations).  Queries are built
//! against a graph's actual alphabet so they are always well-formed for that
//! graph.

use gps_automata::Regex;
use gps_graph::{Graph, LabelId};
use gps_rpq::PathQuery;

/// A named family of goal queries over a graph's alphabet.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Name of the workload (used in experiment reports).
    pub name: String,
    /// The goal queries, in increasing structural size.
    pub queries: Vec<PathQuery>,
}

impl QueryWorkload {
    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The first `count` labels of the graph's alphabet (fewer if the alphabet is
/// smaller).
fn first_labels(graph: &Graph, count: usize) -> Vec<LabelId> {
    graph.labels().ids().take(count).collect()
}

/// Builds the standard query workload of the experiments for `graph`:
///
/// 1. single label `a`
/// 2. concatenation `a·b`
/// 3. star-reachability `a*·b` (the shape of the motivating query with one
///    transport label)
/// 4. union under star `(a+b)*·c` (the motivating query itself)
/// 5. nested `(a·b)*·c + d` style query when the alphabet is large enough
pub fn standard_workload(graph: &Graph) -> QueryWorkload {
    let labels = first_labels(graph, 4);
    let mut queries = Vec::new();
    if labels.is_empty() {
        return QueryWorkload {
            name: "standard".to_string(),
            queries,
        };
    }
    let a = Regex::symbol(labels[0]);
    queries.push(PathQuery::new(a.clone()));
    if labels.len() >= 2 {
        let b = Regex::symbol(labels[1]);
        queries.push(PathQuery::new(Regex::concat([a.clone(), b.clone()])));
        queries.push(PathQuery::new(Regex::concat([
            Regex::star(a.clone()),
            b.clone(),
        ])));
    }
    if labels.len() >= 3 {
        let b = Regex::symbol(labels[1]);
        let c = Regex::symbol(labels[2]);
        queries.push(PathQuery::new(Regex::concat([
            Regex::star(Regex::union([a.clone(), b.clone()])),
            c.clone(),
        ])));
    }
    if labels.len() >= 4 {
        let b = Regex::symbol(labels[1]);
        let c = Regex::symbol(labels[2]);
        let d = Regex::symbol(labels[3]);
        queries.push(PathQuery::new(Regex::union([
            Regex::concat([Regex::star(Regex::concat([a, b])), c]),
            d,
        ])));
    }
    QueryWorkload {
        name: "standard".to_string(),
        queries,
    }
}

/// The transport-domain workload used against [`crate::transport`] networks:
/// variants of "reach a facility via public transportation".
pub fn transport_workload(graph: &Graph) -> QueryWorkload {
    let mut queries = Vec::new();
    let mut push = |syntax: &str| {
        if let Ok(q) = PathQuery::parse(syntax, graph.labels()) {
            queries.push(q);
        }
    };
    push("cinema");
    push("tram*.cinema");
    push("(tram+bus)*.cinema");
    push("(tram+bus)*.restaurant");
    push("bus.bus*.cinema");
    push("(tram+bus)*.(cinema+museum)");
    QueryWorkload {
        name: "transport".to_string(),
        queries,
    }
}

/// A multi-query *batch* workload of `count` structurally varied queries —
/// the input shape of the `gps-exec` batch/parallel execution engine and of
/// the batch benchmarks.
///
/// Queries are generated deterministically by rotating through the graph's
/// alphabet and five structural templates (single label, concatenation,
/// star-reachability, union-under-star, starred suffix), so two calls with
/// the same graph and count produce identical workloads.
pub fn batch_workload(graph: &Graph, count: usize) -> QueryWorkload {
    let labels: Vec<LabelId> = graph.labels().ids().collect();
    let mut queries = Vec::with_capacity(count);
    if labels.is_empty() {
        return QueryWorkload {
            name: "batch".to_string(),
            queries,
        };
    }
    let symbol = |i: usize| Regex::symbol(labels[i % labels.len()]);
    for i in 0..count {
        let a = symbol(i);
        let b = symbol(i + 1);
        let c = symbol(i + 2);
        let regex = match i % 5 {
            0 => a,
            1 => Regex::concat([a, b]),
            2 => Regex::concat([Regex::star(a), b]),
            3 => Regex::concat([Regex::star(Regex::union([a, b])), c]),
            _ => Regex::concat([a, Regex::star(Regex::union([b, c]))]),
        };
        queries.push(PathQuery::new(regex));
    }
    QueryWorkload {
        name: "batch".to_string(),
        queries,
    }
}

/// The biological-domain workload used against [`crate::biological`]
/// networks: regulatory-chain queries.
pub fn biological_workload(graph: &Graph) -> QueryWorkload {
    let mut queries = Vec::new();
    let mut push = |syntax: &str| {
        if let Ok(q) = PathQuery::parse(syntax, graph.labels()) {
            queries.push(q);
        }
    };
    push("activates");
    push("activates.inhibits");
    push("binds*.activates");
    push("(activates+inhibits)*.catalyzes");
    push("expresses.(activates+inhibits)*");
    QueryWorkload {
        name: "biological".to_string(),
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biological::{self, BiologicalConfig};
    use crate::figure1::figure1_graph;
    use crate::transport::{self, TransportConfig};

    #[test]
    fn standard_workload_grows_with_alphabet() {
        let (g, _) = figure1_graph();
        let workload = standard_workload(&g);
        assert_eq!(workload.len(), 5, "figure 1 has a 4-label alphabet");
        assert!(!workload.is_empty());
        // Sizes are non-decreasing.
        let sizes: Vec<usize> = workload.queries.iter().map(|q| q.regex().size()).collect();
        for window in sizes.windows(2) {
            assert!(window[0] <= window[1]);
        }
    }

    #[test]
    fn standard_workload_on_small_alphabets() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "only", b);
        let workload = standard_workload(&g);
        assert_eq!(workload.len(), 1);
        let empty = standard_workload(&Graph::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn transport_workload_parses_against_generated_networks() {
        let net = transport::generate(&TransportConfig::default());
        let workload = transport_workload(&net.graph);
        assert!(workload.len() >= 5);
        // The motivating query is part of the workload and satisfiable.
        let satisfiable = workload
            .queries
            .iter()
            .filter(|q| !q.evaluate(&net.graph).is_empty())
            .count();
        assert!(satisfiable >= 3);
    }

    #[test]
    fn biological_workload_parses_against_generated_networks() {
        let g = biological::generate(&BiologicalConfig::default());
        let workload = biological_workload(&g);
        assert_eq!(workload.len(), 5);
        assert_eq!(workload.name, "biological");
    }

    #[test]
    fn batch_workload_is_deterministic_and_sized() {
        let (g, _) = figure1_graph();
        let w1 = batch_workload(&g, 12);
        let w2 = batch_workload(&g, 12);
        assert_eq!(w1.len(), 12);
        for (a, b) in w1.queries.iter().zip(&w2.queries) {
            assert_eq!(a.regex(), b.regex());
        }
        // Structural variety: more than one distinct regex shape.
        let distinct: std::collections::BTreeSet<String> =
            w1.queries.iter().map(|q| q.display(g.labels())).collect();
        assert!(distinct.len() >= 5, "got {distinct:?}");
        assert!(batch_workload(&Graph::new(), 4).is_empty());
    }

    #[test]
    fn figure1_supports_transport_workload_subset() {
        let (g, _) = figure1_graph();
        let workload = transport_workload(&g);
        // "museum" is not in Figure 1's alphabet, so that query is skipped.
        assert_eq!(workload.len(), 5);
    }
}
