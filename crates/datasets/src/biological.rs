//! Biological-interaction-network-like generator.
//!
//! The companion research paper evaluates the learning algorithm on
//! biological datasets (protein/gene interaction networks).  Those datasets
//! are not bundled here; this generator produces graphs with their salient
//! structural traits — a sparse backbone, a few highly connected hub
//! entities, long regulatory chains, and a small alphabet of interaction
//! types (`activates`, `inhibits`, `binds`, `expresses`, `catalyzes`) — so
//! the same code paths (long witness paths, skewed informativeness, large
//! pruning opportunities) are exercised.

use gps_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interaction-type labels used by the generator.
pub const INTERACTION_LABELS: [&str; 5] =
    ["activates", "inhibits", "binds", "expresses", "catalyzes"];

/// Configuration of the biological-network generator.
#[derive(Debug, Clone)]
pub struct BiologicalConfig {
    /// Number of entity nodes (proteins/genes).
    pub entities: usize,
    /// Number of hub entities (receive/emit many interactions).
    pub hubs: usize,
    /// Number of long regulatory chains to weave through the network.
    pub chains: usize,
    /// Length of each regulatory chain.
    pub chain_length: usize,
    /// Number of additional random interactions.
    pub random_interactions: usize,
    /// Seed for the random choices.
    pub seed: u64,
}

impl Default for BiologicalConfig {
    fn default() -> Self {
        Self {
            entities: 120,
            hubs: 4,
            chains: 6,
            chain_length: 8,
            random_interactions: 100,
            seed: 17,
        }
    }
}

impl BiologicalConfig {
    /// Convenience constructor for size sweeps.
    pub fn with_entities(entities: usize, seed: u64) -> Self {
        Self {
            entities,
            hubs: (entities / 30).max(1),
            chains: (entities / 20).max(1),
            random_interactions: entities,
            seed,
            ..Self::default()
        }
    }
}

/// Generates a biological-interaction-like network.
pub fn generate(config: &BiologicalConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = Graph::with_capacity(
        config.entities,
        config.random_interactions + config.chains * config.chain_length + config.entities,
    );
    let labels: Vec<_> = INTERACTION_LABELS
        .iter()
        .map(|name| graph.label(name))
        .collect();
    if config.entities == 0 {
        return graph;
    }
    let entities: Vec<NodeId> = (0..config.entities)
        .map(|i| graph.add_node(format!("P{i}")))
        .collect();
    let hubs: Vec<NodeId> = entities
        .iter()
        .copied()
        .take(config.hubs.max(1).min(config.entities))
        .collect();

    // Hubs: every hub binds a swath of entities (both directions).
    let binds = labels[2];
    for &hub in &hubs {
        let fan = (config.entities / (config.hubs.max(1) * 2)).max(1);
        for _ in 0..fan {
            let other = entities[rng.gen_range(0..entities.len())];
            if other != hub {
                graph.add_edge_dedup(hub, binds, other);
                graph.add_edge_dedup(other, binds, hub);
            }
        }
    }

    // Regulatory chains: activates/inhibits alternating along a random walk
    // of distinct entities.
    for _ in 0..config.chains {
        let mut current = entities[rng.gen_range(0..entities.len())];
        for step in 0..config.chain_length {
            let next = entities[rng.gen_range(0..entities.len())];
            if next == current {
                continue;
            }
            let label = if step % 2 == 0 { labels[0] } else { labels[1] };
            graph.add_edge_dedup(current, label, next);
            current = next;
        }
    }

    // Random interactions with the remaining labels.
    for _ in 0..config.random_interactions {
        let source = entities[rng.gen_range(0..entities.len())];
        let target = entities[rng.gen_range(0..entities.len())];
        if source == target {
            continue;
        }
        let label = labels[rng.gen_range(0..labels.len())];
        graph.add_edge_dedup(source, label, target);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::stats::GraphStats;
    use gps_rpq::PathQuery;

    #[test]
    fn generates_requested_entity_count() {
        let g = generate(&BiologicalConfig::default());
        assert_eq!(g.node_count(), 120);
        assert_eq!(g.label_count(), 5);
        assert!(g.edge_count() > 100);
    }

    #[test]
    fn hubs_have_high_degree() {
        let g = generate(&BiologicalConfig::default());
        let p0 = g.node_by_name("P0").unwrap();
        let stats = GraphStats::compute(&g);
        let hub_degree = g.out_degree(p0) + g.in_degree(p0);
        assert!(
            hub_degree as f64 > 2.0 * stats.mean_out_degree,
            "hub degree {hub_degree} vs mean {}",
            stats.mean_out_degree
        );
    }

    #[test]
    fn interaction_labels_are_all_present() {
        let g = generate(&BiologicalConfig::default());
        for name in INTERACTION_LABELS {
            assert!(g.label_id(name).is_some(), "missing label {name}");
        }
    }

    #[test]
    fn regulatory_queries_are_satisfiable() {
        let g = generate(&BiologicalConfig::default());
        // Some entity activates something that inhibits something.
        let q = PathQuery::parse("activates.inhibits", g.labels()).unwrap();
        assert!(!q.evaluate(&g).is_empty());
        // The hub-binding query is widely satisfied.
        let q2 = PathQuery::parse("binds", g.labels()).unwrap();
        assert!(q2.evaluate(&g).len() > 5);
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate(&BiologicalConfig::default());
        let b = generate(&BiologicalConfig::default());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = generate(&BiologicalConfig {
            seed: 1234,
            ..BiologicalConfig::default()
        });
        assert_eq!(c.node_count(), a.node_count());
    }

    #[test]
    fn with_entities_scales() {
        let small = generate(&BiologicalConfig::with_entities(40, 2));
        let large = generate(&BiologicalConfig::with_entities(200, 2));
        assert_eq!(small.node_count(), 40);
        assert_eq!(large.node_count(), 200);
        assert!(large.edge_count() > small.edge_count());
    }

    #[test]
    fn empty_configuration() {
        let g = generate(&BiologicalConfig {
            entities: 0,
            ..BiologicalConfig::default()
        });
        assert!(g.is_empty());
    }
}
