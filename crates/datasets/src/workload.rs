//! Experiment workloads: bundles of (graph, goal queries) pairs.
//!
//! The benchmark harness iterates over [`Workload`]s — a named graph plus the
//! query family appropriate to its domain — so every experiment (interaction
//! counts, strategy latency, learning time, pruning) runs over the same
//! standardized inputs.

use crate::biological::{self, BiologicalConfig};
use crate::figure1::figure1_graph;
use crate::queries::{self, QueryWorkload};
use crate::scale_free::{self, ScaleFreeConfig};
use crate::synthetic::{self, SyntheticConfig};
use crate::transport::{self, TransportConfig};
use gps_graph::Graph;

/// The family a workload graph was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The paper's Figure 1 graph.
    Figure1,
    /// Generated public-transport network.
    Transport,
    /// Uniform random graph.
    Synthetic,
    /// Preferential-attachment graph.
    ScaleFree,
    /// Biological-interaction-like graph.
    Biological,
}

impl WorkloadKind {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Figure1 => "figure1",
            WorkloadKind::Transport => "transport",
            WorkloadKind::Synthetic => "synthetic",
            WorkloadKind::ScaleFree => "scale-free",
            WorkloadKind::Biological => "biological",
        }
    }
}

/// A graph together with the goal queries evaluated against it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which generator produced the graph.
    pub kind: WorkloadKind,
    /// Human-readable name including the size parameter.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// The goal queries.
    pub queries: QueryWorkload,
}

impl Workload {
    /// The Figure 1 workload (the paper's running example).
    pub fn figure1() -> Self {
        let (graph, _) = figure1_graph();
        let queries = queries::transport_workload(&graph);
        Self {
            kind: WorkloadKind::Figure1,
            name: "figure1".to_string(),
            graph,
            queries,
        }
    }

    /// A transport workload with roughly `neighborhoods` neighborhoods.
    pub fn transport(neighborhoods: usize, seed: u64) -> Self {
        let net = transport::generate(&TransportConfig::with_neighborhoods(neighborhoods, seed));
        let queries = queries::transport_workload(&net.graph);
        Self {
            kind: WorkloadKind::Transport,
            name: format!("transport-{neighborhoods}"),
            graph: net.graph,
            queries,
        }
    }

    /// A uniform random workload with `nodes` nodes.
    pub fn synthetic(nodes: usize, seed: u64) -> Self {
        let graph = synthetic::generate(&SyntheticConfig::with_nodes(nodes, seed));
        let queries = queries::standard_workload(&graph);
        Self {
            kind: WorkloadKind::Synthetic,
            name: format!("synthetic-{nodes}"),
            graph,
            queries,
        }
    }

    /// A scale-free workload with `nodes` nodes.
    pub fn scale_free(nodes: usize, seed: u64) -> Self {
        let graph = scale_free::generate(&ScaleFreeConfig {
            nodes,
            seed,
            ..ScaleFreeConfig::default()
        });
        let queries = queries::standard_workload(&graph);
        Self {
            kind: WorkloadKind::ScaleFree,
            name: format!("scale-free-{nodes}"),
            graph,
            queries,
        }
    }

    /// A scale-free *batch* workload: the multi-query input of the batch
    /// execution engine — `query_count` structurally varied queries (see
    /// [`queries::batch_workload`]) over one preferential-attachment graph.
    pub fn scale_free_batch(nodes: usize, query_count: usize, seed: u64) -> Self {
        let graph = scale_free::generate(&ScaleFreeConfig {
            nodes,
            seed,
            ..ScaleFreeConfig::default()
        });
        let queries = queries::batch_workload(&graph, query_count);
        Self {
            kind: WorkloadKind::ScaleFree,
            name: format!("scale-free-{nodes}-batch{query_count}"),
            graph,
            queries,
        }
    }

    /// The large-corpus scale-free workload (~20k nodes, denser and with a
    /// wider alphabet than the default config) used to sanity-check the
    /// planner's default thresholds at a size where the checked-in small
    /// corpora stop being representative (`tests/planner_defaults.rs`).
    pub fn scale_free_large(seed: u64) -> Self {
        let graph = scale_free::generate(&ScaleFreeConfig {
            nodes: 20_000,
            edges_per_node: 5,
            alphabet_size: 6,
            skewed_labels: true,
            seed,
        });
        let queries = queries::standard_workload(&graph);
        Self {
            kind: WorkloadKind::ScaleFree,
            name: "scale-free-20000".to_string(),
            graph,
            queries,
        }
    }

    /// A biological workload with `entities` entities.
    pub fn biological(entities: usize, seed: u64) -> Self {
        let graph = biological::generate(&BiologicalConfig::with_entities(entities, seed));
        let queries = queries::biological_workload(&graph);
        Self {
            kind: WorkloadKind::Biological,
            name: format!("biological-{entities}"),
            graph,
            queries,
        }
    }

    /// The default experiment suite: one workload per domain at a modest,
    /// laptop-friendly size plus the Figure 1 example.
    pub fn default_suite(seed: u64) -> Vec<Workload> {
        vec![
            Workload::figure1(),
            Workload::transport(30, seed),
            Workload::synthetic(100, seed),
            Workload::scale_free(100, seed),
            Workload::biological(80, seed),
        ]
    }

    /// The size sweep used by the interaction-count experiment (E1).
    pub fn size_sweep(seed: u64) -> Vec<Workload> {
        [20usize, 50, 100, 200]
            .into_iter()
            .map(|n| Workload::transport(n, seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_covers_every_kind() {
        let suite = Workload::default_suite(3);
        assert_eq!(suite.len(), 5);
        let kinds: Vec<_> = suite.iter().map(|w| w.kind).collect();
        assert!(kinds.contains(&WorkloadKind::Figure1));
        assert!(kinds.contains(&WorkloadKind::Transport));
        assert!(kinds.contains(&WorkloadKind::Synthetic));
        assert!(kinds.contains(&WorkloadKind::ScaleFree));
        assert!(kinds.contains(&WorkloadKind::Biological));
        for w in &suite {
            assert!(!w.graph.is_empty(), "{} graph is empty", w.name);
            assert!(!w.queries.is_empty(), "{} has no queries", w.name);
        }
    }

    #[test]
    fn size_sweep_is_increasing() {
        let sweep = Workload::size_sweep(1);
        assert_eq!(sweep.len(), 4);
        for window in sweep.windows(2) {
            assert!(window[0].graph.node_count() < window[1].graph.node_count());
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(WorkloadKind::Figure1.name(), "figure1");
        assert_eq!(WorkloadKind::ScaleFree.name(), "scale-free");
    }

    #[test]
    fn workload_names_embed_sizes() {
        assert_eq!(Workload::transport(30, 1).name, "transport-30");
        assert_eq!(Workload::biological(80, 1).name, "biological-80");
    }

    #[test]
    fn scale_free_batch_carries_a_multi_query_workload() {
        let w = Workload::scale_free_batch(60, 12, 11);
        assert_eq!(w.name, "scale-free-60-batch12");
        assert_eq!(w.queries.len(), 12);
        assert_eq!(w.kind, WorkloadKind::ScaleFree);
        assert_eq!(w.graph.node_count(), 60);
    }
}
