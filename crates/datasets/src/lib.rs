//! # gps-datasets — dataset and workload generators for GPS experiments
//!
//! The paper demonstrates GPS on real geographical data (public-transport
//! networks combined with facilities such as cinemas and restaurants) and the
//! companion research paper evaluates on biological and synthetic datasets.
//! None of those datasets ship with this reproduction, so this crate provides
//! deterministic generators producing graphs with the same structural
//! characteristics, plus the paper's Figure 1 graph verbatim:
//!
//! * [`figure1`] — the 10-node motivating example of the paper;
//! * [`transport`] — Transpole-like public-transport networks: a grid of
//!   neighborhoods connected by tram/bus lines, decorated with facilities;
//! * [`synthetic`] — uniform random edge-labeled graphs (Erdős–Rényi style);
//! * [`scale_free`] — preferential-attachment graphs with skewed degrees;
//! * [`streamed`] — the same scale-free corpora emitted straight into packed
//!   [`gps_graph::CsrGraph`] arrays (byte-identical, no intermediate
//!   `Graph`), for million-node scale;
//! * [`biological`] — hub-dominated sparse interaction networks standing in
//!   for the biological datasets of the companion paper;
//! * [`queries`] — goal-query workloads of increasing complexity;
//! * [`workload`] — bundles of (graph, goal query) pairs used by the
//!   experiment harness;
//! * [`updates`] — streamed insert/delete update workloads for the live
//!   (epoch-versioned) serving experiments.
//!
//! All generators take explicit seeds and are fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biological;
pub mod figure1;
pub mod queries;
pub mod scale_free;
pub mod streamed;
pub mod synthetic;
pub mod transport;
pub mod updates;
pub mod workload;

pub use figure1::{figure1_graph, Figure1};
pub use queries::QueryWorkload;
pub use updates::{update_stream, UpdateStreamConfig, UpdateWorkload};
pub use workload::{Workload, WorkloadKind};
