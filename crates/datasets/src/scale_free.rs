//! Scale-free (preferential-attachment) edge-labeled graphs.
//!
//! Real graph databases — social networks, citation graphs, linked data —
//! exhibit heavy-tailed degree distributions.  This generator grows a graph
//! by preferential attachment (Barabási–Albert style), assigning each new
//! edge a label drawn from a configurable, optionally skewed, distribution.

use gps_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the preferential-attachment generator.
#[derive(Debug, Clone)]
pub struct ScaleFreeConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges each new node attaches with.
    pub edges_per_node: usize,
    /// Alphabet size (labels `a0`, `a1`, …).
    pub alphabet_size: usize,
    /// When `true`, label frequencies follow a 1/rank (Zipf-like) skew
    /// instead of the uniform distribution.
    pub skewed_labels: bool,
    /// Seed for the random choices.
    pub seed: u64,
}

impl Default for ScaleFreeConfig {
    fn default() -> Self {
        Self {
            nodes: 100,
            edges_per_node: 2,
            alphabet_size: 4,
            skewed_labels: true,
            seed: 13,
        }
    }
}

/// Generates a scale-free edge-labeled graph.
pub fn generate(config: &ScaleFreeConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = Graph::with_capacity(config.nodes, config.nodes * config.edges_per_node);
    let labels: Vec<_> = (0..config.alphabet_size.max(1))
        .map(|i| graph.label(&format!("a{i}")))
        .collect();
    if config.nodes == 0 {
        return graph;
    }

    // `attachment` holds one entry per edge endpoint, so sampling uniformly
    // from it implements preferential attachment.
    let mut attachment: Vec<NodeId> = Vec::new();
    let first = graph.add_node("v0");
    attachment.push(first);

    for i in 1..config.nodes {
        let node = graph.add_node(format!("v{i}"));
        let m = config.edges_per_node.max(1).min(i);
        for _ in 0..m {
            let target = attachment[rng.gen_range(0..attachment.len())];
            if target == node {
                continue;
            }
            let label = pick_label(&mut rng, &labels, config.skewed_labels);
            graph.add_edge_dedup(node, label, target);
            attachment.push(target);
        }
        attachment.push(node);
    }
    graph
}

/// One label draw — shared with the streamed builder (`crate::streamed`),
/// which must consume the exact same RNG stream to stay byte-identical.
pub(crate) fn pick_label(
    rng: &mut StdRng,
    labels: &[gps_graph::LabelId],
    skewed: bool,
) -> gps_graph::LabelId {
    if !skewed || labels.len() == 1 {
        return labels[rng.gen_range(0..labels.len())];
    }
    // Zipf-like: weight of rank r is 1/(r+1).
    let weights: Vec<f64> = (0..labels.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return labels[i];
        }
        draw -= w;
    }
    labels[labels.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::stats::GraphStats;

    #[test]
    fn generates_requested_node_count() {
        let g = generate(&ScaleFreeConfig::default());
        assert_eq!(g.node_count(), 100);
        assert!(g.edge_count() >= 99, "at least a tree's worth of edges");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate(&ScaleFreeConfig {
            nodes: 300,
            ..ScaleFreeConfig::default()
        });
        let stats = GraphStats::compute(&g);
        // A hub node accumulates far more than the mean in-degree.
        let max_in = g.nodes().map(|n| g.in_degree(n)).max().unwrap();
        assert!(
            max_in as f64 > 4.0 * stats.mean_out_degree,
            "max in-degree {max_in} vs mean {}",
            stats.mean_out_degree
        );
    }

    #[test]
    fn skewed_labels_favor_the_first_label() {
        let g = generate(&ScaleFreeConfig {
            nodes: 400,
            skewed_labels: true,
            ..ScaleFreeConfig::default()
        });
        let a0 = g.label_id("a0").unwrap();
        let a3 = g.label_id("a3").unwrap();
        let count = |label| g.edges().filter(|(_, e)| e.label == label).count();
        assert!(count(a0) > count(a3));
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate(&ScaleFreeConfig::default());
        let b = generate(&ScaleFreeConfig::default());
        let ea: Vec<_> = a.edges().map(|(_, e)| e).collect();
        let eb: Vec<_> = b.edges().map(|(_, e)| e).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn tiny_and_empty_configurations() {
        let empty = generate(&ScaleFreeConfig {
            nodes: 0,
            ..ScaleFreeConfig::default()
        });
        assert!(empty.is_empty());
        let single = generate(&ScaleFreeConfig {
            nodes: 1,
            ..ScaleFreeConfig::default()
        });
        assert_eq!(single.node_count(), 1);
        assert_eq!(single.edge_count(), 0);
    }

    #[test]
    fn graph_is_weakly_connected() {
        let g = generate(&ScaleFreeConfig {
            nodes: 150,
            ..ScaleFreeConfig::default()
        });
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.weak_component_count, 1);
    }
}
