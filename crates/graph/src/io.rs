//! Graph (de)serialization: a simple textual edge-list format and JSON.
//!
//! The edge-list format is one line per edge, `source label target`,
//! whitespace-separated, with `#` comments and blank lines ignored.  Node and
//! label names are arbitrary non-whitespace strings and are created on first
//! use.  Isolated nodes can be declared with a single-token line.
//!
//! ```text
//! # the Figure 1 fragment
//! N1 tram N4
//! N4 cinema C1
//! N5
//! ```

use crate::graph::Graph;
use std::fmt;
use std::path::Path as FsPath;

/// Errors raised while parsing or writing graphs.
#[derive(Debug)]
pub enum IoError {
    /// A line of the edge-list format had a number of tokens other than 1 or 3.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Underlying JSON error.
    Json(serde_json::Error),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::MalformedLine { line, content } => {
                write!(f, "malformed edge-list line {line}: {content:?} (expected `source label target` or a single node name)")
            }
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Parses a graph from the edge-list format.
pub fn parse_edge_list(input: &str) -> Result<Graph, IoError> {
    let mut graph = Graph::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            [node] => {
                ensure_node(&mut graph, node);
            }
            [source, label, target] => {
                let s = ensure_node(&mut graph, source);
                let t = ensure_node(&mut graph, target);
                graph.add_edge_by_name(s, label, t);
            }
            _ => {
                return Err(IoError::MalformedLine {
                    line: idx + 1,
                    content: raw_line.to_string(),
                })
            }
        }
    }
    Ok(graph)
}

fn ensure_node(graph: &mut Graph, name: &str) -> crate::ids::NodeId {
    match graph.node_by_name(name) {
        Some(id) => id,
        None => graph.add_node(name),
    }
}

/// Serializes a graph to the edge-list format.  Isolated nodes are emitted as
/// single-token lines so the round trip is lossless up to edge ordering.
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    for (_, edge) in graph.edges() {
        out.push_str(graph.node_name(edge.source));
        out.push(' ');
        out.push_str(graph.label_name(edge.label).unwrap_or("?"));
        out.push(' ');
        out.push_str(graph.node_name(edge.target));
        out.push('\n');
    }
    for node in graph.nodes() {
        if graph.out_degree(node) == 0 && graph.in_degree(node) == 0 {
            out.push_str(graph.node_name(node));
            out.push('\n');
        }
    }
    out
}

/// Reads a graph from an edge-list file.
pub fn read_edge_list_file(path: impl AsRef<FsPath>) -> Result<Graph, IoError> {
    let content = std::fs::read_to_string(path)?;
    parse_edge_list(&content)
}

/// Writes a graph to an edge-list file.
pub fn write_edge_list_file(graph: &Graph, path: impl AsRef<FsPath>) -> Result<(), IoError> {
    std::fs::write(path, to_edge_list(graph))?;
    Ok(())
}

/// Serializes a graph to JSON.
pub fn to_json(graph: &Graph) -> Result<String, IoError> {
    Ok(serde_json::to_string_pretty(graph)?)
}

/// Deserializes a graph from JSON, rebuilding the lookup indexes.
pub fn from_json(json: &str) -> Result<Graph, IoError> {
    let mut graph: Graph = serde_json::from_str(json)?;
    graph.rebuild_indexes();
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment line
N1 tram N4

N4 cinema C1
N2 bus N1
N5
";

    #[test]
    fn parse_edge_list_builds_nodes_and_edges() {
        let g = parse_edge_list(SAMPLE).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert!(g.node_by_name("N5").is_some());
        let n1 = g.node_by_name("N1").unwrap();
        let n4 = g.node_by_name("N4").unwrap();
        let tram = g.label_id("tram").unwrap();
        assert!(g.has_edge(n1, tram, n4));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse_edge_list("# only comments\n\n   \n").unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse_edge_list("N1 tram\n").unwrap_err();
        match err {
            IoError::MalformedLine { line, content } => {
                assert_eq!(line, 1);
                assert!(content.contains("N1 tram"));
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(err_to_string_contains(
            parse_edge_list("a b c d\n").unwrap_err(),
            "malformed"
        ));
    }

    fn err_to_string_contains(err: IoError, needle: &str) -> bool {
        err.to_string().contains(needle)
    }

    #[test]
    fn edge_list_round_trip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert!(g2.node_by_name("N5").is_some(), "isolated node preserved");
    }

    #[test]
    fn json_round_trip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let json = to_json(&g).unwrap();
        let g2 = from_json(&json).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.node_by_name("N2"), g.node_by_name("N2"));
        assert!(g2.label_id("cinema").is_some());
    }

    #[test]
    fn file_round_trip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("gps-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.edges");
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list_file("/definitely/not/here.edges").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }

    #[test]
    fn bad_json_is_a_json_error() {
        let err = from_json("{not json").unwrap_err();
        assert!(matches!(err, IoError::Json(_)));
    }
}
