//! Prefix tree of path words (Figure 3(c) of the paper).
//!
//! After a node has been labeled positive, GPS shows the user all of that
//! node's candidate paths (bounded length, not covered by negatives) as a
//! *prefix tree*, with one path highlighted as the system's best guess.  The
//! tree here is purely structural — rendering and highlighting live in
//! `gps-core::render` and `gps-interactive::validation`.

use crate::ids::LabelId;
use crate::paths::Word;
use std::collections::BTreeMap;

/// Identifier of a prefix-tree node (dense, root = 0).
pub type PrefixNodeId = usize;

/// A trie over label words.  Every node remembers whether it terminates one
/// of the inserted words.
#[derive(Debug, Clone, Default)]
pub struct PrefixTree {
    children: Vec<BTreeMap<LabelId, PrefixNodeId>>,
    terminal: Vec<bool>,
}

impl PrefixTree {
    /// Creates a prefix tree containing only the empty root.
    pub fn new() -> Self {
        Self {
            children: vec![BTreeMap::new()],
            terminal: vec![false],
        }
    }

    /// Builds a prefix tree from a collection of words.
    pub fn from_words<I>(words: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<[LabelId]>,
    {
        let mut tree = Self::new();
        for word in words {
            tree.insert(word.as_ref());
        }
        tree
    }

    /// The root node.
    pub fn root(&self) -> PrefixNodeId {
        0
    }

    /// Number of trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.children.len()
    }

    /// Number of distinct words stored.
    pub fn word_count(&self) -> usize {
        self.terminal.iter().filter(|&&t| t).count()
    }

    /// Returns `true` when no word has been inserted.
    pub fn is_empty(&self) -> bool {
        self.word_count() == 0
    }

    /// Inserts a word, returning the terminal node.
    pub fn insert(&mut self, word: &[LabelId]) -> PrefixNodeId {
        let mut node = self.root();
        for &label in word {
            node = match self.children[node].get(&label) {
                Some(&next) => next,
                None => {
                    let next = self.children.len();
                    self.children.push(BTreeMap::new());
                    self.terminal.push(false);
                    self.children[node].insert(label, next);
                    next
                }
            };
        }
        self.terminal[node] = true;
        node
    }

    /// Returns `true` if the exact word was inserted.
    pub fn contains(&self, word: &[LabelId]) -> bool {
        self.locate(word)
            .map(|node| self.terminal[node])
            .unwrap_or(false)
    }

    /// Returns `true` if the word is a (not necessarily proper) prefix of an
    /// inserted word.
    pub fn contains_prefix(&self, word: &[LabelId]) -> bool {
        self.locate(word).is_some()
    }

    /// Locates the trie node spelled by `word`, if present.
    pub fn locate(&self, word: &[LabelId]) -> Option<PrefixNodeId> {
        let mut node = self.root();
        for &label in word {
            node = *self.children[node].get(&label)?;
        }
        Some(node)
    }

    /// Returns whether a trie node is terminal (ends an inserted word).
    pub fn is_terminal(&self, node: PrefixNodeId) -> bool {
        self.terminal[node]
    }

    /// Children of a trie node, in label order.
    pub fn children(
        &self,
        node: PrefixNodeId,
    ) -> impl Iterator<Item = (LabelId, PrefixNodeId)> + '_ {
        self.children[node].iter().map(|(&l, &n)| (l, n))
    }

    /// All stored words, in lexicographic label order.
    pub fn words(&self) -> Vec<Word> {
        let mut result = Vec::new();
        let mut current = Vec::new();
        self.collect_words(self.root(), &mut current, &mut result);
        result
    }

    fn collect_words(&self, node: PrefixNodeId, current: &mut Word, out: &mut Vec<Word>) {
        if self.terminal[node] {
            out.push(current.clone());
        }
        for (label, child) in self.children[node].clone() {
            current.push(label);
            self.collect_words(child, current, out);
            current.pop();
        }
    }

    /// Depth-first walk of the tree invoking `visit(depth, label, node,
    /// is_terminal)` for every non-root node, in label order.  Used by the
    /// renderer.
    pub fn walk(&self, mut visit: impl FnMut(usize, LabelId, PrefixNodeId, bool)) {
        self.walk_inner(self.root(), 0, &mut visit);
    }

    fn walk_inner(
        &self,
        node: PrefixNodeId,
        depth: usize,
        visit: &mut impl FnMut(usize, LabelId, PrefixNodeId, bool),
    ) {
        for (label, child) in self.children[node].clone() {
            visit(depth, label, child, self.terminal[child]);
            self.walk_inner(child, depth + 1, visit);
        }
    }

    /// The longest stored word (ties broken lexicographically first).
    pub fn longest_word(&self) -> Option<Word> {
        self.words().into_iter().max_by_key(|w| w.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn empty_tree_has_only_root() {
        let tree = PrefixTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.word_count(), 0);
        assert!(!tree.contains(&[]));
        assert!(
            tree.contains_prefix(&[]),
            "empty word is a prefix of anything"
        );
    }

    #[test]
    fn insert_and_lookup() {
        let mut tree = PrefixTree::new();
        tree.insert(&[l(0), l(1)]);
        tree.insert(&[l(0), l(2)]);
        assert!(tree.contains(&[l(0), l(1)]));
        assert!(tree.contains(&[l(0), l(2)]));
        assert!(!tree.contains(&[l(0)]), "prefix is not a stored word");
        assert!(tree.contains_prefix(&[l(0)]));
        assert!(!tree.contains(&[l(1)]));
        assert_eq!(tree.word_count(), 2);
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let tree = PrefixTree::from_words(vec![vec![l(0), l(1), l(2)], vec![l(0), l(1), l(3)]]);
        // root + a + ab + abc + abd = 5 nodes
        assert_eq!(tree.node_count(), 5);
    }

    #[test]
    fn words_round_trip_in_sorted_order() {
        let tree = PrefixTree::from_words(vec![
            vec![l(2)],
            vec![l(0), l(1)],
            vec![l(0)],
            vec![l(0), l(1)],
        ]);
        assert_eq!(
            tree.words(),
            vec![vec![l(0)], vec![l(0), l(1)], vec![l(2)]],
            "duplicates collapse, order is lexicographic"
        );
    }

    #[test]
    fn empty_word_can_be_stored() {
        let mut tree = PrefixTree::new();
        tree.insert(&[]);
        assert!(tree.contains(&[]));
        assert_eq!(tree.word_count(), 1);
        assert_eq!(tree.words(), vec![Vec::<LabelId>::new()]);
    }

    #[test]
    fn walk_visits_in_label_order_with_depths() {
        let tree = PrefixTree::from_words(vec![vec![l(1), l(0)], vec![l(0)]]);
        let mut visits = Vec::new();
        tree.walk(|depth, label, _, terminal| visits.push((depth, label, terminal)));
        assert_eq!(
            visits,
            vec![(0, l(0), true), (0, l(1), false), (1, l(0), true)]
        );
    }

    #[test]
    fn longest_word_prefers_length() {
        let tree =
            PrefixTree::from_words(vec![vec![l(5)], vec![l(0), l(1), l(2)], vec![l(9), l(9)]]);
        assert_eq!(tree.longest_word(), Some(vec![l(0), l(1), l(2)]));
        assert_eq!(PrefixTree::new().longest_word(), None);
    }

    #[test]
    fn locate_and_children_expose_structure() {
        let tree = PrefixTree::from_words(vec![vec![l(0), l(1)], vec![l(0), l(2)]]);
        let node_a = tree.locate(&[l(0)]).unwrap();
        assert!(!tree.is_terminal(node_a));
        let kids: Vec<LabelId> = tree.children(node_a).map(|(lab, _)| lab).collect();
        assert_eq!(kids, vec![l(1), l(2)]);
        assert!(tree.locate(&[l(3)]).is_none());
    }
}
