//! Summary statistics over a graph: degree distributions, label usage and
//! connectivity.  Used by the dataset generators' self-checks, by the
//! benchmark harness when reporting workload characteristics, and — through
//! [`LabelStats`] — by the batch execution engine's direction-aware planner.

use crate::backend::GraphBackend;
use crate::ids::LabelId;
use crate::traversal::weakly_connected_components;
use std::collections::BTreeMap;

/// Aggregate statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges.
    pub edge_count: usize,
    /// Number of distinct labels.
    pub label_count: usize,
    /// Minimum out-degree over all nodes (0 for the empty graph).
    pub min_out_degree: usize,
    /// Maximum out-degree over all nodes (0 for the empty graph).
    pub max_out_degree: usize,
    /// Mean out-degree (0.0 for the empty graph).
    pub mean_out_degree: f64,
    /// Number of sink nodes (out-degree 0).
    pub sink_count: usize,
    /// Number of source nodes (in-degree 0).
    pub source_count: usize,
    /// Number of weakly connected components.
    pub weak_component_count: usize,
    /// Edge count per label.
    pub label_histogram: BTreeMap<LabelId, usize>,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute<B: GraphBackend>(graph: &B) -> Self {
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        let mut min_out = usize::MAX;
        let mut max_out = 0usize;
        let mut sinks = 0usize;
        let mut sources = 0usize;
        for node in graph.nodes() {
            let d = graph.out_degree(node);
            min_out = min_out.min(d);
            max_out = max_out.max(d);
            if d == 0 {
                sinks += 1;
            }
            if graph.in_degree(node) == 0 {
                sources += 1;
            }
        }
        if node_count == 0 {
            min_out = 0;
        }
        let mut label_histogram = BTreeMap::new();
        for (_, edge) in graph.edges_by_source() {
            *label_histogram.entry(edge.label).or_insert(0) += 1;
        }
        Self {
            node_count,
            edge_count,
            label_count: graph.label_count(),
            min_out_degree: min_out,
            max_out_degree: max_out,
            mean_out_degree: if node_count == 0 {
                0.0
            } else {
                edge_count as f64 / node_count as f64
            },
            sink_count: sinks,
            source_count: sources,
            weak_component_count: weakly_connected_components(graph).len(),
            label_histogram,
        }
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "|V|={} |E|={} |Σ|={} out-deg[min={}, mean={:.2}, max={}] sinks={} sources={} components={}",
            self.node_count,
            self.edge_count,
            self.label_count,
            self.min_out_degree,
            self.mean_out_degree,
            self.max_out_degree,
            self.sink_count,
            self.source_count,
            self.weak_component_count
        )
    }
}

/// Degree and frequency statistics of a single edge label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelStat {
    /// The label.
    pub label: LabelId,
    /// Number of edges carrying the label.
    pub edge_count: usize,
    /// Fraction of all edges carrying the label (0.0 for an edgeless graph).
    pub frequency: f64,
    /// Maximum number of outgoing edges with this label at a single node.
    pub max_out_degree: usize,
    /// Maximum number of incoming edges with this label at a single node.
    pub max_in_degree: usize,
    /// Number of distinct nodes with at least one outgoing edge of the label.
    pub source_count: usize,
    /// Number of distinct nodes with at least one incoming edge of the label.
    pub target_count: usize,
}

/// Per-label degree/frequency statistics over a whole graph.
///
/// This is the planner input of the batch execution engine (`gps-exec`): the
/// choice between forward, reverse and bidirectional expansion is driven by
/// how much of the edge set a query's labels cover and how skewed their
/// degrees are.  Also surfaced by `gps-cli stats`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabelStats {
    /// One entry per label, indexed by [`LabelId::index`].
    pub per_label: Vec<LabelStat>,
    /// Total node count of the graph.
    pub node_count: usize,
    /// Total edge count of the graph.
    pub edge_count: usize,
}

impl LabelStats {
    /// Computes per-label statistics for `graph` in one adjacency sweep.
    pub fn compute<B: GraphBackend>(graph: &B) -> Self {
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        let label_count = graph.label_count();
        let mut edge_counts = vec![0usize; label_count];
        let mut max_out = vec![0usize; label_count];
        let mut max_in = vec![0usize; label_count];
        let mut sources = vec![0usize; label_count];
        let mut targets = vec![0usize; label_count];

        // Scratch counters for the current node, reset via the touched list
        // so the sweep stays O(E + V) rather than O(V·|Σ|).
        let mut per_node = vec![0usize; label_count];
        let mut touched: Vec<usize> = Vec::new();

        for node in graph.nodes() {
            for (label, _) in graph.successors(node) {
                let i = label.index();
                if per_node[i] == 0 {
                    touched.push(i);
                }
                per_node[i] += 1;
            }
            for &i in &touched {
                edge_counts[i] += per_node[i];
                max_out[i] = max_out[i].max(per_node[i]);
                sources[i] += 1;
                per_node[i] = 0;
            }
            touched.clear();
        }
        for node in graph.nodes() {
            for (label, _) in graph.predecessors(node) {
                let i = label.index();
                if per_node[i] == 0 {
                    touched.push(i);
                }
                per_node[i] += 1;
            }
            for &i in &touched {
                max_in[i] = max_in[i].max(per_node[i]);
                targets[i] += 1;
                per_node[i] = 0;
            }
            touched.clear();
        }

        let per_label = (0..label_count)
            .map(|i| LabelStat {
                label: LabelId::from(i),
                edge_count: edge_counts[i],
                frequency: if edge_count == 0 {
                    0.0
                } else {
                    edge_counts[i] as f64 / edge_count as f64
                },
                max_out_degree: max_out[i],
                max_in_degree: max_in[i],
                source_count: sources[i],
                target_count: targets[i],
            })
            .collect();
        Self {
            per_label,
            node_count,
            edge_count,
        }
    }

    /// The statistics of `label`, if the label exists.
    pub fn get(&self, label: LabelId) -> Option<&LabelStat> {
        self.per_label.get(label.index())
    }

    /// Number of edges carrying `label` (0 for unknown labels).
    pub fn edge_count_of(&self, label: LabelId) -> usize {
        self.get(label).map(|s| s.edge_count).unwrap_or(0)
    }

    /// Fraction of all edges whose label is in `labels`.
    pub fn coverage(&self, labels: impl IntoIterator<Item = LabelId>) -> f64 {
        if self.edge_count == 0 {
            return 0.0;
        }
        let covered: usize = labels.into_iter().map(|l| self.edge_count_of(l)).sum();
        covered as f64 / self.edge_count as f64
    }

    /// Mean number of edges per node over the given labels.
    pub fn mean_degree(&self, labels: impl IntoIterator<Item = LabelId>) -> f64 {
        if self.node_count == 0 {
            return 0.0;
        }
        let covered: usize = labels.into_iter().map(|l| self.edge_count_of(l)).sum();
        covered as f64 / self.node_count as f64
    }

    /// One display line per label, for the CLI stats output.
    pub fn summary_lines<B: GraphBackend>(&self, graph: &B) -> Vec<String> {
        self.per_label
            .iter()
            .map(|s| {
                format!(
                    "{:<12} edges={:<6} freq={:>5.1}% max-out={} max-in={} sources={} targets={}",
                    graph.label_name(s.label).unwrap_or("?"),
                    s.edge_count,
                    s.frequency * 100.0,
                    s.max_out_degree,
                    s.max_in_degree,
                    s.source_count,
                    s.target_count,
                )
            })
            .collect()
    }
}

/// Per-label edge counts with label names resolved, for display.
pub fn label_usage<B: GraphBackend>(graph: &B) -> Vec<(String, usize)> {
    let stats = GraphStats::compute(graph);
    stats
        .label_histogram
        .iter()
        .map(|(&label, &count)| (graph.label_name(label).unwrap_or("?").to_string(), count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let _isolated = g.add_node("d");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "x", c);
        g
    }

    #[test]
    fn counts_are_correct() {
        let stats = GraphStats::compute(&sample());
        assert_eq!(stats.node_count, 4);
        assert_eq!(stats.edge_count, 3);
        assert_eq!(stats.label_count, 2);
        assert_eq!(stats.max_out_degree, 2);
        assert_eq!(stats.min_out_degree, 0);
        assert!((stats.mean_out_degree - 0.75).abs() < 1e-9);
    }

    #[test]
    fn sinks_sources_and_components() {
        let stats = GraphStats::compute(&sample());
        assert_eq!(stats.sink_count, 2, "c and the isolated node");
        assert_eq!(stats.source_count, 2, "a and the isolated node");
        assert_eq!(stats.weak_component_count, 2);
    }

    #[test]
    fn label_histogram_counts_edges_per_label() {
        let g = sample();
        let stats = GraphStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        assert_eq!(stats.label_histogram[&x], 2);
        assert_eq!(stats.label_histogram[&y], 1);
        let usage = label_usage(&g);
        assert!(usage.contains(&("x".to_string(), 2)));
    }

    #[test]
    fn empty_graph_stats_are_zeroed() {
        let stats = GraphStats::compute(&Graph::new());
        assert_eq!(stats.node_count, 0);
        assert_eq!(stats.min_out_degree, 0);
        assert_eq!(stats.mean_out_degree, 0.0);
        assert_eq!(stats.weak_component_count, 0);
    }

    #[test]
    fn label_stats_track_degrees_and_frequency() {
        let g = sample();
        let stats = LabelStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        assert_eq!(stats.node_count, 4);
        assert_eq!(stats.edge_count, 3);
        let sx = stats.get(x).unwrap();
        assert_eq!(sx.edge_count, 2);
        assert!((sx.frequency - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(sx.max_out_degree, 1, "a and b each have one x out-edge");
        assert_eq!(sx.max_in_degree, 1);
        assert_eq!(sx.source_count, 2);
        assert_eq!(sx.target_count, 2);
        let sy = stats.get(y).unwrap();
        assert_eq!(sy.edge_count, 1);
        assert_eq!(sy.source_count, 1);
    }

    #[test]
    fn label_stats_max_degrees_see_parallel_labels() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "x", c);
        g.add_edge_by_name(b, "x", c);
        let stats = LabelStats::compute(&g);
        let x = g.label_id("x").unwrap();
        assert_eq!(stats.get(x).unwrap().max_out_degree, 2, "a has two x edges");
        assert_eq!(stats.get(x).unwrap().max_in_degree, 2, "c receives two");
    }

    #[test]
    fn label_stats_coverage_and_mean_degree() {
        let g = sample();
        let stats = LabelStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        assert!((stats.coverage([x, y]) - 1.0).abs() < 1e-9);
        assert!((stats.coverage([y]) - 1.0 / 3.0).abs() < 1e-9);
        assert!((stats.mean_degree([x]) - 0.5).abs() < 1e-9);
        assert_eq!(stats.edge_count_of(crate::ids::LabelId::new(99)), 0);
        assert_eq!(stats.summary_lines(&g).len(), 2);
        assert!(stats.summary_lines(&g)[0].contains("edges="));
    }

    #[test]
    fn label_stats_on_empty_graph() {
        let stats = LabelStats::compute(&Graph::new());
        assert_eq!(stats.edge_count, 0);
        assert!(stats.per_label.is_empty());
        assert_eq!(stats.coverage([LabelId::new(0)]), 0.0);
        assert_eq!(stats.mean_degree([LabelId::new(0)]), 0.0);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let s = GraphStats::compute(&sample()).summary();
        assert!(s.contains("|V|=4"));
        assert!(s.contains("|E|=3"));
        assert!(s.contains("components=2"));
    }
}
