//! Summary statistics over a graph: degree distributions, label usage and
//! connectivity.  Used by the dataset generators' self-checks and by the
//! benchmark harness when reporting workload characteristics.

use crate::backend::GraphBackend;
use crate::ids::LabelId;
use crate::traversal::weakly_connected_components;
use std::collections::BTreeMap;

/// Aggregate statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges.
    pub edge_count: usize,
    /// Number of distinct labels.
    pub label_count: usize,
    /// Minimum out-degree over all nodes (0 for the empty graph).
    pub min_out_degree: usize,
    /// Maximum out-degree over all nodes (0 for the empty graph).
    pub max_out_degree: usize,
    /// Mean out-degree (0.0 for the empty graph).
    pub mean_out_degree: f64,
    /// Number of sink nodes (out-degree 0).
    pub sink_count: usize,
    /// Number of source nodes (in-degree 0).
    pub source_count: usize,
    /// Number of weakly connected components.
    pub weak_component_count: usize,
    /// Edge count per label.
    pub label_histogram: BTreeMap<LabelId, usize>,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute<B: GraphBackend>(graph: &B) -> Self {
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        let mut min_out = usize::MAX;
        let mut max_out = 0usize;
        let mut sinks = 0usize;
        let mut sources = 0usize;
        for node in graph.nodes() {
            let d = graph.out_degree(node);
            min_out = min_out.min(d);
            max_out = max_out.max(d);
            if d == 0 {
                sinks += 1;
            }
            if graph.in_degree(node) == 0 {
                sources += 1;
            }
        }
        if node_count == 0 {
            min_out = 0;
        }
        let mut label_histogram = BTreeMap::new();
        for (_, edge) in graph.edges_by_source() {
            *label_histogram.entry(edge.label).or_insert(0) += 1;
        }
        Self {
            node_count,
            edge_count,
            label_count: graph.label_count(),
            min_out_degree: min_out,
            max_out_degree: max_out,
            mean_out_degree: if node_count == 0 {
                0.0
            } else {
                edge_count as f64 / node_count as f64
            },
            sink_count: sinks,
            source_count: sources,
            weak_component_count: weakly_connected_components(graph).len(),
            label_histogram,
        }
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "|V|={} |E|={} |Σ|={} out-deg[min={}, mean={:.2}, max={}] sinks={} sources={} components={}",
            self.node_count,
            self.edge_count,
            self.label_count,
            self.min_out_degree,
            self.mean_out_degree,
            self.max_out_degree,
            self.sink_count,
            self.source_count,
            self.weak_component_count
        )
    }
}

/// Per-label edge counts with label names resolved, for display.
pub fn label_usage<B: GraphBackend>(graph: &B) -> Vec<(String, usize)> {
    let stats = GraphStats::compute(graph);
    stats
        .label_histogram
        .iter()
        .map(|(&label, &count)| (graph.label_name(label).unwrap_or("?").to_string(), count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let _isolated = g.add_node("d");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "x", c);
        g
    }

    #[test]
    fn counts_are_correct() {
        let stats = GraphStats::compute(&sample());
        assert_eq!(stats.node_count, 4);
        assert_eq!(stats.edge_count, 3);
        assert_eq!(stats.label_count, 2);
        assert_eq!(stats.max_out_degree, 2);
        assert_eq!(stats.min_out_degree, 0);
        assert!((stats.mean_out_degree - 0.75).abs() < 1e-9);
    }

    #[test]
    fn sinks_sources_and_components() {
        let stats = GraphStats::compute(&sample());
        assert_eq!(stats.sink_count, 2, "c and the isolated node");
        assert_eq!(stats.source_count, 2, "a and the isolated node");
        assert_eq!(stats.weak_component_count, 2);
    }

    #[test]
    fn label_histogram_counts_edges_per_label() {
        let g = sample();
        let stats = GraphStats::compute(&g);
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        assert_eq!(stats.label_histogram[&x], 2);
        assert_eq!(stats.label_histogram[&y], 1);
        let usage = label_usage(&g);
        assert!(usage.contains(&("x".to_string(), 2)));
    }

    #[test]
    fn empty_graph_stats_are_zeroed() {
        let stats = GraphStats::compute(&Graph::new());
        assert_eq!(stats.node_count, 0);
        assert_eq!(stats.min_out_degree, 0);
        assert_eq!(stats.mean_out_degree, 0.0);
        assert_eq!(stats.weak_component_count, 0);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let s = GraphStats::compute(&sample()).summary();
        assert!(s.contains("|V|=4"));
        assert!(s.contains("|E|=3"));
        assert!(s.contains("components=2"));
    }
}
