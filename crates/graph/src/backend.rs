//! The [`GraphBackend`] trait — the storage-agnostic read interface every
//! query layer is written against.
//!
//! GPS interleaves traversal-heavy RPQ evaluation, neighborhood rendering and
//! DFA learning over one graph store.  Historically all of that code was
//! hardwired to the concrete mutable [`Graph`](crate::Graph); this trait
//! abstracts the read operations those layers actually need — node/label
//! counts, forward and reverse labeled-neighbor iteration, degrees, and
//! label-interner access — so the same algorithms run unchanged on:
//!
//! * [`Graph`](crate::Graph) — the mutable adjacency-list store (build and
//!   mutate freely, pay pointer-chasing on traversal);
//! * [`CsrGraph`](crate::CsrGraph) — the immutable compressed-sparse-row
//!   snapshot (no mutation, cache-friendly contiguous scans).
//!
//! Future backends (sharded, memory-mapped, cached) only need to implement
//! this trait to light up RPQ evaluation, interactive sessions, learning and
//! rendering.
//!
//! ## Design notes
//!
//! Iteration is exposed through generic associated types so that every
//! backend's natural iterator (slice scans for CSR, adjacency-vector walks
//! for the mutable graph) is monomorphized into the query layers with zero
//! dispatch cost — the hot RPQ loop compiles down to the same code as the
//! hand-specialized CSR evaluator it replaced.  The trait is therefore not
//! object-safe; the layers take `B: GraphBackend` type parameters instead of
//! `&dyn` references.

use crate::graph::Edge;
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::labels::LabelInterner;

/// Read-only access to an edge-labeled directed multigraph.
///
/// See the [module docs](self) for the design rationale.  All methods take
/// node identifiers issued by this backend; passing foreign identifiers may
/// panic (mirroring the concrete stores).
pub trait GraphBackend {
    /// Iterator over `(label, neighbor)` pairs (targets for
    /// [`successors`](Self::successors), sources for
    /// [`predecessors`](Self::predecessors)).
    type Neighbors<'a>: Iterator<Item = (LabelId, NodeId)> + 'a
    where
        Self: 'a;

    /// Iterator over `(edge id, edge)` pairs incident to a node.
    type IncidentEdges<'a>: Iterator<Item = (EdgeId, Edge)> + 'a
    where
        Self: 'a;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of edges.
    fn edge_count(&self) -> usize;

    /// The label interner (the alphabet of the graph).
    fn labels(&self) -> &LabelInterner;

    /// The display name of a node.
    ///
    /// # Panics
    /// Panics when `node` does not belong to this backend.
    fn node_name(&self, node: NodeId) -> &str;

    /// Looks up the first node bearing `name`.
    fn node_by_name(&self, name: &str) -> Option<NodeId>;

    /// Outgoing `(label, target)` pairs of `node`, in storage order.
    fn successors(&self, node: NodeId) -> Self::Neighbors<'_>;

    /// Incoming `(label, source)` pairs of `node`, in storage order.
    fn predecessors(&self, node: NodeId) -> Self::Neighbors<'_>;

    /// Outgoing edges of `node` as `(EdgeId, Edge)` pairs.
    fn out_edges(&self, node: NodeId) -> Self::IncidentEdges<'_>;

    /// Incoming edges of `node` as `(EdgeId, Edge)` pairs.
    fn in_edges(&self, node: NodeId) -> Self::IncidentEdges<'_>;

    /// Out-degree of `node`.
    fn out_degree(&self, node: NodeId) -> usize;

    /// In-degree of `node`.
    fn in_degree(&self, node: NodeId) -> usize;

    // ------------------------------------------------------------- provided

    /// The version epoch of this backend.
    ///
    /// Mutable stores and fresh snapshots live at epoch 0; each
    /// [`DeltaGraph::compact`](crate::delta::DeltaGraph::compact) publish
    /// advances the produced snapshot by one.  Layers that cache per-snapshot
    /// state (bounded word sets, pruning scores) use `(epoch, node_count)` as
    /// the identity of the graph they computed against, so a superseded
    /// snapshot is never mistaken for the current one merely because the
    /// counts agree.
    fn epoch(&self) -> u64 {
        0
    }

    /// Number of distinct labels (alphabet size).
    fn label_count(&self) -> usize {
        self.labels().len()
    }

    /// The name of a label, if it exists.
    fn label_name(&self, label: LabelId) -> Option<&str> {
        self.labels().name(label)
    }

    /// Looks up a label by name without interning.
    fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels().get(name)
    }

    /// Returns `true` when `node` is a valid identifier of this backend.
    fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// Returns `true` when the backend has no nodes.
    fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// All node identifiers, in ascending order.
    fn nodes(&self) -> NodeIds {
        NodeIds {
            range: 0..self.node_count(),
        }
    }

    /// All edges as `(EdgeId, Edge)` pairs, grouped by source node.
    ///
    /// Deliberately *not* named `edges`: the inherent
    /// [`Graph::edges`](crate::Graph::edges) iterates in insertion order,
    /// while backends only guarantee the edge *multiset* — a distinct name
    /// keeps the ordering difference visible when code moves from concrete
    /// to generic.
    fn edges_by_source(&self) -> BackendEdges<'_, Self>
    where
        Self: Sized,
    {
        BackendEdges {
            backend: self,
            nodes: self.nodes(),
            current: None,
        }
    }

    /// Returns `true` when at least one `source --label--> target` edge
    /// exists.
    fn has_edge(&self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        self.successors(source)
            .any(|(l, t)| l == label && t == target)
    }
}

/// Iterator over the node identifiers of a backend.
#[derive(Debug, Clone)]
pub struct NodeIds {
    range: std::ops::Range<usize>,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId::from)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl DoubleEndedIterator for NodeIds {
    fn next_back(&mut self) -> Option<NodeId> {
        self.range.next_back().map(NodeId::from)
    }
}

impl ExactSizeIterator for NodeIds {}

/// Iterator over all edges of a backend, node by node.
pub struct BackendEdges<'a, B: GraphBackend> {
    backend: &'a B,
    nodes: NodeIds,
    current: Option<B::IncidentEdges<'a>>,
}

impl<'a, B: GraphBackend> Iterator for BackendEdges<'a, B> {
    type Item = (EdgeId, Edge);

    fn next(&mut self) -> Option<(EdgeId, Edge)> {
        loop {
            if let Some(edges) = &mut self.current {
                if let Some(item) = edges.next() {
                    return Some(item);
                }
            }
            let node = self.nodes.next()?;
            self.current = Some(self.backend.out_edges(node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(a, "y", c);
        g
    }

    fn exercise<B: GraphBackend>(backend: &B) {
        assert_eq!(backend.node_count(), 3);
        assert_eq!(backend.edge_count(), 3);
        assert_eq!(backend.label_count(), 2);
        assert!(!backend.is_empty());
        let a = backend.node_by_name("A").unwrap();
        let c = backend.node_by_name("C").unwrap();
        assert_eq!(backend.node_name(a), "A");
        assert_eq!(backend.out_degree(a), 2);
        assert_eq!(backend.in_degree(c), 2);
        assert!(backend.contains_node(a));
        assert!(!backend.contains_node(NodeId::new(9)));
        let x = backend.label_id("x").unwrap();
        let b = backend.node_by_name("B").unwrap();
        assert!(backend.has_edge(a, x, b));
        assert!(!backend.has_edge(a, x, c));
        assert_eq!(backend.nodes().count(), 3);
        assert_eq!(backend.edges_by_source().count(), 3);
        assert_eq!(backend.successors(a).count(), 2);
        assert_eq!(backend.predecessors(c).count(), 2);
        assert_eq!(backend.label_name(x), Some("x"));
    }

    #[test]
    fn adjacency_backend_satisfies_the_contract() {
        exercise(&sample());
    }

    #[test]
    fn csr_backend_satisfies_the_contract() {
        exercise(&CsrGraph::from_graph(&sample()));
    }

    #[test]
    fn backends_agree_on_edge_multisets() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let mut graph_edges: Vec<(EdgeId, Edge)> = g.edges_by_source().collect();
        let mut csr_edges: Vec<(EdgeId, Edge)> = csr.edges_by_source().collect();
        graph_edges.sort_by_key(|&(id, _)| id);
        csr_edges.sort_by_key(|&(id, _)| id);
        assert_eq!(graph_edges, csr_edges);
    }

    #[test]
    fn node_ids_iterate_both_ways() {
        let g = sample();
        let forward: Vec<NodeId> = GraphBackend::nodes(&g).collect();
        let backward: Vec<NodeId> = GraphBackend::nodes(&g).rev().collect();
        assert_eq!(forward.len(), 3);
        assert_eq!(backward.first(), forward.last());
    }
}
