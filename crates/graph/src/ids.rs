//! Strongly-typed identifiers for nodes, edges and labels.
//!
//! All identifiers are thin newtypes around `u32`, which keeps the hot
//! traversal structures compact (see the type-size guidance for database
//! workloads) while still being convertible to `usize` for indexing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::Graph`].
///
/// Node identifiers are dense: the `i`-th node added to a graph receives
/// identifier `i`. They are only meaningful relative to the graph that issued
/// them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Identifier of an edge label (an interned symbol of the alphabet).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelId(pub u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:expr) => {
        impl $ty {
            /// Builds an identifier from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the identifier as a `usize`, suitable for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $ty {
            #[inline]
            fn from(value: u32) -> Self {
                Self(value)
            }
        }

        impl From<usize> for $ty {
            #[inline]
            fn from(value: usize) -> Self {
                debug_assert!(value <= u32::MAX as usize, "identifier overflow");
                Self(value as u32)
            }
        }

        impl From<$ty> for usize {
            #[inline]
            fn from(value: $ty) -> usize {
                value.index()
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(NodeId, "n");
impl_id!(EdgeId, "e");
impl_id!(LabelId, "l");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_usize() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42usize), id);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
        assert!(LabelId::new(3) > LabelId::new(2));
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
        assert_eq!(LabelId::new(7).to_string(), "l7");
        assert_eq!(format!("{:?}", NodeId::new(7)), "n7");
    }

    #[test]
    fn raw_round_trip() {
        assert_eq!(LabelId::from(9u32).raw(), 9);
        assert_eq!(EdgeId::from(5u32).raw(), 5);
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<LabelId>(), 4);
    }
}
