//! *k*-neighborhood extraction (Figure 3(a)/(b) of the paper).
//!
//! Before asking the user to label a node, GPS shows her a small fragment of
//! the graph: all nodes and edges at distance at most *k* from the proposed
//! node (initially *k* = 2).  Parts of the graph reachable from the fragment
//! but not included are marked with "…" continuation markers; when the user
//! zooms out (*k* → *k+1*) the newly revealed nodes and edges are
//! highlighted.  [`Neighborhood`] captures the fragment, frontier and
//! continuation information, and [`NeighborhoodDelta`] captures the zoom
//! highlight.

use crate::backend::GraphBackend;
use crate::graph::Edge;
use crate::ids::{EdgeId, NodeId};
use crate::traversal::{bfs, Direction};
use std::collections::BTreeSet;

/// A fragment of the graph around a center node: all nodes and edges at
/// distance at most `radius` from the center, following outgoing edges (the
/// direction in which paths — and therefore query answers — are defined).
#[derive(Debug, Clone)]
pub struct Neighborhood {
    center: NodeId,
    radius: u32,
    /// Nodes in the fragment, sorted by id, with their BFS distance.
    nodes: Vec<(NodeId, u32)>,
    /// Edges whose both endpoints are in the fragment and which lie on some
    /// path of length at most `radius` from the center.
    edges: Vec<(EdgeId, Edge)>,
    /// Nodes of the fragment that have at least one outgoing edge leaving
    /// the fragment — these are rendered with a "…" continuation marker.
    continuations: Vec<NodeId>,
}

impl Neighborhood {
    /// Extracts the neighborhood of `center` with the given `radius`
    /// (maximum number of edges from the center).
    pub fn extract<B: GraphBackend>(graph: &B, center: NodeId, radius: u32) -> Self {
        let distances = bfs(graph, center, Some(radius), Direction::Forward);
        let mut nodes: Vec<(NodeId, u32)> = distances.reachable().collect();
        nodes.sort_by_key(|&(n, _)| n);

        let in_fragment: BTreeSet<NodeId> = nodes.iter().map(|&(n, _)| n).collect();

        let mut edges = Vec::new();
        let mut continuations = BTreeSet::new();
        for &(node, dist) in &nodes {
            for (edge_id, edge) in graph.out_edges(node) {
                // The edge is inside the fragment only when it can be part of
                // a path of length <= radius from the center and its target
                // was reached within the radius.
                if dist < radius && in_fragment.contains(&edge.target) {
                    edges.push((edge_id, edge));
                } else {
                    continuations.insert(node);
                }
            }
        }
        edges.sort_by_key(|&(id, _)| id);

        Self {
            center,
            radius,
            nodes,
            edges,
            continuations: continuations.into_iter().collect(),
        }
    }

    /// The node the neighborhood is centered on.
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The radius (maximum distance from the center) of the fragment.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Nodes of the fragment with their distance from the center, sorted by
    /// node id.
    pub fn nodes(&self) -> &[(NodeId, u32)] {
        &self.nodes
    }

    /// Node ids of the fragment, sorted.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|&(n, _)| n).collect()
    }

    /// Edges of the fragment, sorted by edge id.
    pub fn edges(&self) -> &[(EdgeId, Edge)] {
        &self.edges
    }

    /// Nodes that have outgoing edges pointing outside the fragment.  The
    /// renderer draws these with a "…" marker, exactly as in Figure 3.
    pub fn continuations(&self) -> &[NodeId] {
        &self.continuations
    }

    /// Returns `true` if `node` is part of the fragment.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search_by_key(&node, |&(n, _)| n).is_ok()
    }

    /// Distance of `node` from the center, if it is in the fragment.
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        self.nodes
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| self.nodes[i].1)
    }

    /// Number of nodes in the fragment.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the fragment.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Zooms out by one: returns the neighborhood of the same center with
    /// radius `radius + 1` together with the delta against `self`.
    pub fn zoom_out<B: GraphBackend>(&self, graph: &B) -> (Neighborhood, NeighborhoodDelta) {
        let larger = Neighborhood::extract(graph, self.center, self.radius + 1);
        let delta = NeighborhoodDelta::between(self, &larger);
        (larger, delta)
    }
}

/// The difference between two neighborhoods of the same center — the nodes
/// and edges revealed by a zoom-out, which the UI highlights (drawn in blue
/// in Figure 3(b)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NeighborhoodDelta {
    /// Nodes present in the larger fragment but not the smaller one.
    pub added_nodes: Vec<NodeId>,
    /// Edges present in the larger fragment but not the smaller one.
    pub added_edges: Vec<EdgeId>,
}

impl NeighborhoodDelta {
    /// Computes the delta from `smaller` to `larger`.
    ///
    /// Both neighborhoods must be centered on the same node; the delta of
    /// unrelated fragments is not meaningful.
    pub fn between(smaller: &Neighborhood, larger: &Neighborhood) -> Self {
        debug_assert_eq!(smaller.center(), larger.center());
        let small_nodes: BTreeSet<NodeId> = smaller.node_ids().into_iter().collect();
        let small_edges: BTreeSet<EdgeId> = smaller.edges.iter().map(|&(id, _)| id).collect();
        let added_nodes = larger
            .node_ids()
            .into_iter()
            .filter(|n| !small_nodes.contains(n))
            .collect();
        let added_edges = larger
            .edges
            .iter()
            .map(|&(id, _)| id)
            .filter(|id| !small_edges.contains(id))
            .collect();
        Self {
            added_nodes,
            added_edges,
        }
    }

    /// Returns `true` when the zoom revealed nothing new (the fragment had
    /// already saturated its reachable region).
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty() && self.added_edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// The Figure 1 fragment around N2:
    /// N2 -bus-> N1 -tram-> N4 -cinema-> C1, N2 -bus-> N3, N2 -restaurant-> R1,
    /// N3 -bus-> N2 (cycle), N1 -... etc.  We model a simplified version that
    /// has the same radius behaviour.
    fn sample() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n3 = g.add_node("N3");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        let r1 = g.add_node("R1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n2, "bus", n3);
        g.add_edge_by_name(n2, "restaurant", r1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g.add_edge_by_name(n3, "bus", n2);
        (g, vec![n1, n2, n3, n4, c1, r1])
    }

    #[test]
    fn radius_two_fragment_contains_two_hop_nodes() {
        let (g, n) = sample();
        let hood = Neighborhood::extract(&g, n[1], 2);
        assert_eq!(hood.center(), n[1]);
        assert_eq!(hood.radius(), 2);
        // N2 itself, N1, N3, R1 (1 hop), N4 (2 hops via N1), N2 via cycle is
        // already present.
        assert!(hood.contains(n[0]));
        assert!(hood.contains(n[3]));
        assert!(!hood.contains(n[4]), "C1 is at distance 3");
        assert_eq!(hood.distance(n[3]), Some(2));
        assert_eq!(hood.distance(n[1]), Some(0));
    }

    #[test]
    fn continuations_mark_frontier_nodes() {
        let (g, n) = sample();
        let hood = Neighborhood::extract(&g, n[1], 2);
        // N4 has an outgoing edge to C1 outside the fragment.
        assert!(hood.continuations().contains(&n[3]));
        // R1 has no outgoing edges, so it is not a continuation.
        assert!(!hood.continuations().contains(&n[5]));
    }

    #[test]
    fn zoom_out_reveals_the_cinema() {
        let (g, n) = sample();
        let hood2 = Neighborhood::extract(&g, n[1], 2);
        let (hood3, delta) = hood2.zoom_out(&g);
        assert_eq!(hood3.radius(), 3);
        assert!(hood3.contains(n[4]), "C1 revealed at radius 3");
        assert!(delta.added_nodes.contains(&n[4]));
        assert!(!delta.is_empty());
        // The delta contains the cinema edge.
        assert_eq!(delta.added_edges.len(), 1);
    }

    #[test]
    fn saturated_zoom_produces_empty_delta() {
        let (g, n) = sample();
        let hood = Neighborhood::extract(&g, n[1], 10);
        let (larger, delta) = hood.zoom_out(&g);
        assert_eq!(larger.node_count(), hood.node_count());
        assert!(delta.is_empty());
    }

    #[test]
    fn radius_zero_is_just_the_center() {
        let (g, n) = sample();
        let hood = Neighborhood::extract(&g, n[1], 0);
        assert_eq!(hood.node_count(), 1);
        assert_eq!(hood.edge_count(), 0);
        assert!(hood.continuations().contains(&n[1]));
    }

    #[test]
    fn edges_do_not_leave_the_radius() {
        let (g, n) = sample();
        let hood = Neighborhood::extract(&g, n[1], 1);
        // Fragment nodes: N2, N1, N3, R1.  The N1 -tram-> N4 edge must not
        // appear even though both look "close".
        assert!(hood.contains(n[0]));
        assert!(!hood.contains(n[3]));
        for (_, e) in hood.edges() {
            assert!(hood.contains(e.source) && hood.contains(e.target));
        }
        // The N3 -bus-> N2 cycle edge is at the frontier: N3 is at distance 1
        // (== radius) so its outgoing edges are continuations, not edges.
        assert!(hood.continuations().contains(&n[2]));
    }

    #[test]
    fn sink_center_has_trivial_neighborhood() {
        let (g, n) = sample();
        let hood = Neighborhood::extract(&g, n[4], 2);
        assert_eq!(hood.node_count(), 1);
        assert!(hood.continuations().is_empty());
    }
}
