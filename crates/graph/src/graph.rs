//! The mutable, adjacency-list graph database.
//!
//! [`Graph`] is the primary store: an edge-labeled directed multigraph with
//! named nodes, forward and reverse adjacency lists, and an embedded
//! [`LabelInterner`].  It supports the operations the GPS system needs while
//! staying simple to reason about; read-heavy code converts it to a
//! [`crate::CsrGraph`] snapshot first.

use crate::backend::GraphBackend;
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::labels::LabelInterner;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A directed, labeled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub source: NodeId,
    /// Edge label.
    pub label: LabelId,
    /// Target node.
    pub target: NodeId,
}

impl Edge {
    /// Builds an edge record.
    pub fn new(source: NodeId, label: LabelId, target: NodeId) -> Self {
        Self {
            source,
            label,
            target,
        }
    }
}

/// An edge-labeled directed multigraph with named nodes.
///
/// Nodes and edges receive dense identifiers in insertion order.  Parallel
/// edges (same source, label and target) are permitted but
/// [`Graph::add_edge_dedup`] can be used to avoid them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    node_names: Vec<String>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out_adjacency: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_adjacency: Vec<Vec<EdgeId>>,
    labels: LabelInterner,
    #[serde(skip)]
    name_index: BTreeMap<String, NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `nodes` nodes and `edges`
    /// edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            node_names: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adjacency: Vec::with_capacity(nodes),
            in_adjacency: Vec::with_capacity(nodes),
            labels: LabelInterner::new(),
            name_index: BTreeMap::new(),
        }
    }

    // ----------------------------------------------------------------- nodes

    /// Adds a node with the given display name and returns its identifier.
    ///
    /// Names are not required to be unique, but [`Graph::node_by_name`] only
    /// resolves to the first node bearing a name.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from(self.node_names.len());
        let name = name.into();
        self.name_index.entry(name.clone()).or_insert(id);
        self.node_names.push(name);
        self.out_adjacency.push(Vec::new());
        self.in_adjacency.push(Vec::new());
        id
    }

    /// Adds `count` anonymous nodes named `prefix0`, `prefix1`, … and returns
    /// their identifiers.
    pub fn add_nodes(&mut self, prefix: &str, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|i| self.add_node(format!("{prefix}{i}")))
            .collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_names.is_empty()
    }

    /// Returns the display name of a node.
    ///
    /// # Panics
    /// Panics if `node` does not belong to this graph.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Looks up the first node bearing `name`.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Iterates over all node identifiers in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len()).map(NodeId::from)
    }

    /// Returns `true` if `node` is a valid identifier of this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_names.len()
    }

    // ---------------------------------------------------------------- labels

    /// Interns (or looks up) a label string.
    pub fn label(&mut self, name: &str) -> LabelId {
        self.labels.intern(name)
    }

    /// Looks up a label without interning.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name)
    }

    /// Returns the name of a label.
    pub fn label_name(&self, label: LabelId) -> Option<&str> {
        self.labels.name(label)
    }

    /// The label interner (the alphabet of the graph).
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Number of distinct labels (alphabet size).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    // ----------------------------------------------------------------- edges

    /// Adds a directed edge `source --label--> target` and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint does not belong to this graph.
    pub fn add_edge(&mut self, source: NodeId, label: LabelId, target: NodeId) -> EdgeId {
        assert!(self.contains_node(source), "unknown source node {source}");
        assert!(self.contains_node(target), "unknown target node {target}");
        let id = EdgeId::from(self.edges.len());
        self.edges.push(Edge::new(source, label, target));
        self.out_adjacency[source.index()].push(id);
        self.in_adjacency[target.index()].push(id);
        id
    }

    /// Adds an edge unless an identical `(source, label, target)` edge
    /// already exists; returns the id of the existing or new edge.
    pub fn add_edge_dedup(&mut self, source: NodeId, label: LabelId, target: NodeId) -> EdgeId {
        if let Some(existing) = self.out_adjacency[source.index()]
            .iter()
            .copied()
            .find(|&e| {
                let edge = self.edges[e.index()];
                edge.label == label && edge.target == target
            })
        {
            return existing;
        }
        self.add_edge(source, label, target)
    }

    /// Convenience: adds an edge, interning the label by name.
    pub fn add_edge_by_name(&mut self, source: NodeId, label: &str, target: NodeId) -> EdgeId {
        let label = self.label(label);
        self.add_edge(source, label, target)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns an edge record.
    ///
    /// # Panics
    /// Panics if `edge` does not belong to this graph.
    pub fn edge(&self, edge: EdgeId) -> Edge {
        self.edges[edge.index()]
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId::from(i), e))
    }

    /// Outgoing edges of `node` as `(EdgeId, Edge)` pairs.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.out_adjacency[node.index()]
            .iter()
            .map(move |&id| (id, self.edges[id.index()]))
    }

    /// Incoming edges of `node` as `(EdgeId, Edge)` pairs.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.in_adjacency[node.index()]
            .iter()
            .map(move |&id| (id, self.edges[id.index()]))
    }

    /// Successors of `node` as `(label, target)` pairs.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = (LabelId, NodeId)> + '_ {
        self.out_edges(node).map(|(_, e)| (e.label, e.target))
    }

    /// Predecessors of `node` as `(label, source)` pairs.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = (LabelId, NodeId)> + '_ {
        self.in_edges(node).map(|(_, e)| (e.label, e.source))
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adjacency[node.index()].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_adjacency[node.index()].len()
    }

    /// Returns `true` if there is at least one `source --label--> target`
    /// edge.
    pub fn has_edge(&self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        self.out_edges(source)
            .any(|(_, e)| e.label == label && e.target == target)
    }

    /// Rebuilds indexes that are skipped during serialization.  Must be
    /// called after deserializing a graph with `serde`.
    pub fn rebuild_indexes(&mut self) {
        self.labels.rebuild_index();
        self.name_index = self
            .node_names
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), NodeId::from(i)))
            .collect();
        // Keep only the first node per name, mirroring insertion behaviour.
        let mut first = BTreeMap::new();
        for (i, name) in self.node_names.iter().enumerate() {
            first.entry(name.clone()).or_insert(NodeId::from(i));
        }
        self.name_index = first;
    }
}

/// Iterator over the `(label, neighbor)` pairs of an adjacency list.
pub struct AdjacencyNeighbors<'a> {
    edges: &'a [Edge],
    ids: std::slice::Iter<'a, EdgeId>,
    reverse: bool,
}

impl<'a> Iterator for AdjacencyNeighbors<'a> {
    type Item = (LabelId, NodeId);

    #[inline]
    fn next(&mut self) -> Option<(LabelId, NodeId)> {
        self.ids.next().map(|id| {
            let edge = self.edges[id.index()];
            if self.reverse {
                (edge.label, edge.source)
            } else {
                (edge.label, edge.target)
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl<'a> ExactSizeIterator for AdjacencyNeighbors<'a> {}

/// Iterator over the `(EdgeId, Edge)` pairs of an adjacency list.
pub struct AdjacencyEdges<'a> {
    edges: &'a [Edge],
    ids: std::slice::Iter<'a, EdgeId>,
}

impl<'a> Iterator for AdjacencyEdges<'a> {
    type Item = (EdgeId, Edge);

    #[inline]
    fn next(&mut self) -> Option<(EdgeId, Edge)> {
        self.ids.next().map(|&id| (id, self.edges[id.index()]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl<'a> ExactSizeIterator for AdjacencyEdges<'a> {}

impl GraphBackend for Graph {
    type Neighbors<'a> = AdjacencyNeighbors<'a>;
    type IncidentEdges<'a> = AdjacencyEdges<'a>;

    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn labels(&self) -> &LabelInterner {
        Graph::labels(self)
    }

    fn node_name(&self, node: NodeId) -> &str {
        Graph::node_name(self, node)
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        Graph::node_by_name(self, name)
    }

    fn successors(&self, node: NodeId) -> AdjacencyNeighbors<'_> {
        AdjacencyNeighbors {
            edges: &self.edges,
            ids: self.out_adjacency[node.index()].iter(),
            reverse: false,
        }
    }

    fn predecessors(&self, node: NodeId) -> AdjacencyNeighbors<'_> {
        AdjacencyNeighbors {
            edges: &self.edges,
            ids: self.in_adjacency[node.index()].iter(),
            reverse: true,
        }
    }

    fn out_edges(&self, node: NodeId) -> AdjacencyEdges<'_> {
        AdjacencyEdges {
            edges: &self.edges,
            ids: self.out_adjacency[node.index()].iter(),
        }
    }

    fn in_edges(&self, node: NodeId) -> AdjacencyEdges<'_> {
        AdjacencyEdges {
            edges: &self.edges,
            ids: self.in_adjacency[node.index()].iter(),
        }
    }

    fn out_degree(&self, node: NodeId) -> usize {
        Graph::out_degree(self, node)
    }

    fn in_degree(&self, node: NodeId) -> usize {
        Graph::in_degree(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(a, "y", c);
        (g, a, b, c)
    }

    #[test]
    fn nodes_receive_dense_ids() {
        let (g, a, b, c) = tiny();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.nodes().collect::<Vec<_>>(), vec![a, b, c]);
    }

    #[test]
    fn node_names_and_lookup() {
        let (g, a, _, _) = tiny();
        assert_eq!(g.node_name(a), "A");
        assert_eq!(g.node_by_name("A"), Some(a));
        assert_eq!(g.node_by_name("Z"), None);
    }

    #[test]
    fn edges_and_adjacency() {
        let (g, a, b, c) = tiny();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(c), 2);
        assert_eq!(g.out_degree(c), 0);
        let succ: Vec<_> = g.successors(a).map(|(_, t)| t).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<_> = g.predecessors(c).map(|(_, s)| s).collect();
        assert_eq!(pred, vec![b, a]);
    }

    #[test]
    fn has_edge_checks_label_and_target() {
        let (g, a, b, c) = tiny();
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        assert!(g.has_edge(a, x, b));
        assert!(!g.has_edge(a, x, c));
        assert!(g.has_edge(a, y, c));
    }

    #[test]
    fn dedup_edge_insertion() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let x = g.label("x");
        let e1 = g.add_edge_dedup(a, x, b);
        let e2 = g.add_edge_dedup(a, x, b);
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        // Plain add_edge allows parallel edges.
        g.add_edge(a, x, b);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn add_nodes_uses_prefix() {
        let mut g = Graph::new();
        let ids = g.add_nodes("N", 3);
        assert_eq!(ids.len(), 3);
        assert_eq!(g.node_name(ids[0]), "N0");
        assert_eq!(g.node_name(ids[2]), "N2");
    }

    #[test]
    fn label_interning_is_shared() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge_by_name(a, "t", b);
        g.add_edge_by_name(b, "t", a);
        assert_eq!(g.label_count(), 1);
        assert_eq!(g.label_name(g.label_id("t").unwrap()), Some("t"));
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn adding_edge_with_foreign_node_panics() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let x = g.label("x");
        g.add_edge(NodeId::new(7), x, a);
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let (g, a, _, c) = tiny();
        let json = serde_json::to_string(&g).unwrap();
        let mut restored: Graph = serde_json::from_str(&json).unwrap();
        restored.rebuild_indexes();
        assert_eq!(restored.node_count(), g.node_count());
        assert_eq!(restored.edge_count(), g.edge_count());
        assert_eq!(restored.node_by_name("A"), Some(a));
        assert!(restored.label_id("y").is_some());
        assert_eq!(restored.in_degree(c), 2);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g = Graph::with_capacity(10, 20);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
