//! Graphviz DOT export of graphs and neighborhoods.
//!
//! The demo visualizes graph fragments graphically.  Besides the textual
//! renderer in `gps-core`, this module emits Graphviz DOT so fragments can be
//! rendered with standard tooling (`dot -Tsvg`).  Neighborhood exports
//! reproduce the visual conventions of Figure 3: the proposed node is drawn
//! with a double border, nodes revealed by the last zoom are drawn in blue,
//! and frontier nodes carry a dashed "…" edge.

use crate::backend::GraphBackend;
use crate::ids::NodeId;
use crate::neighborhood::{Neighborhood, NeighborhoodDelta};
use std::fmt::Write as _;

fn quote(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\\\""))
}

/// Exports the whole graph as a DOT digraph.
pub fn graph_to_dot<B: GraphBackend>(graph: &B, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", quote(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse];");
    for node in graph.nodes() {
        let _ = writeln!(out, "  {};", quote(graph.node_name(node)));
    }
    for (_, edge) in graph.edges_by_source() {
        let _ = writeln!(
            out,
            "  {} -> {} [label={}];",
            quote(graph.node_name(edge.source)),
            quote(graph.node_name(edge.target)),
            quote(graph.label_name(edge.label).unwrap_or("?"))
        );
    }
    out.push_str("}\n");
    out
}

/// Exports a neighborhood fragment as a DOT digraph, following the visual
/// conventions of Figure 3 (see module docs).  `delta` marks the nodes
/// revealed by the last zoom-out in blue.
pub fn neighborhood_to_dot<B: GraphBackend>(
    graph: &B,
    neighborhood: &Neighborhood,
    delta: Option<&NeighborhoodDelta>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph neighborhood {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let is_new = |node: NodeId| {
        delta
            .map(|d| d.added_nodes.contains(&node))
            .unwrap_or(false)
    };
    for &(node, _) in neighborhood.nodes() {
        let name = quote(graph.node_name(node));
        let mut attrs: Vec<&str> = Vec::new();
        if node == neighborhood.center() {
            attrs.push("peripheries=2");
        }
        if is_new(node) {
            attrs.push("color=blue");
            attrs.push("fontcolor=blue");
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {name};");
        } else {
            let _ = writeln!(out, "  {name} [{}];", attrs.join(", "));
        }
    }
    for (edge_id, edge) in neighborhood.edges() {
        let new_edge = delta
            .map(|d| d.added_edges.contains(edge_id))
            .unwrap_or(false);
        let color = if new_edge {
            ", color=blue, fontcolor=blue"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} -> {} [label={}{color}];",
            quote(graph.node_name(edge.source)),
            quote(graph.node_name(edge.target)),
            quote(graph.label_name(edge.label).unwrap_or("?"))
        );
    }
    // Continuation markers: one dashed edge to an invisible "…" node per
    // frontier node.
    for (i, &node) in neighborhood.continuations().iter().enumerate() {
        let ghost = format!("\"…{i}\"");
        let _ = writeln!(out, "  {ghost} [label=\"…\", shape=none];");
        let _ = writeln!(
            out,
            "  {} -> {ghost} [style=dashed, arrowhead=none];",
            quote(graph.node_name(node))
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let n2 = g.add_node("N2");
        let n1 = g.add_node("N1");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g
    }

    #[test]
    fn graph_export_lists_every_node_and_edge() {
        let g = sample();
        let dot = graph_to_dot(&g, "figure1");
        assert!(dot.starts_with("digraph \"figure1\" {"));
        assert!(dot.trim_end().ends_with('}'));
        for name in ["N1", "N2", "N4", "C1"] {
            assert!(dot.contains(&format!("\"{name}\"")));
        }
        assert!(dot.contains("\"N2\" -> \"N1\" [label=\"bus\"];"));
        assert!(dot.contains("\"N4\" -> \"C1\" [label=\"cinema\"];"));
        assert_eq!(dot.matches("->").count(), g.edge_count());
    }

    #[test]
    fn neighborhood_export_marks_the_center_and_frontier() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let hood = Neighborhood::extract(&g, n2, 2);
        let dot = neighborhood_to_dot(&g, &hood, None);
        assert!(dot.contains("\"N2\" [peripheries=2];"));
        // N4 is at the frontier (its cinema edge leaves the fragment).
        assert!(dot.contains("style=dashed"));
        assert!(!dot.contains("\"C1\""), "C1 is outside the radius");
    }

    #[test]
    fn zoom_delta_is_drawn_in_blue() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let hood2 = Neighborhood::extract(&g, n2, 2);
        let (hood3, delta) = hood2.zoom_out(&g);
        let dot = neighborhood_to_dot(&g, &hood3, Some(&delta));
        assert!(dot.contains("\"C1\" [color=blue, fontcolor=blue];"));
        assert!(dot.contains("color=blue];"), "the revealing edge is blue");
        assert!(!dot.contains("\"N1\" [color=blue"), "old nodes stay black");
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let mut g = Graph::new();
        let a = g.add_node("a\"b");
        let b = g.add_node("plain");
        g.add_edge_by_name(a, "x", b);
        let dot = graph_to_dot(&g, "test");
        assert!(dot.contains("\"a\\\"b\""));
    }
}
