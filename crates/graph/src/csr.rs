//! Immutable compressed-sparse-row (CSR) snapshot of a [`Graph`].
//!
//! The interactive loop and the RPQ evaluator traverse the graph heavily and
//! never mutate it.  [`CsrGraph`] packs the adjacency into two flat arrays
//! (offsets + `(label, target)` pairs) for cache-friendly scans, and keeps a
//! reverse CSR for backward traversals used by the evaluator's fixed point.

use crate::graph::Graph;
use crate::ids::{LabelId, NodeId};

/// One packed adjacency entry: the label of an edge and its other endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrEntry {
    /// The label carried by the edge.
    pub label: LabelId,
    /// The other endpoint (target for forward CSR, source for reverse CSR).
    pub node: NodeId,
}

/// An immutable CSR snapshot with both forward and reverse adjacency.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    node_count: usize,
    label_count: usize,
    fwd_offsets: Vec<u32>,
    fwd_entries: Vec<CsrEntry>,
    rev_offsets: Vec<u32>,
    rev_entries: Vec<CsrEntry>,
}

impl CsrGraph {
    /// Builds a CSR snapshot from a mutable [`Graph`].
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();

        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_entries = Vec::with_capacity(m);
        fwd_offsets.push(0);
        for node in graph.nodes() {
            for (label, target) in graph.successors(node) {
                fwd_entries.push(CsrEntry {
                    label,
                    node: target,
                });
            }
            fwd_offsets.push(fwd_entries.len() as u32);
        }

        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_entries = Vec::with_capacity(m);
        rev_offsets.push(0);
        for node in graph.nodes() {
            for (label, source) in graph.predecessors(node) {
                rev_entries.push(CsrEntry {
                    label,
                    node: source,
                });
            }
            rev_offsets.push(rev_entries.len() as u32);
        }

        Self {
            node_count: n,
            label_count: graph.label_count(),
            fwd_offsets,
            fwd_entries,
            rev_offsets,
            rev_entries,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.fwd_entries.len()
    }

    /// Alphabet size of the underlying graph at snapshot time.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId::from)
    }

    /// Outgoing `(label, target)` entries of `node`.
    #[inline]
    pub fn out(&self, node: NodeId) -> &[CsrEntry] {
        let i = node.index();
        let lo = self.fwd_offsets[i] as usize;
        let hi = self.fwd_offsets[i + 1] as usize;
        &self.fwd_entries[lo..hi]
    }

    /// Incoming `(label, source)` entries of `node`.
    #[inline]
    pub fn inc(&self, node: NodeId) -> &[CsrEntry] {
        let i = node.index();
        let lo = self.rev_offsets[i] as usize;
        let hi = self.rev_offsets[i + 1] as usize;
        &self.rev_entries[lo..hi]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out(node).len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc(node).len()
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        Self::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, Vec<NodeId>) {
        // a -x-> b -z-> d ;  a -y-> c -z-> d
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "z", d);
        g.add_edge_by_name(c, "z", d);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn csr_preserves_counts() {
        let (g, _) = diamond();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.label_count(), 3);
    }

    #[test]
    fn forward_adjacency_matches_graph() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let out_a: Vec<NodeId> = csr.out(n[0]).iter().map(|e| e.node).collect();
        assert_eq!(out_a, vec![n[1], n[2]]);
        assert_eq!(csr.out_degree(n[3]), 0);
        assert_eq!(csr.out_degree(n[0]), 2);
    }

    #[test]
    fn reverse_adjacency_matches_graph() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let in_d: Vec<NodeId> = csr.inc(n[3]).iter().map(|e| e.node).collect();
        assert_eq!(in_d, vec![n[1], n[2]]);
        assert_eq!(csr.in_degree(n[0]), 0);
    }

    #[test]
    fn labels_are_preserved_per_entry() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let z = g.label_id("z").unwrap();
        assert!(csr.out(n[1]).iter().all(|e| e.label == z));
        assert!(csr.inc(n[3]).iter().all(|e| e.label == z));
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = Graph::new();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.nodes().count(), 0);
    }

    #[test]
    fn from_reference_conversion() {
        let (g, _) = diamond();
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.edge_count(), g.edge_count());
    }
}
