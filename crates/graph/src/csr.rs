//! Immutable compressed-sparse-row (CSR) snapshot of a graph.
//!
//! The interactive loop and the RPQ evaluator traverse the graph heavily and
//! never mutate it.  [`CsrGraph`] packs the adjacency into flat arrays
//! (offsets + `(label, target)` pairs) for cache-friendly scans, keeps a
//! reverse CSR for backward traversals used by the evaluator's fixed point,
//! and — since it implements [`GraphBackend`] — serves as a first-class
//! drop-in store for every query layer: RPQ evaluation, neighborhoods, path
//! enumeration, learning and interactive sessions all run directly on the
//! snapshot.
//!
//! The snapshot carries the node names and the label interner of its source
//! so rendering and query parsing work against it; the original edge
//! identifiers are preserved per adjacency entry so neighborhood extraction
//! and zoom deltas agree exactly with the mutable [`Graph`] backend.

use crate::backend::GraphBackend;
use crate::graph::{Edge, Graph};
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::labels::LabelInterner;
use std::collections::BTreeMap;

/// One packed adjacency entry: the label of an edge and its other endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrEntry {
    /// The label carried by the edge.
    pub label: LabelId,
    /// The other endpoint (target for forward CSR, source for reverse CSR).
    pub node: NodeId,
}

/// An immutable CSR snapshot with both forward and reverse adjacency.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    node_names: Vec<String>,
    name_index: BTreeMap<String, NodeId>,
    labels: LabelInterner,
    fwd_offsets: Vec<u32>,
    fwd_entries: Vec<CsrEntry>,
    /// Original edge id of each forward entry (aligned with `fwd_entries`).
    fwd_edge_ids: Vec<EdgeId>,
    rev_offsets: Vec<u32>,
    rev_entries: Vec<CsrEntry>,
    /// Original edge id of each reverse entry (aligned with `rev_entries`).
    rev_edge_ids: Vec<EdgeId>,
    /// Version stamp of the snapshot.  Snapshots built directly from a
    /// backend inherit the backend's epoch (0 for fresh builds);
    /// [`crate::delta::DeltaGraph::compact`] stamps its output with the base
    /// epoch plus one, so every published version of a live graph is
    /// distinguishable even when node and edge counts happen to coincide.
    epoch: u64,
}

impl CsrGraph {
    /// Builds a CSR snapshot from a mutable [`Graph`].
    pub fn from_graph(graph: &Graph) -> Self {
        Self::from_backend(graph)
    }

    /// Builds a CSR snapshot from any backend.
    pub fn from_backend<B: GraphBackend>(backend: &B) -> Self {
        let n = backend.node_count();
        let m = backend.edge_count();

        let node_names: Vec<String> = backend
            .nodes()
            .map(|node| backend.node_name(node).to_string())
            .collect();
        let mut name_index = BTreeMap::new();
        for (i, name) in node_names.iter().enumerate() {
            name_index.entry(name.clone()).or_insert(NodeId::from(i));
        }

        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_entries = Vec::with_capacity(m);
        let mut fwd_edge_ids = Vec::with_capacity(m);
        fwd_offsets.push(0);
        for node in backend.nodes() {
            for (edge_id, edge) in backend.out_edges(node) {
                fwd_entries.push(CsrEntry {
                    label: edge.label,
                    node: edge.target,
                });
                fwd_edge_ids.push(edge_id);
            }
            fwd_offsets.push(fwd_entries.len() as u32);
        }

        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_entries = Vec::with_capacity(m);
        let mut rev_edge_ids = Vec::with_capacity(m);
        rev_offsets.push(0);
        for node in backend.nodes() {
            for (edge_id, edge) in backend.in_edges(node) {
                rev_entries.push(CsrEntry {
                    label: edge.label,
                    node: edge.source,
                });
                rev_edge_ids.push(edge_id);
            }
            rev_offsets.push(rev_entries.len() as u32);
        }

        Self {
            node_names,
            name_index,
            labels: backend.labels().clone(),
            fwd_offsets,
            fwd_entries,
            fwd_edge_ids,
            rev_offsets,
            rev_entries,
            rev_edge_ids,
            epoch: backend.epoch(),
        }
    }

    /// Assembles a snapshot directly from pre-built packed arrays (the
    /// delta-graph compaction path).  The caller guarantees the arrays are
    /// mutually consistent — exactly what [`Self::from_backend`] would have
    /// produced for the merged graph.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        node_names: Vec<String>,
        name_index: BTreeMap<String, NodeId>,
        labels: LabelInterner,
        fwd_offsets: Vec<u32>,
        fwd_entries: Vec<CsrEntry>,
        fwd_edge_ids: Vec<EdgeId>,
        rev_offsets: Vec<u32>,
        rev_entries: Vec<CsrEntry>,
        rev_edge_ids: Vec<EdgeId>,
        epoch: u64,
    ) -> Self {
        Self {
            node_names,
            name_index,
            labels,
            fwd_offsets,
            fwd_entries,
            fwd_edge_ids,
            rev_offsets,
            rev_entries,
            rev_edge_ids,
            epoch,
        }
    }

    /// The version stamp of this snapshot (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns the snapshot restamped with `epoch` (used by stores that
    /// assign their own version numbers).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Number of nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.fwd_entries.len()
    }

    /// Alphabet size of the underlying graph at snapshot time.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The label interner captured at snapshot time.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// The display name of a node.
    ///
    /// # Panics
    /// Panics if `node` does not belong to this snapshot.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Looks up the first node bearing `name`.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from)
    }

    /// Outgoing `(label, target)` entries of `node` as a contiguous slice.
    #[inline]
    pub fn out(&self, node: NodeId) -> &[CsrEntry] {
        let i = node.index();
        let lo = self.fwd_offsets[i] as usize;
        let hi = self.fwd_offsets[i + 1] as usize;
        &self.fwd_entries[lo..hi]
    }

    /// Incoming `(label, source)` entries of `node` as a contiguous slice.
    #[inline]
    pub fn inc(&self, node: NodeId) -> &[CsrEntry] {
        let i = node.index();
        let lo = self.rev_offsets[i] as usize;
        let hi = self.rev_offsets[i + 1] as usize;
        &self.rev_entries[lo..hi]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out(node).len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc(node).len()
    }

    /// The raw forward offset array (`node_count + 1` entries): node `i`'s
    /// outgoing entries live at `fwd_entries()[offsets[i]..offsets[i+1]]`.
    ///
    /// Exposed so bulk evaluators (the `gps-exec` frontier engine) can build
    /// derived indexes with flat array sweeps instead of per-node iterators.
    #[inline]
    pub fn fwd_offsets(&self) -> &[u32] {
        &self.fwd_offsets
    }

    /// The raw forward adjacency entries, grouped by source node.
    #[inline]
    pub fn fwd_entries(&self) -> &[CsrEntry] {
        &self.fwd_entries
    }

    /// The raw reverse offset array (`node_count + 1` entries).
    #[inline]
    pub fn rev_offsets(&self) -> &[u32] {
        &self.rev_offsets
    }

    /// The raw reverse adjacency entries, grouped by target node.
    #[inline]
    pub fn rev_entries(&self) -> &[CsrEntry] {
        &self.rev_entries
    }

    /// Original edge ids of the forward entries (aligned with
    /// [`fwd_entries`](Self::fwd_entries)) — the serialization seam used by
    /// checkpoint writers.
    #[inline]
    pub fn fwd_edge_ids(&self) -> &[EdgeId] {
        &self.fwd_edge_ids
    }

    /// Original edge ids of the reverse entries (aligned with
    /// [`rev_entries`](Self::rev_entries)).
    #[inline]
    pub fn rev_edge_ids(&self) -> &[EdgeId] {
        &self.rev_edge_ids
    }

    /// Assembles a snapshot from raw packed arrays — the checkpoint
    /// *deserialization* seam.  The name index is rebuilt first-bearer from
    /// the node names; the caller guarantees the arrays are mutually
    /// consistent (offsets monotone and spanning the entry arrays, entry
    /// ids within bounds), exactly what the public accessors of a live
    /// snapshot expose.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        node_names: Vec<String>,
        labels: LabelInterner,
        fwd_offsets: Vec<u32>,
        fwd_entries: Vec<CsrEntry>,
        fwd_edge_ids: Vec<EdgeId>,
        rev_offsets: Vec<u32>,
        rev_entries: Vec<CsrEntry>,
        rev_edge_ids: Vec<EdgeId>,
        epoch: u64,
    ) -> Self {
        let mut name_index = BTreeMap::new();
        for (i, name) in node_names.iter().enumerate() {
            name_index.entry(name.clone()).or_insert(NodeId::from(i));
        }
        Self {
            node_names,
            name_index,
            labels,
            fwd_offsets,
            fwd_entries,
            fwd_edge_ids,
            rev_offsets,
            rev_entries,
            rev_edge_ids,
            epoch,
        }
    }

    /// The first-bearer name → id map (what [`node_by_name`](Self::node_by_name)
    /// consults) — cloned wholesale by the delta overlay instead of being
    /// rebuilt per publish.
    #[inline]
    pub(crate) fn name_index(&self) -> &BTreeMap<String, NodeId> {
        &self.name_index
    }

    /// Original edge ids of `node`'s outgoing entries (aligned with
    /// [`out`](Self::out)).
    #[inline]
    pub(crate) fn out_ids(&self, node: NodeId) -> &[EdgeId] {
        &self.fwd_edge_ids[self.fwd_range(node)]
    }

    /// Original edge ids of `node`'s incoming entries (aligned with
    /// [`inc`](Self::inc)).
    #[inline]
    pub(crate) fn inc_ids(&self, node: NodeId) -> &[EdgeId] {
        &self.rev_edge_ids[self.rev_range(node)]
    }

    #[inline]
    fn fwd_range(&self, node: NodeId) -> std::ops::Range<usize> {
        let i = node.index();
        self.fwd_offsets[i] as usize..self.fwd_offsets[i + 1] as usize
    }

    #[inline]
    fn rev_range(&self, node: NodeId) -> std::ops::Range<usize> {
        let i = node.index();
        self.rev_offsets[i] as usize..self.rev_offsets[i + 1] as usize
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        Self::from_graph(graph)
    }
}

/// Iterator over `(label, neighbor)` pairs of a CSR slice.
pub struct CsrNeighbors<'a> {
    entries: std::slice::Iter<'a, CsrEntry>,
}

impl<'a> Iterator for CsrNeighbors<'a> {
    type Item = (LabelId, NodeId);

    #[inline]
    fn next(&mut self) -> Option<(LabelId, NodeId)> {
        self.entries.next().map(|entry| (entry.label, entry.node))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.entries.size_hint()
    }
}

impl<'a> ExactSizeIterator for CsrNeighbors<'a> {}

/// Iterator over `(EdgeId, Edge)` pairs of a CSR slice, reconstructing the
/// full edge records from the pivot node.
pub struct CsrIncidentEdges<'a> {
    entries: std::slice::Iter<'a, CsrEntry>,
    ids: std::slice::Iter<'a, EdgeId>,
    pivot: NodeId,
    reverse: bool,
}

impl<'a> Iterator for CsrIncidentEdges<'a> {
    type Item = (EdgeId, Edge);

    #[inline]
    fn next(&mut self) -> Option<(EdgeId, Edge)> {
        let entry = self.entries.next()?;
        let id = *self.ids.next().expect("edge ids aligned with entries");
        let edge = if self.reverse {
            Edge::new(entry.node, entry.label, self.pivot)
        } else {
            Edge::new(self.pivot, entry.label, entry.node)
        };
        Some((id, edge))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.entries.size_hint()
    }
}

impl<'a> ExactSizeIterator for CsrIncidentEdges<'a> {}

impl GraphBackend for CsrGraph {
    type Neighbors<'a> = CsrNeighbors<'a>;
    type IncidentEdges<'a> = CsrIncidentEdges<'a>;

    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    fn labels(&self) -> &LabelInterner {
        CsrGraph::labels(self)
    }

    fn node_name(&self, node: NodeId) -> &str {
        CsrGraph::node_name(self, node)
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        CsrGraph::node_by_name(self, name)
    }

    fn successors(&self, node: NodeId) -> CsrNeighbors<'_> {
        CsrNeighbors {
            entries: self.out(node).iter(),
        }
    }

    fn predecessors(&self, node: NodeId) -> CsrNeighbors<'_> {
        CsrNeighbors {
            entries: self.inc(node).iter(),
        }
    }

    fn out_edges(&self, node: NodeId) -> CsrIncidentEdges<'_> {
        let range = self.fwd_range(node);
        CsrIncidentEdges {
            entries: self.fwd_entries[range.clone()].iter(),
            ids: self.fwd_edge_ids[range].iter(),
            pivot: node,
            reverse: false,
        }
    }

    fn in_edges(&self, node: NodeId) -> CsrIncidentEdges<'_> {
        let range = self.rev_range(node);
        CsrIncidentEdges {
            entries: self.rev_entries[range.clone()].iter(),
            ids: self.rev_edge_ids[range].iter(),
            pivot: node,
            reverse: true,
        }
    }

    fn out_degree(&self, node: NodeId) -> usize {
        CsrGraph::out_degree(self, node)
    }

    fn in_degree(&self, node: NodeId) -> usize {
        CsrGraph::in_degree(self, node)
    }

    fn epoch(&self) -> u64 {
        CsrGraph::epoch(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, Vec<NodeId>) {
        // a -x-> b -z-> d ;  a -y-> c -z-> d
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "y", c);
        g.add_edge_by_name(b, "z", d);
        g.add_edge_by_name(c, "z", d);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn csr_preserves_counts() {
        let (g, _) = diamond();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.label_count(), 3);
    }

    #[test]
    fn forward_adjacency_matches_graph() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let out_a: Vec<NodeId> = csr.out(n[0]).iter().map(|e| e.node).collect();
        assert_eq!(out_a, vec![n[1], n[2]]);
        assert_eq!(csr.out_degree(n[3]), 0);
        assert_eq!(csr.out_degree(n[0]), 2);
    }

    #[test]
    fn reverse_adjacency_matches_graph() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let in_d: Vec<NodeId> = csr.inc(n[3]).iter().map(|e| e.node).collect();
        assert_eq!(in_d, vec![n[1], n[2]]);
        assert_eq!(csr.in_degree(n[0]), 0);
    }

    #[test]
    fn labels_are_preserved_per_entry() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let z = g.label_id("z").unwrap();
        assert!(csr.out(n[1]).iter().all(|e| e.label == z));
        assert!(csr.inc(n[3]).iter().all(|e| e.label == z));
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = Graph::new();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.nodes().count(), 0);
    }

    #[test]
    fn from_reference_conversion() {
        let (g, _) = diamond();
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.edge_count(), g.edge_count());
    }

    #[test]
    fn snapshot_carries_names_and_labels() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_name(n[0]), "a");
        assert_eq!(csr.node_by_name("d"), Some(n[3]));
        assert_eq!(csr.node_by_name("missing"), None);
        assert_eq!(csr.labels().get("x"), g.label_id("x"));
    }

    #[test]
    fn incident_edges_preserve_original_ids() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        let graph_out: Vec<(EdgeId, Edge)> = g.out_edges(n[0]).collect();
        let csr_out: Vec<(EdgeId, Edge)> = GraphBackend::out_edges(&csr, n[0]).collect();
        assert_eq!(graph_out, csr_out);
        let graph_in: Vec<(EdgeId, Edge)> = g.in_edges(n[3]).collect();
        let csr_in: Vec<(EdgeId, Edge)> = GraphBackend::in_edges(&csr, n[3]).collect();
        assert_eq!(graph_in, csr_in);
    }

    #[test]
    fn raw_accessors_expose_the_packed_arrays() {
        let (g, n) = diamond();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.fwd_offsets().len(), csr.node_count() + 1);
        assert_eq!(csr.rev_offsets().len(), csr.node_count() + 1);
        assert_eq!(csr.fwd_entries().len(), csr.edge_count());
        assert_eq!(csr.rev_entries().len(), csr.edge_count());
        // The slices agree with the per-node views.
        let lo = csr.fwd_offsets()[n[0].index()] as usize;
        let hi = csr.fwd_offsets()[n[0].index() + 1] as usize;
        assert_eq!(&csr.fwd_entries()[lo..hi], csr.out(n[0]));
        assert_eq!(
            *csr.fwd_offsets().last().unwrap() as usize,
            csr.edge_count()
        );
    }

    #[test]
    fn snapshot_of_a_snapshot_is_identical() {
        let (g, _) = diamond();
        let once = CsrGraph::from_graph(&g);
        let twice = CsrGraph::from_backend(&once);
        assert_eq!(once.node_count(), twice.node_count());
        assert_eq!(once.edge_count(), twice.edge_count());
        for node in once.nodes() {
            assert_eq!(once.out(node), twice.out(node));
            assert_eq!(once.inc(node), twice.inc(node));
        }
    }
}
