//! Graph traversals: BFS, DFS, distances and reachability.
//!
//! These are the building blocks for neighborhood extraction
//! ([`crate::neighborhood`]) and for the informativeness analysis in the
//! interactive layer.

use crate::backend::GraphBackend;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Result of a breadth-first search: distance (in edges) from the start node
/// to every reachable node.
#[derive(Debug, Clone)]
pub struct BfsDistances {
    /// `distances[i]` is `Some(d)` when node `i` is reachable at distance `d`
    /// from the start node, `None` otherwise.
    distances: Vec<Option<u32>>,
    start: NodeId,
}

impl BfsDistances {
    /// The node the search started from.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// Distance from the start node to `node`, if reachable.
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        self.distances.get(node.index()).copied().flatten()
    }

    /// Returns `true` if `node` is reachable from the start node.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.distance(node).is_some()
    }

    /// Iterates over `(node, distance)` pairs of reachable nodes in node-id
    /// order.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.distances
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (NodeId::from(i), d)))
    }

    /// Number of reachable nodes (including the start node itself).
    pub fn reachable_count(&self) -> usize {
        self.distances.iter().filter(|d| d.is_some()).count()
    }
}

/// Direction of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target.
    Forward,
    /// Follow edges from target to source.
    Backward,
    /// Follow edges in both directions (treat the graph as undirected).
    Both,
}

fn neighbors<'a, B: GraphBackend>(
    graph: &'a B,
    node: NodeId,
    direction: Direction,
) -> Box<dyn Iterator<Item = NodeId> + 'a> {
    match direction {
        Direction::Forward => Box::new(graph.successors(node).map(|(_, t)| t)),
        Direction::Backward => Box::new(graph.predecessors(node).map(|(_, s)| s)),
        Direction::Both => Box::new(
            graph
                .successors(node)
                .map(|(_, t)| t)
                .chain(graph.predecessors(node).map(|(_, s)| s)),
        ),
    }
}

/// Breadth-first search from `start`, optionally bounded by `max_depth`
/// (number of edges), following edges in the given `direction`.
pub fn bfs<B: GraphBackend>(
    graph: &B,
    start: NodeId,
    max_depth: Option<u32>,
    direction: Direction,
) -> BfsDistances {
    let mut distances = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    distances[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        let d = distances[node.index()].expect("queued nodes have distances");
        if let Some(limit) = max_depth {
            if d >= limit {
                continue;
            }
        }
        for next in neighbors(graph, node, direction) {
            if distances[next.index()].is_none() {
                distances[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    BfsDistances { distances, start }
}

/// Unbounded forward BFS from `start`.
pub fn bfs_forward<B: GraphBackend>(graph: &B, start: NodeId) -> BfsDistances {
    bfs(graph, start, None, Direction::Forward)
}

/// Returns the nodes reachable from `start` (forward direction), including
/// `start` itself, in BFS order.
pub fn reachable_from<B: GraphBackend>(graph: &B, start: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut visited = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for (_, next) in graph.successors(node) {
            if !visited[next.index()] {
                visited[next.index()] = true;
                queue.push_back(next);
            }
        }
    }
    order
}

/// Depth-first search that invokes `visit` on every node reachable from
/// `start` in pre-order.
pub fn dfs_preorder<B: GraphBackend>(graph: &B, start: NodeId, mut visit: impl FnMut(NodeId)) {
    let mut visited = vec![false; graph.node_count()];
    let mut stack = vec![start];
    while let Some(node) = stack.pop() {
        if visited[node.index()] {
            continue;
        }
        visited[node.index()] = true;
        visit(node);
        // Push successors in reverse so the first successor is visited first.
        let succ: Vec<NodeId> = graph.successors(node).map(|(_, t)| t).collect();
        for next in succ.into_iter().rev() {
            if !visited[next.index()] {
                stack.push(next);
            }
        }
    }
}

/// Returns `true` if `target` is reachable from `source` following forward
/// edges.
pub fn is_reachable<B: GraphBackend>(graph: &B, source: NodeId, target: NodeId) -> bool {
    if source == target {
        return true;
    }
    bfs_forward(graph, source).is_reachable(target)
}

/// Weakly connected components, ignoring edge direction.  Returns one vector
/// of node ids per component, each sorted by node id; components are sorted
/// by their smallest node id.
pub fn weakly_connected_components<B: GraphBackend>(graph: &B) -> Vec<Vec<NodeId>> {
    let mut component = vec![usize::MAX; graph.node_count()];
    let mut components = Vec::new();
    for start in graph.nodes() {
        if component[start.index()] != usize::MAX {
            continue;
        }
        let idx = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        component[start.index()] = idx;
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            members.push(node);
            for next in neighbors(graph, node, Direction::Both) {
                if component[next.index()] == usize::MAX {
                    component[next.index()] = idx;
                    queue.push_back(next);
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// a -> b -> c -> d, plus e isolated, plus d -> b cycle edge.
    fn chain_with_cycle() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|n| g.add_node(*n))
            .collect();
        g.add_edge_by_name(ids[0], "x", ids[1]);
        g.add_edge_by_name(ids[1], "x", ids[2]);
        g.add_edge_by_name(ids[2], "x", ids[3]);
        g.add_edge_by_name(ids[3], "x", ids[1]);
        (g, ids)
    }

    #[test]
    fn bfs_computes_shortest_distances() {
        let (g, n) = chain_with_cycle();
        let d = bfs_forward(&g, n[0]);
        assert_eq!(d.distance(n[0]), Some(0));
        assert_eq!(d.distance(n[1]), Some(1));
        assert_eq!(d.distance(n[2]), Some(2));
        assert_eq!(d.distance(n[3]), Some(3));
        assert_eq!(d.distance(n[4]), None);
        assert_eq!(d.reachable_count(), 4);
    }

    #[test]
    fn bounded_bfs_respects_depth() {
        let (g, n) = chain_with_cycle();
        let d = bfs(&g, n[0], Some(2), Direction::Forward);
        assert_eq!(d.distance(n[2]), Some(2));
        assert_eq!(d.distance(n[3]), None);
    }

    #[test]
    fn backward_bfs_follows_reverse_edges() {
        let (g, n) = chain_with_cycle();
        let d = bfs(&g, n[2], None, Direction::Backward);
        assert_eq!(d.distance(n[1]), Some(1));
        assert_eq!(d.distance(n[0]), Some(2));
        // d reaches b via d->b, so backwards from c we see d at distance 2.
        assert_eq!(d.distance(n[3]), Some(2));
    }

    #[test]
    fn both_direction_unions_neighbors() {
        let (g, n) = chain_with_cycle();
        let d = bfs(&g, n[4], None, Direction::Both);
        assert_eq!(d.reachable_count(), 1, "isolated node sees only itself");
        let d0 = bfs(&g, n[3], Some(1), Direction::Both);
        assert!(d0.is_reachable(n[1]));
        assert!(d0.is_reachable(n[2]));
    }

    #[test]
    fn reachable_from_returns_bfs_order() {
        let (g, n) = chain_with_cycle();
        let order = reachable_from(&g, n[0]);
        assert_eq!(order, vec![n[0], n[1], n[2], n[3]]);
    }

    #[test]
    fn dfs_preorder_visits_each_reachable_node_once() {
        let (g, n) = chain_with_cycle();
        let mut seen = Vec::new();
        dfs_preorder(&g, n[0], |node| seen.push(node));
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], n[0]);
        assert!(seen.contains(&n[3]));
        assert!(!seen.contains(&n[4]));
    }

    #[test]
    fn reachability_checks() {
        let (g, n) = chain_with_cycle();
        assert!(is_reachable(&g, n[0], n[3]));
        assert!(is_reachable(&g, n[3], n[2]), "via the cycle edge d->b->c");
        assert!(!is_reachable(&g, n[0], n[4]));
        assert!(is_reachable(&g, n[4], n[4]), "trivially reachable");
    }

    #[test]
    fn weak_components_split_isolated_node() {
        let (g, n) = chain_with_cycle();
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![n[0], n[1], n[2], n[3]]);
        assert_eq!(comps[1], vec![n[4]]);
    }

    #[test]
    fn reachable_iteration_lists_pairs() {
        let (g, n) = chain_with_cycle();
        let d = bfs_forward(&g, n[1]);
        let pairs: Vec<(NodeId, u32)> = d.reachable().collect();
        assert!(pairs.contains(&(n[1], 0)));
        assert!(pairs.contains(&(n[3], 2)));
        assert_eq!(d.start(), n[1]);
    }
}
