//! Interning of edge labels.
//!
//! Graph databases in the GPS model are edge-labeled: every edge carries one
//! symbol from a finite alphabet (`tram`, `bus`, `cinema`, …).  The interner
//! maps each distinct label string to a dense [`LabelId`] so the rest of the
//! system can work with compact integers, and maps the identifiers back to
//! strings for display.

use crate::ids::LabelId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bidirectional map between label strings and [`LabelId`]s.
///
/// Identifiers are dense and assigned in first-seen order, so an interner
/// with `n` labels uses identifiers `0..n`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelInterner {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, LabelId>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its identifier.  Repeated calls with the
    /// same name return the same identifier.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = LabelId::from(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a label by name without interning it.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.index.get(name).copied()
    }

    /// Returns the name of a label identifier, if it exists.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Returns the name of a label identifier, panicking on unknown ids.
    ///
    /// Intended for display code where the identifier is known to come from
    /// this interner.
    pub fn name_or_panic(&self, id: LabelId) -> &str {
        self.name(id).expect("unknown label id")
    }

    /// Number of distinct labels interned so far (the alphabet size).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(LabelId, name)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId::from(i), s.as_str()))
    }

    /// All label identifiers in identifier order.
    pub fn ids(&self) -> impl Iterator<Item = LabelId> + '_ {
        (0..self.names.len()).map(LabelId::from)
    }

    /// Rebuilds the name→id index.  Used after deserialization, where the
    /// reverse index is not stored.
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), LabelId::from(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("tram");
        let b = interner.intern("tram");
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut interner = LabelInterner::new();
        let tram = interner.intern("tram");
        let bus = interner.intern("bus");
        let cinema = interner.intern("cinema");
        assert_eq!(tram.index(), 0);
        assert_eq!(bus.index(), 1);
        assert_eq!(cinema.index(), 2);
    }

    #[test]
    fn name_lookup_round_trips() {
        let mut interner = LabelInterner::new();
        let bus = interner.intern("bus");
        assert_eq!(interner.name(bus), Some("bus"));
        assert_eq!(interner.get("bus"), Some(bus));
        assert_eq!(interner.get("missing"), None);
        assert_eq!(interner.name(LabelId::new(99)), None);
    }

    #[test]
    fn iteration_follows_insertion_order() {
        let mut interner = LabelInterner::new();
        interner.intern("a");
        interner.intern("b");
        interner.intern("c");
        let names: Vec<&str> = interner.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(interner.ids().count(), 3);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut interner = LabelInterner::new();
        interner.intern("x");
        interner.intern("y");
        let serialized = serde_json::to_string(&interner).unwrap();
        let mut restored: LabelInterner = serde_json::from_str(&serialized).unwrap();
        assert_eq!(restored.get("y"), None, "index is skipped by serde");
        restored.rebuild_index();
        assert_eq!(restored.get("y"), Some(LabelId::new(1)));
        assert_eq!(restored.name(LabelId::new(0)), Some("x"));
    }

    #[test]
    fn empty_interner_reports_empty() {
        let interner = LabelInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
    }
}
